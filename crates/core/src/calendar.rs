//! A calendar queue of next-completion events for the batched engine.
//!
//! The event-window fast paths need one number per decision: the earliest
//! round in which any busy worker's current node can complete. The
//! sequential engine recomputes it with an O(m) scan over all workers at
//! every window attempt — fine at m = 16, dominant at m = 256/1024. The
//! batched engine instead maintains a [`CalendarQueue`] keyed by completion
//! round: push one event when a worker acquires a node, remove it when the
//! node completes, and `peek_min` costs O(distance to the next event)
//! bucket probes instead of O(m).
//!
//! The structure is the classic calendar queue (Brown 1988) specialized to
//! this engine's access pattern:
//!
//! * keys are monotone: every live event's key is ≥ the current round,
//!   because a completion event is removed in exactly the round it names
//!   (a busy worker executes one unit per round, so `key = round +
//!   remaining` is invariant while the worker stays on the node);
//! * at most one event per worker is live, so occupancy is bounded by `m`;
//! * keys cluster within `max node work` of the current round, so a
//!   fixed-width ring of day buckets almost always resolves `peek_min` in
//!   a handful of probes; a full scan backstops the rare far-future event
//!   (more than one ring revolution ahead).

use parflow_time::Round;

/// Number of day buckets. Power of two so the bucket index is a mask.
const BUCKETS: usize = 256;

/// A monotone priority queue over `(completion round, worker)` events.
///
/// Supports exact removal (`remove`) because completion rounds are not
/// unique across workers; an event is identified by its `(key, worker)`
/// pair, which the engine pushes at most once per busy stretch.
#[derive(Debug)]
pub struct CalendarQueue {
    /// Ring of day buckets; an event with key `k` lives in bucket
    /// `k % BUCKETS`.
    buckets: Vec<Vec<(Round, u32)>>,
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    /// Number of live events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all events, keeping bucket capacity for reuse across replicas.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }

    /// Insert an event: `worker`'s current node completes during round
    /// `key`. The caller guarantees `key ≥` the current round and that no
    /// event for `worker` is live.
    #[inline]
    pub fn push(&mut self, key: Round, worker: u32) {
        self.buckets[(key % BUCKETS as u64) as usize].push((key, worker));
        self.len += 1;
    }

    /// Remove the event `(key, worker)` if present; returns whether one was
    /// removed. Absence is legal: a node acquired and completed within the
    /// same round never had its event published.
    #[inline]
    pub fn remove(&mut self, key: Round, worker: u32) -> bool {
        let b = &mut self.buckets[(key % BUCKETS as u64) as usize];
        if let Some(i) = b.iter().position(|&e| e == (key, worker)) {
            b.swap_remove(i);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// The smallest live key, given that every live key is ≥ `now`.
    ///
    /// Probes day buckets in ring order starting at `now`; the first probe
    /// whose bucket contains its own day's key is the minimum (events one
    /// or more revolutions ahead share buckets but have strictly larger
    /// keys). Falls back to a full scan if no event lies within one
    /// revolution of `now`.
    pub fn peek_min(&self, now: Round) -> Option<Round> {
        if self.len == 0 {
            return None;
        }
        for d in 0..BUCKETS as u64 {
            let key = now + d;
            let b = &self.buckets[(key % BUCKETS as u64) as usize];
            if b.iter().any(|&(k, _)| k == key) {
                return Some(key);
            }
        }
        // Every live event is more than one revolution ahead: rare (only a
        // node with > BUCKETS remaining units and no nearer event).
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|&(k, _)| k))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_peek_remove_roundtrip() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_min(0), None);
        q.push(5, 0);
        q.push(3, 1);
        q.push(9, 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_min(0), Some(3));
        assert_eq!(q.peek_min(3), Some(3));
        assert!(q.remove(3, 1));
        assert_eq!(q.peek_min(3), Some(5));
        assert!(!q.remove(3, 1), "double remove must miss");
        assert!(q.remove(5, 0));
        assert!(q.remove(9, 2));
        assert!(q.is_empty());
    }

    #[test]
    fn duplicate_keys_distinct_workers() {
        let mut q = CalendarQueue::new();
        q.push(7, 0);
        q.push(7, 1);
        assert_eq!(q.peek_min(0), Some(7));
        assert!(q.remove(7, 0));
        assert_eq!(q.peek_min(0), Some(7), "worker 1's event survives");
        assert!(q.remove(7, 1));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_beyond_one_revolution() {
        let mut q = CalendarQueue::new();
        // Same bucket as `now`, but several revolutions ahead.
        let far = 10 * BUCKETS as u64;
        q.push(far, 0);
        assert_eq!(q.peek_min(0), Some(far));
        // A nearby event wins even though it shares no bucket alignment.
        q.push(300, 1);
        assert_eq!(q.peek_min(0), Some(300));
        assert!(q.remove(300, 1));
        assert_eq!(q.peek_min(297), Some(far));
    }

    #[test]
    fn matches_binary_heap_model() {
        // Randomized differential test against a BinaryHeap, driven with
        // the engine's monotone access pattern.
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut model: BinaryHeap<std::cmp::Reverse<(Round, u32)>> = BinaryHeap::new();
        let mut live: Vec<(Round, u32)> = Vec::new();
        let mut now: Round = 0;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000u32 {
            let r = next();
            if r % 3 != 0 || live.is_empty() {
                let key = now + 1 + (next() % 700);
                let worker = step;
                q.push(key, worker);
                model.push(std::cmp::Reverse((key, worker)));
                live.push((key, worker));
            } else {
                let i = (next() as usize) % live.len();
                let (key, worker) = live.swap_remove(i);
                assert!(q.remove(key, worker));
                // Lazy-delete in the model: rebuild without the entry.
                let mut kept: Vec<_> = model.drain().filter(|e| e.0 != (key, worker)).collect();
                model.extend(kept.drain(..));
            }
            let expect = model.peek().map(|e| e.0 .0);
            assert_eq!(q.peek_min(now), expect, "step {step} now {now}");
            // Advance time monotonically, never past the minimum live key.
            if let Some(min) = expect {
                now = now.max(min.saturating_sub(next() % 50));
            }
        }
    }
}
