//! Simulation configuration.

use crate::fault::FaultPlan;
use parflow_time::Speed;
use serde::{Deserialize, Serialize};

/// How much simulated time a steal attempt consumes (work stealing only).
///
/// * [`StealCost::UnitStep`] — the **theory model** (Section 4): "we assume
///   that it takes a unit time step to steal work between workers". Every
///   attempt, successful or not, consumes the thief's whole round. This is
///   what Theorem 4.1's `(k+1+ε)`-speed requirement pays for, and what the
///   Lemma 5.1 lower bound exploits.
/// * [`StealCost::Free`] — the **systems model** matching the paper's TBB
///   experiments (Section 6), where a steal attempt (~100 ns) is four
///   orders of magnitude cheaper than a 0.1 ms work unit: acquiring work is
///   instantaneous and only executing work (or having none) consumes the
///   round. Use this to reproduce Figure 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StealCost {
    /// A steal attempt takes one full time step (paper Section 4 model).
    #[default]
    UnitStep,
    /// Steal attempts are instantaneous (paper Section 6 TBB behaviour).
    Free,
}

/// How a thief picks its victim (work stealing only).
///
/// The paper — like Cilk and TBB — uses uniformly random victims, and its
/// `Ω(log n)` lower bound (Lemma 5.1) is specifically about that
/// randomization: all thieves can keep missing the one loaded deque.
/// [`VictimStrategy::RoundRobinScan`] is the deterministic alternative
/// (each thief sweeps the workers cyclically), which finds any loaded
/// deque within `m−1` attempts — the `lb_logn` ablation shows the lower
/// bound collapsing under it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimStrategy {
    /// Uniformly random victim among the other workers (the paper's model).
    #[default]
    Uniform,
    /// Deterministic cyclic sweep over the other workers.
    RoundRobinScan,
}

/// How much a successful steal takes from the victim's deque.
///
/// The paper (and Cilk/TBB) steal a single task; stealing *half* the
/// victim's deque is the variant used by e.g. the Go runtime and X10's
/// help-first policies. Half-stealing spreads a freshly admitted job's
/// chunks across workers in `O(log chunks)` steals instead of one steal
/// per chunk — the `steal_amount` ablation quantifies the effect on max
/// flow time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StealAmount {
    /// Steal one task from the top (the paper's model).
    #[default]
    One,
    /// Steal the top half of the victim's deque (rounded up).
    Half,
}

/// In what order the global queue releases jobs to admitting workers.
///
/// The paper's scheduler admits in FIFO order. [`AdmissionOrder::ByWeight`]
/// is this repo's extension for the weighted objective (Section 7): a
/// *distributed* Biggest-Weight-First, where admission pops the
/// largest-weight queued job instead of the oldest. Combined with
/// steal-k-first this approximates centralized BWF without global
/// preemption — see the `weighted-ws` experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionOrder {
    /// Oldest job first (the paper's global FIFO queue).
    #[default]
    Fifo,
    /// Largest weight first, ties by arrival.
    ByWeight,
}

/// Configuration of one simulated machine run.
///
/// Not `Copy`: the fault plan owns heap-allocated fault lists. Clone it
/// explicitly where a second copy is needed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of identical processors `m`.
    pub m: usize,
    /// Processor speed (resource augmentation); the optimal schedule always
    /// runs at speed 1.
    pub speed: Speed,
    /// Record a full per-round, per-processor [`crate::ScheduleTrace`].
    /// Costs memory proportional to `rounds × m`; off by default.
    pub record_trace: bool,
    /// Steal-attempt cost model (ignored by centralized schedulers).
    pub steal_cost: StealCost,
    /// Victim-selection strategy (ignored by centralized schedulers).
    pub victim: VictimStrategy,
    /// Sample backlog state every this many rounds into
    /// `SimResult::samples` (work stealing only; 0 disables sampling).
    pub sample_every: u64,
    /// How much a successful steal transfers (work stealing only).
    pub steal_amount: StealAmount,
    /// Global-queue admission order (work stealing only).
    pub admission: AdmissionOrder,
    /// Faults to inject (crashes, slowdowns, stalls, blackholes, task
    /// panics). Empty by default; see [`FaultPlan`].
    #[serde(default)]
    pub faults: FaultPlan,
}

impl SimConfig {
    /// A unit-speed machine with `m` processors, no trace, unit-step steals.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "need at least one processor");
        SimConfig {
            m,
            speed: Speed::ONE,
            record_trace: false,
            steal_cost: StealCost::UnitStep,
            victim: VictimStrategy::Uniform,
            sample_every: 0,
            steal_amount: StealAmount::One,
            admission: AdmissionOrder::Fifo,
            faults: FaultPlan::none(),
        }
    }

    /// Set the processor speed.
    pub fn with_speed(mut self, speed: Speed) -> Self {
        self.speed = speed;
        self
    }

    /// Enable trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Use the systems steal-cost model (instantaneous steal attempts).
    pub fn with_free_steals(mut self) -> Self {
        self.steal_cost = StealCost::Free;
        self
    }

    /// Use deterministic round-robin victim scanning instead of uniformly
    /// random victims.
    pub fn with_victim_scan(mut self) -> Self {
        self.victim = VictimStrategy::RoundRobinScan;
        self
    }

    /// Sample work-stealing backlog state every `every` rounds.
    pub fn with_sampling(mut self, every: u64) -> Self {
        assert!(every > 0, "sampling interval must be positive");
        self.sample_every = every;
        self
    }

    /// Steal half the victim's deque on success instead of one task.
    pub fn with_half_steals(mut self) -> Self {
        self.steal_amount = StealAmount::Half;
        self
    }

    /// Admit jobs from the global queue by descending weight
    /// (distributed Biggest-Weight-First).
    pub fn with_weighted_admission(mut self) -> Self {
        self.admission = AdmissionOrder::ByWeight;
        self
    }

    /// Inject the given faults. The plan is validated against `m` at
    /// engine start, not here, so a config can be built before the
    /// machine size is final.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(8)
            .with_speed(Speed::new(3, 2))
            .with_trace()
            .with_free_steals();
        assert_eq!(c.m, 8);
        assert_eq!(c.speed, Speed::new(3, 2));
        assert!(c.record_trace);
        assert_eq!(c.steal_cost, StealCost::Free);
    }

    #[test]
    fn defaults() {
        let c = SimConfig::new(4);
        assert_eq!(c.speed, Speed::ONE);
        assert!(!c.record_trace);
        assert_eq!(c.steal_cost, StealCost::UnitStep);
        assert_eq!(c.victim, VictimStrategy::Uniform);
    }

    #[test]
    fn victim_scan_builder() {
        let c = SimConfig::new(2).with_victim_scan();
        assert_eq!(c.victim, VictimStrategy::RoundRobinScan);
    }

    #[test]
    fn half_steal_builder() {
        let c = SimConfig::new(2).with_half_steals();
        assert_eq!(c.steal_amount, StealAmount::Half);
        assert_eq!(SimConfig::new(2).steal_amount, StealAmount::One);
    }

    #[test]
    fn weighted_admission_builder() {
        let c = SimConfig::new(2).with_weighted_admission();
        assert_eq!(c.admission, AdmissionOrder::ByWeight);
        assert_eq!(SimConfig::new(2).admission, AdmissionOrder::Fifo);
    }

    #[test]
    fn sampling_builder() {
        let c = SimConfig::new(2).with_sampling(100);
        assert_eq!(c.sample_every, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sampling_panics() {
        let _ = SimConfig::new(2).with_sampling(0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let _ = SimConfig::new(0);
    }
}
