//! # parflow-core
//!
//! Online schedulers for parallelizable DAG jobs minimizing the maximum
//! (weighted) flow time, reproducing Agrawal, Li, Lu & Moseley,
//! *"Scheduling Parallelizable Jobs Online to Minimize the Maximum Flow
//! Time"*, SPAA 2016.
//!
//! ## Notation (Table 1 of the paper)
//!
//! | Symbol  | Meaning                                              |
//! |---------|------------------------------------------------------|
//! | `c_i`   | completion time of job `J_i` in the schedule         |
//! | `r_i`   | arrival (release) time of job `J_i`                   |
//! | `F_i`   | flow time `c_i − r_i`                                 |
//! | `P_i`   | critical-path length (span) of `J_i`                  |
//! | `W_i`   | total work of `J_i`                                   |
//! | `m`     | number of processors                                  |
//! | `w_i`   | weight of `J_i`                                       |
//! | `OPT`   | optimal schedule / optimal objective value            |
//!
//! ## Schedulers
//!
//! * [`Fifo`] — the idealized centralized scheduler of Section 3:
//!   `(1+ε)`-speed `O(1/ε)`-competitive (Theorem 3.1);
//! * [`StealPolicy::AdmitFirst`] / [`StealPolicy::StealKFirst`] — the
//!   distributed work-stealing schedulers of Section 4: steal-k-first with
//!   `(k+1+ε)` speed achieves `O((1/ε²)·max{OPT, ln n})` max flow w.h.p.
//!   (Theorem 4.1, Corollaries 4.2–4.3), and randomized work stealing is
//!   `Ω(log n)`-competitive in general (Lemma 5.1);
//! * [`BiggestWeightFirst`] — Section 7's scheduler for the weighted
//!   objective: `(1+ε)`-speed `O(1/ε²)`-competitive (Theorem 7.1);
//! * [`Lifo`] — a strawman baseline for ablations;
//! * `simulate_equi` — EQUI / processor sharing, the scheduler family the
//!   speedup-curves literature studies (Section 8), as an ablation showing
//!   why fair sharing is the wrong policy for *maximum* flow time.
//!
//! All schedulers are **non-clairvoyant**: they see jobs only through
//! `parflow_dag::DagCursor` (ready nodes) plus arrival time and weight.
//!
//! ## Engine model
//!
//! Execution proceeds in discrete rounds; at speed `s = num/den` round `r`
//! occupies wall time `[r·den/num, (r+1)·den/num)` and each processor
//! executes one unit of work (or one steal attempt) per round — exactly the
//! time-step model the paper's analysis uses. The optimal baseline
//! ([`opt_max_flow`]) always runs at speed 1.
//!
//! ## Quick example
//!
//! ```
//! use parflow_core::{simulate_fifo, simulate_worksteal, opt_max_flow,
//!                    SimConfig, StealPolicy};
//! use parflow_dag::{shapes, Instance, Job};
//! use std::sync::Arc;
//!
//! // Ten parallel-for jobs of 64 units arriving every 5 ticks.
//! let dag = Arc::new(shapes::parallel_for(64, 8));
//! let jobs = (0..10).map(|i| Job::new(i, i as u64 * 5, dag.clone())).collect();
//! let inst = Instance::new(jobs);
//!
//! let cfg = SimConfig::new(8);
//! let fifo = simulate_fifo(&inst, &cfg);
//! let ws = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 42);
//! let opt = opt_max_flow(&inst, 8);
//!
//! assert!(fifo.max_flow() >= opt);
//! assert!(ws.max_flow() >= opt);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batched;
mod calendar;
mod centralized;
mod config;
mod dispatch;
mod equi;
mod fault;
mod gantt;
mod interval;
mod lemmas;
mod opt;
mod result;
mod stream;
mod trace;
mod worksteal;

pub use batched::{run_batched, simulate_batched, simulate_batched_stream, ReplicaSpec};
pub use calendar::CalendarQueue;
#[cfg(feature = "reference-engine")]
pub use centralized::run_priority_reference;
pub use centralized::{
    run_priority, run_priority_batch, run_priority_observed, simulate_bwf, simulate_fifo,
    BiggestWeightFirst, Fifo, JobPriority, Lifo, ShortestJobFirst,
};
pub use config::{AdmissionOrder, SimConfig, StealAmount, StealCost, VictimStrategy};
pub use dispatch::{ParseSchedulerError, SchedulerKind};
pub use equi::{run_equi, simulate_equi};
pub use fault::{
    CrashFault, FaultEvent, FaultKind, FaultPlan, JobStatus, PanicSampler, SlowdownFault,
    SlowdownGate, StallFault, PPM,
};
pub use gantt::render_gantt;
pub use interval::{analyze_intervals, Interval, IntervalAnalysis};
pub use lemmas::{
    check_greedy_nonfull_bound, interval_accounting, ws_idling_report, GreedyViolation,
    IntervalAccounting, RoundActivity, WsIdlingReport,
};
pub use opt::{
    combined_lower_bound, opt_flows, opt_max_flow, opt_weighted_lower_bound, span_lower_bound,
    OptTracker,
};
pub use result::{BacklogSample, EngineStats, JobOutcome, SimResult};
pub use stream::{
    run_priority_stream, run_priority_stream_observed, run_worksteal_stream,
    run_worksteal_stream_observed, run_worksteal_stream_with_base, InstanceReplay, JobStream,
    OptTap, RetirementStats, StreamError, StreamSummary, StreamedJob,
};
pub use trace::{Action, ScheduleTrace, TraceSpan, TraceViolation};
pub use worksteal::{run_worksteal, run_worksteal_observed, simulate_worksteal, StealPolicy};

#[cfg(test)]
mod proptests {
    use super::*;
    use parflow_dag::{shapes, Instance, Job};
    use parflow_time::Speed;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// A random small instance of mixed DAG shapes.
    fn arb_instance() -> impl Strategy<Value = Instance> {
        (any::<u64>(), 1usize..12, 0u64..30).prop_map(|(seed, njobs, spread)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let jobs = (0..njobs)
                .map(|i| {
                    use rand::Rng;
                    let arrival = if spread == 0 {
                        0
                    } else {
                        rng.gen_range(0..=spread)
                    };
                    let dag = match rng.gen_range(0..5u8) {
                        0 => shapes::single_node(rng.gen_range(1..20)),
                        1 => shapes::chain(rng.gen_range(1..6), rng.gen_range(1..5)),
                        2 => shapes::parallel_for(rng.gen_range(1..40), rng.gen_range(1..8)),
                        3 => shapes::fork_join(rng.gen_range(0..4), rng.gen_range(1..5)),
                        _ => shapes::layered_random(&mut rng, shapes::LayeredParams::default()),
                    };
                    let weight = rng.gen_range(1..10u64);
                    Job::weighted(i as u32, arrival, weight, Arc::new(dag))
                })
                .collect();
            Instance::new(jobs)
        })
    }

    fn arb_speed() -> impl Strategy<Value = Speed> {
        prop_oneof![
            Just(Speed::ONE),
            Just(Speed::new(11, 10)),
            Just(Speed::new(3, 2)),
            Just(Speed::integer(2)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn fifo_trace_always_valid(inst in arb_instance(), m in 1usize..5, speed in arb_speed()) {
            let cfg = SimConfig::new(m).with_speed(speed).with_trace();
            let (result, trace) = run_priority(&inst, &cfg, &Fifo);
            let trace = trace.unwrap();
            prop_assert_eq!(trace.validate(&inst), Ok(()));
            let (w, _, _, _) = trace.action_counts();
            prop_assert_eq!(w, inst.total_work());
            prop_assert_eq!(result.outcomes.len(), inst.len());
        }

        #[test]
        fn bwf_trace_always_valid(inst in arb_instance(), m in 1usize..5, speed in arb_speed()) {
            let cfg = SimConfig::new(m).with_speed(speed).with_trace();
            let (_, trace) = run_priority(&inst, &cfg, &BiggestWeightFirst);
            prop_assert_eq!(trace.unwrap().validate(&inst), Ok(()));
        }

        #[test]
        fn worksteal_trace_always_valid(inst in arb_instance(), m in 1usize..5,
                                        speed in arb_speed(), seed in any::<u64>(),
                                        kk in 0u32..8) {
            let cfg = SimConfig::new(m).with_speed(speed).with_trace();
            let policy = if kk == 0 { StealPolicy::AdmitFirst }
                         else { StealPolicy::StealKFirst { k: kk } };
            let (result, trace) = run_worksteal(&inst, &cfg, policy, seed);
            prop_assert_eq!(trace.unwrap().validate(&inst), Ok(()));
            prop_assert_eq!(result.stats.work_steps, inst.total_work());
        }

        #[test]
        fn greedy_nonfull_bound_all_centralized(inst in arb_instance(), m in 1usize..5,
                                                speed in arb_speed()) {
            // Proposition 2.1's consequence holds for every centralized,
            // work-conserving schedule, at every speed.
            let cfg = SimConfig::new(m).with_speed(speed).with_trace();
            let (r, t) = run_priority(&inst, &cfg, &Fifo);
            prop_assert_eq!(check_greedy_nonfull_bound(&inst, &r, &t.unwrap()), Ok(()));
            let (r, t) = run_priority(&inst, &cfg, &BiggestWeightFirst);
            prop_assert_eq!(check_greedy_nonfull_bound(&inst, &r, &t.unwrap()), Ok(()));
            let (r, t) = run_priority(&inst, &cfg, &ShortestJobFirst);
            prop_assert_eq!(check_greedy_nonfull_bound(&inst, &r, &t.unwrap()), Ok(()));
            let (r, t) = run_equi(&inst, &cfg);
            prop_assert_eq!(check_greedy_nonfull_bound(&inst, &r, &t.unwrap()), Ok(()));
        }

        #[test]
        fn ws_interval_accounting_feasible(inst in arb_instance(), m in 1usize..5,
                                           seed in any::<u64>()) {
            prop_assume!(!inst.is_empty());
            let cfg = SimConfig::new(m).with_trace();
            let (r, t) = run_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 2 }, seed);
            if let Some(acc) = interval_accounting(&inst, &r, &t.unwrap(),
                                                   parflow_time::Rational::new(1, 10)) {
                prop_assert!(acc.executed <= acc.available);
            }
        }

        #[test]
        fn equi_trace_always_valid(inst in arb_instance(), m in 1usize..5, speed in arb_speed()) {
            let cfg = SimConfig::new(m).with_speed(speed).with_trace();
            let (result, trace) = run_equi(&inst, &cfg);
            prop_assert_eq!(trace.unwrap().validate(&inst), Ok(()));
            prop_assert_eq!(result.stats.work_steps, inst.total_work());
        }

        #[test]
        fn victim_scan_trace_always_valid(inst in arb_instance(), m in 1usize..5,
                                          seed in any::<u64>()) {
            let cfg = SimConfig::new(m).with_victim_scan().with_trace();
            let (result, trace) = run_worksteal(&inst, &cfg,
                StealPolicy::StealKFirst { k: 3 }, seed);
            prop_assert_eq!(trace.unwrap().validate(&inst), Ok(()));
            prop_assert_eq!(result.stats.work_steps, inst.total_work());
        }

        #[test]
        fn every_scheduler_dominates_opt_bound(inst in arb_instance(), m in 1usize..5,
                                               seed in any::<u64>()) {
            // OPT is a lower bound on any feasible unit-speed schedule.
            let cfg = SimConfig::new(m);
            let opt = opt_max_flow(&inst, m);
            let sk4 = StealPolicy::StealKFirst { k: 4 };
            prop_assert!(simulate_fifo(&inst, &cfg).max_flow() >= opt);
            prop_assert!(simulate_equi(&inst, &cfg).max_flow() >= opt);
            prop_assert!(simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, seed)
                .max_flow() >= opt);
            prop_assert!(simulate_worksteal(&inst, &cfg, sk4, seed).max_flow() >= opt);
        }

        #[test]
        fn flows_at_least_span_over_speed(inst in arb_instance(), m in 1usize..5,
                                          speed in arb_speed()) {
            // Each job's flow ≥ P_i / s in any speed-s schedule.
            let cfg = SimConfig::new(m).with_speed(speed);
            let r = simulate_fifo(&inst, &cfg);
            for o in &r.outcomes {
                let span = inst.jobs()[o.job as usize].span();
                let bound = parflow_time::Rational::from_int(span as i128)
                    / speed.as_rational();
                prop_assert!(o.flow >= bound, "job {} flow {} < span bound {}",
                             o.job, o.flow, bound);
            }
        }

        #[test]
        fn fifo_single_machine_sequential_equals_opt(
            arrivals_works in proptest::collection::vec((0u64..50, 1u64..20), 1..12)
        ) {
            // For sequential jobs on m=1 the simulated OPT reduction is the
            // same machine — FIFO must match it exactly.
            let jobs = arrivals_works.iter().enumerate()
                .map(|(i, &(a, w))| Job::new(i as u32, a,
                    Arc::new(shapes::single_node(w))))
                .collect();
            let inst = Instance::new(jobs);
            let r = simulate_fifo(&inst, &SimConfig::new(1));
            prop_assert_eq!(r.max_flow(), opt_max_flow(&inst, 1));
        }

        #[test]
        fn more_speed_never_hurts_fifo(inst in arb_instance(), m in 1usize..4) {
            let base = simulate_fifo(&inst, &SimConfig::new(m));
            let fast = simulate_fifo(&inst,
                &SimConfig::new(m).with_speed(Speed::integer(2)));
            prop_assert!(fast.max_flow() <= base.max_flow());
        }

        #[test]
        fn interval_analysis_structure(inst in arb_instance(), m in 1usize..4) {
            prop_assume!(!inst.is_empty());
            let r = simulate_fifo(&inst, &SimConfig::new(m));
            let a = analyze_intervals(&r, parflow_time::Rational::new(1, 10)).unwrap();
            // Contiguity + chronology + final interval is [r_i, c_i].
            for w in a.intervals.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            let last = a.intervals.last().unwrap();
            prop_assert_eq!(last.start, a.arrival);
            prop_assert_eq!(last.end, a.completion);
            prop_assert!(a.t_prime <= a.t_beta());
        }
    }
}
