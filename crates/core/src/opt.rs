//! Lower bounds on the optimal maximum (weighted) flow time.
//!
//! The true optimum is intractable to compute, so — exactly like the paper's
//! Section 6 — we bound it from below by relaxing the problem: assume every
//! job is *fully parallelizable* (speedup `m` on `m` processors) and there is
//! no preemption overhead. Each job then behaves like a sequential job of
//! size `W_i / m` on a single unit-speed machine, where FIFO is known to be
//! optimal for maximum flow time. The resulting value lower-bounds every
//! feasible schedule of the original instance.
//!
//! We additionally expose the critical-path bound `OPT ≥ max_i P_i`
//! (Proposition 2.1: no scheduler finishes a job faster than its span) and
//! their combination, plus the analogous bounds for the weighted objective.

use parflow_dag::Instance;
use parflow_time::{Rational, Ticks, Work};

/// Per-job flow times of the paper's simulated-OPT baseline: FIFO on one
/// unit-speed machine with job sizes `W_i / m`, computed exactly.
///
/// Jobs are processed in arrival order (the instance is arrival-sorted);
/// `c_i = max(r_i, c_{i-1}) + W_i/m`, `F_i = c_i − r_i`.
pub fn opt_flows(instance: &Instance, m: usize) -> Vec<Rational> {
    assert!(m > 0);
    let m128 = m as i128;
    // Track completion scaled by m to stay in integers.
    let mut completion_x_m: i128 = 0;
    let mut flows = Vec::with_capacity(instance.len());
    for job in instance.jobs() {
        let arrival_x_m = job.arrival as i128 * m128;
        completion_x_m = completion_x_m.max(arrival_x_m) + job.work() as i128;
        flows.push(Rational::new(completion_x_m - arrival_x_m, m128));
    }
    flows
}

/// The paper's simulated-OPT lower bound on the optimal maximum flow time:
/// `max_i F_i` of [`opt_flows`]. Zero for empty instances.
///
/// ```
/// use parflow_dag::{shapes, Instance, Job};
/// use parflow_time::Rational;
/// use std::sync::Arc;
///
/// // Two jobs of 8 units arriving together on 2 processors: sizes 4 each,
/// // FIFO on one machine completes them at 4 and 8 → max flow 8.
/// let dag = Arc::new(shapes::single_node(8));
/// let inst = Instance::new(vec![Job::new(0, 0, dag.clone()), Job::new(1, 0, dag)]);
/// assert_eq!(parflow_core::opt_max_flow(&inst, 2), Rational::from_int(8));
/// ```
pub fn opt_max_flow(instance: &Instance, m: usize) -> Rational {
    opt_flows(instance, m)
        .into_iter()
        .max()
        .unwrap_or(Rational::ZERO)
}

/// Critical-path lower bound: `OPT ≥ max_i P_i`, since no scheduler can
/// finish a job before its span elapses (Proposition 2.1).
pub fn span_lower_bound(instance: &Instance) -> Rational {
    Rational::from_int(instance.max_span() as i128)
}

/// The strongest unweighted lower bound this crate offers:
/// `max(opt_max_flow, span_lower_bound)`.
pub fn combined_lower_bound(instance: &Instance, m: usize) -> Rational {
    opt_max_flow(instance, m).max(span_lower_bound(instance))
}

/// Lower bound on the optimal maximum *weighted* flow time:
/// `max_i w_i · max(P_i, W_i/m)` — a job's flow in any schedule is at least
/// its span and at least its work divided by the machine capacity.
pub fn opt_weighted_lower_bound(instance: &Instance, m: usize) -> Rational {
    assert!(m > 0);
    let m128 = m as i128;
    instance
        .jobs()
        .iter()
        .map(|j| {
            let span = Rational::from_int(j.span() as i128);
            let work_over_m = Rational::new(j.work() as i128, m128);
            span.max(work_over_m).mul_ratio(j.weight as i128, 1)
        })
        .max()
        .unwrap_or(Rational::ZERO)
}

/// Incremental form of the batch lower bounds: feeds on one arrival at a
/// time and maintains [`opt_max_flow`], [`span_lower_bound`] and
/// [`combined_lower_bound`] online, in O(1) state — so streaming runs (and
/// `parflow-serve`'s admission ledger) get live competitive ratios without
/// ever materializing the instance.
///
/// The recurrence is exactly [`opt_flows`]'s, scaled by `m` to stay in
/// integers: `c_i·m = max(c_{i-1}·m, r_i·m) + W_i`, `F_i = (c_i·m −
/// r_i·m)/m`. After feeding the jobs of an arrival-sorted instance in
/// order, every accessor equals its batch counterpart bit-for-bit (pinned
/// by `tests/stream_differential.rs`). Arrivals must be non-decreasing,
/// like an [`Instance`]'s.
#[derive(Clone, Debug)]
pub struct OptTracker {
    m128: i128,
    completion_x_m: i128,
    max_flow: Rational,
    max_span: Work,
    arrivals: u64,
    #[cfg(debug_assertions)]
    last_arrival: Ticks,
}

impl OptTracker {
    /// Tracker for an `m`-machine cluster (`m > 0`).
    pub fn new(m: usize) -> Self {
        assert!(m > 0);
        OptTracker {
            m128: m as i128,
            completion_x_m: 0,
            max_flow: Rational::ZERO,
            max_span: 0,
            arrivals: 0,
            #[cfg(debug_assertions)]
            last_arrival: 0,
        }
    }

    /// Feed one arrival (work `W_i`, span `P_i`); returns the job's flow in
    /// the simulated-OPT baseline — the value [`opt_flows`] would put at
    /// this index.
    pub fn on_arrival(&mut self, arrival: Ticks, work: Work, span: Work) -> Rational {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                arrival >= self.last_arrival,
                "OptTracker arrivals must be non-decreasing"
            );
            self.last_arrival = arrival;
        }
        let arrival_x_m = arrival as i128 * self.m128;
        self.completion_x_m = self.completion_x_m.max(arrival_x_m) + work as i128;
        let flow = Rational::new(self.completion_x_m - arrival_x_m, self.m128);
        self.max_flow = self.max_flow.max(flow);
        self.max_span = self.max_span.max(span);
        self.arrivals += 1;
        flow
    }

    /// Jobs fed so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Running [`opt_max_flow`] over the fed prefix.
    pub fn opt_max_flow(&self) -> Rational {
        self.max_flow
    }

    /// Running [`span_lower_bound`] over the fed prefix.
    pub fn span_lower_bound(&self) -> Rational {
        Rational::from_int(self.max_span as i128)
    }

    /// Running [`combined_lower_bound`] over the fed prefix.
    pub fn combined_lower_bound(&self) -> Rational {
        self.max_flow.max(self.span_lower_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parflow_dag::{shapes, Job};
    use std::sync::Arc;

    fn inst(arrivals_works: &[(u64, u64)]) -> Instance {
        Instance::new(
            arrivals_works
                .iter()
                .enumerate()
                .map(|(i, &(a, w))| Job::new(i as u32, a, Arc::new(shapes::single_node(w))))
                .collect(),
        )
    }

    #[test]
    fn single_job() {
        let i = inst(&[(0, 12)]);
        assert_eq!(opt_max_flow(&i, 4), Rational::from_int(3));
        assert_eq!(opt_max_flow(&i, 1), Rational::from_int(12));
    }

    #[test]
    fn fractional_sizes() {
        let i = inst(&[(0, 10)]);
        assert_eq!(opt_max_flow(&i, 3), Rational::new(10, 3));
    }

    #[test]
    fn queueing_backlog() {
        // Two jobs at t=0, each W=4, m=2 → sizes 2 each; FIFO completions at
        // 2 and 4 → max flow 4.
        let i = inst(&[(0, 4), (0, 4)]);
        assert_eq!(opt_max_flow(&i, 2), Rational::from_int(4));
    }

    #[test]
    fn spaced_arrivals_no_backlog() {
        // W/m = 2 each, arrivals 4 apart → each flows exactly 2.
        let i = inst(&[(0, 4), (4, 4), (8, 4)]);
        assert_eq!(opt_max_flow(&i, 2), Rational::from_int(2));
        let flows = opt_flows(&i, 2);
        assert!(flows.iter().all(|&f| f == Rational::from_int(2)));
    }

    #[test]
    fn empty_instance_is_zero() {
        let i = Instance::new(vec![]);
        assert_eq!(opt_max_flow(&i, 2), Rational::ZERO);
        assert_eq!(opt_weighted_lower_bound(&i, 2), Rational::ZERO);
    }

    #[test]
    fn span_bound() {
        let jobs = vec![
            Job::new(0, 0, Arc::new(shapes::chain(5, 2))), // span 10
            Job::new(1, 0, Arc::new(shapes::diamond(4, 1))), // span 3
        ];
        let i = Instance::new(jobs);
        assert_eq!(span_lower_bound(&i), Rational::from_int(10));
    }

    #[test]
    fn combined_bound_takes_max() {
        // A single high-span job on many machines: W/m is tiny but span
        // dominates.
        let jobs = vec![Job::new(0, 0, Arc::new(shapes::chain(10, 1)))];
        let i = Instance::new(jobs);
        assert_eq!(opt_max_flow(&i, 100), Rational::new(10, 100));
        assert_eq!(combined_lower_bound(&i, 100), Rational::from_int(10));
    }

    #[test]
    fn weighted_bound() {
        let jobs = vec![
            Job::weighted(0, 0, 10, Arc::new(shapes::single_node(4))), // w=10, span=4, W/m=2
            Job::weighted(1, 0, 1, Arc::new(shapes::single_node(100))), // w=1, span=100
        ];
        let i = Instance::new(jobs);
        // max(10·max(4,2), 1·max(100,50)) = max(40, 100) = 100.
        assert_eq!(opt_weighted_lower_bound(&i, 2), Rational::from_int(100));
    }

    #[test]
    fn tracker_matches_batch_after_every_arrival() {
        let i = inst(&[(0, 6), (1, 2), (5, 4), (5, 9), (30, 1)]);
        let m = 2;
        let mut t = OptTracker::new(m);
        let flows = opt_flows(&i, m);
        for (idx, job) in i.jobs().iter().enumerate() {
            let f = t.on_arrival(job.arrival, job.work(), job.span());
            assert_eq!(f, flows[idx]);
            // After each arrival the tracker equals the batch bounds over
            // the prefix instance.
            let prefix = Instance::new(i.jobs()[..=idx].to_vec());
            assert_eq!(t.opt_max_flow(), opt_max_flow(&prefix, m));
            assert_eq!(t.span_lower_bound(), span_lower_bound(&prefix));
            assert_eq!(t.combined_lower_bound(), combined_lower_bound(&prefix, m));
        }
        assert_eq!(t.arrivals(), 5);
    }

    #[test]
    fn fresh_tracker_is_zero() {
        let t = OptTracker::new(4);
        assert_eq!(t.opt_max_flow(), Rational::ZERO);
        assert_eq!(t.combined_lower_bound(), Rational::ZERO);
        assert_eq!(t.arrivals(), 0);
    }

    #[test]
    fn opt_flows_match_hand_computation() {
        // m=2; jobs (arrival, work): (0,6),(1,2),(5,4)
        // sizes 3,1,2; completions: 3, 4, 7; flows: 3, 3, 2.
        let i = inst(&[(0, 6), (1, 2), (5, 4)]);
        let flows = opt_flows(&i, 2);
        assert_eq!(
            flows,
            vec![
                Rational::from_int(3),
                Rational::from_int(3),
                Rational::from_int(2)
            ]
        );
        assert_eq!(opt_max_flow(&i, 2), Rational::from_int(3));
    }
}
