//! EQUI (equipartition / processor sharing): the classic scheduler from the
//! arbitrary-speedup-curves literature the paper contrasts against
//! (Section 8; Edmonds & Pruhs [11]).
//!
//! Each round the `m` processors are split as evenly as possible among the
//! active jobs (a rotating remainder keeps the split fair over time); any
//! quota a job cannot use — fewer ready nodes than its share — is handed
//! greedily to the remaining jobs. EQUI is known to be scalable for
//! *average* flow time in the speedup-curves model, but it is the wrong
//! policy for *maximum* flow time: it divides capacity among late arrivals
//! instead of draining the oldest job, so its max flow degrades under
//! backlog where FIFO's does not. The `equi` ablation (`repro equi`,
//! bench `ablations`) quantifies exactly that.

use crate::config::SimConfig;
use crate::fault::JobStatus;
use crate::result::{EngineStats, JobOutcome, SimResult};
use crate::trace::{Action, ScheduleTrace};
use parflow_dag::{DagCursor, Instance, JobId, NodeId, UnitOutcome};
use parflow_time::Round;

/// Simulate EQUI on `instance`.
pub fn run_equi(instance: &Instance, config: &SimConfig) -> (SimResult, Option<ScheduleTrace>) {
    let jobs = instance.jobs();
    let n = jobs.len();
    let m = config.m;
    let speed = config.speed;

    let mut cursors: Vec<Option<DagCursor>> = vec![None; n];
    // Active jobs in arrival order (EQUI has no priorities).
    let mut active: Vec<JobId> = Vec::new();
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n];
    let mut started: Vec<Option<Round>> = vec![None; n];
    let mut stats = EngineStats::default();
    let mut trace = config.record_trace.then(|| ScheduleTrace::new(m, speed));

    let mut next_arrival = 0usize;
    let mut completed = 0usize;
    let mut round: Round = 0;
    let mut last_busy_round: Round = 0;

    let safety_cap: Round = speed.first_round_at_or_after(instance.last_arrival())
        + instance.total_work()
        + n as Round
        + 16;

    let mut claimed: Vec<(JobId, NodeId)> = Vec::new();
    let mut ready_buf: Vec<NodeId> = Vec::new();

    while completed < n {
        assert!(round <= safety_cap, "EQUI engine exceeded round cap");

        while next_arrival < n && speed.arrived_by_round(jobs[next_arrival].arrival, round) {
            let job = &jobs[next_arrival];
            active.push(job.id);
            cursors[job.id as usize] = Some(DagCursor::new(&job.dag));
            next_arrival += 1;
        }

        if active.is_empty() {
            debug_assert!(next_arrival < n);
            let target = speed.first_round_at_or_after(jobs[next_arrival].arrival);
            let gap = target - round;
            stats.idle_steps += gap * m as u64;
            if let Some(t) = trace.as_mut() {
                t.push_idle_rounds(gap);
            }
            round = target;
            continue;
        }

        // Equipartition: base share for all, rotating remainder, then a
        // greedy second pass for unusable quota.
        claimed.clear();
        let n_act = active.len();
        let base = m / n_act;
        let extra = m % n_act;
        let rot = (round as usize) % n_act;
        let mut spare = 0usize;
        for (i, &jid) in active.iter().enumerate() {
            // Positions rot, rot+1, …, rot+extra−1 (mod n_act) get +1.
            let bonus = ((i + n_act - rot) % n_act < extra) as usize;
            let quota = base + bonus;
            let cursor = cursors[jid as usize].as_mut().expect("active job"); // lint: allow(panicking) invariant: every active job owns a cursor until completion
            ready_buf.clear();
            ready_buf.extend_from_slice(cursor.ready_nodes());
            ready_buf.sort_unstable();
            let take = ready_buf.len().min(quota);
            for &v in ready_buf.iter().take(take) {
                cursor.claim(v).expect("ready node claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                claimed.push((jid, v));
            }
            spare += quota - take;
        }
        // Second pass: hand spare processors to jobs with leftover ready
        // nodes, in arrival order.
        if spare > 0 {
            for &jid in active.iter() {
                if spare == 0 {
                    break;
                }
                let cursor = cursors[jid as usize].as_mut().expect("active job"); // lint: allow(panicking) invariant: every active job owns a cursor until completion
                ready_buf.clear();
                ready_buf.extend_from_slice(cursor.ready_nodes());
                ready_buf.sort_unstable();
                let take = ready_buf.len().min(spare);
                for &v in ready_buf.iter().take(take) {
                    cursor.claim(v).expect("ready node claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                    claimed.push((jid, v));
                }
                spare -= take;
            }
        }
        debug_assert!(!claimed.is_empty(), "active jobs must yield ready work");

        for &(jid, v) in &claimed {
            let job = &jobs[jid as usize];
            started[jid as usize].get_or_insert(round);
            // lint: allow(panicking) invariant: active jobs always own a cursor
            let cursor = cursors[jid as usize].as_mut().expect("cursor");
            // lint: allow(panicking) invariant: execute targets were claimed this round
            match cursor.execute_unit(&job.dag, v).expect("claimed node") {
                UnitOutcome::InProgress => {
                    cursor.release(v).expect("in-progress node releases"); // lint: allow(panicking) invariant: release follows the successful claim above
                }
                UnitOutcome::NodeCompleted { job_completed, .. } => {
                    if job_completed {
                        let pos = active
                            .iter()
                            .position(|&j| j == jid)
                            .expect("completed job was active"); // lint: allow(panicking) invariant: a completing job sits in the active list exactly once
                        active.remove(pos);
                        outcomes[jid as usize] = Some(JobOutcome {
                            job: jid,
                            arrival: job.arrival,
                            weight: job.weight,
                            start_round: started[jid as usize].expect("job executed"), // lint: allow(panicking) invariant: start_round is recorded before any execution
                            completion_round: round,
                            completion: speed.round_end(round),
                            flow: speed.flow_time(job.arrival, round),
                            status: JobStatus::Completed,
                        });
                        completed += 1;
                    }
                }
            }
        }

        stats.work_steps += claimed.len() as u64;
        stats.idle_steps += (m - claimed.len()) as u64;
        last_busy_round = round;
        if let Some(t) = trace.as_mut() {
            let mut row: Vec<Action> = claimed
                .iter()
                .map(|&(job, node)| Action::Work { job, node })
                .collect();
            row.resize(m, Action::Idle);
            t.push_row(row);
        }
        round += 1;
    }

    let outcomes: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("all jobs completed")) // lint: allow(panicking) invariant: the engine loop exits only after every job completes
        .collect();
    (
        SimResult {
            m,
            speed,
            total_rounds: last_busy_round + 1,
            outcomes,
            stats,
            samples: Vec::new(),
            fault_events: Vec::new(),
        },
        trace,
    )
}

/// Convenience wrapper returning only the [`SimResult`].
pub fn simulate_equi(instance: &Instance, config: &SimConfig) -> SimResult {
    run_equi(instance, config).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::simulate_fifo;
    use parflow_dag::{shapes, Job};
    use parflow_time::Rational;
    use std::sync::Arc;

    fn seq_jobs(arrivals_works: &[(u64, u64)]) -> Instance {
        Instance::new(
            arrivals_works
                .iter()
                .enumerate()
                .map(|(i, &(a, w))| Job::new(i as u32, a, Arc::new(shapes::single_node(w))))
                .collect(),
        )
    }

    #[test]
    fn single_job_gets_everything() {
        let dag = Arc::new(shapes::diamond(4, 1));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let r = simulate_equi(&inst, &SimConfig::new(4));
        assert_eq!(r.max_flow(), Rational::from_int(3)); // span
    }

    #[test]
    fn two_sequential_jobs_share_evenly() {
        // Two sequential jobs of 4 units on m=2: each gets 1 processor →
        // both finish at round 3 (flow 4), like FIFO here.
        let inst = seq_jobs(&[(0, 4), (0, 4)]);
        let r = simulate_equi(&inst, &SimConfig::new(2));
        assert_eq!(r.outcomes[0].flow, Rational::from_int(4));
        assert_eq!(r.outcomes[1].flow, Rational::from_int(4));
    }

    #[test]
    fn rotating_remainder_is_fair() {
        // Two sequential jobs on m=1: the single processor alternates, so
        // both finish within one unit of 2W.
        let inst = seq_jobs(&[(0, 5), (0, 5)]);
        let r = simulate_equi(&inst, &SimConfig::new(1));
        let f0 = r.outcomes[0].flow;
        let f1 = r.outcomes[1].flow;
        assert_eq!(f0.max(f1), Rational::from_int(10));
        assert_eq!(f0.min(f1), Rational::from_int(9));
    }

    #[test]
    fn spare_quota_is_redistributed() {
        // Job 0 is sequential (can use 1 proc), job 1 is wide: job 1 should
        // soak up job 0's unusable share.
        let jobs = vec![
            Job::new(0, 0, Arc::new(shapes::single_node(4))),
            Job::new(1, 0, Arc::new(shapes::diamond(6, 2))),
        ];
        let inst = Instance::new(jobs);
        let r = simulate_equi(&inst, &SimConfig::new(4));
        // Work conservation and full utilization while both jobs are live:
        assert_eq!(r.stats.work_steps, inst.total_work());
        // The wide job (work 14, span 4) with ~3 processors after round 0
        // should finish well under sequential time.
        assert!(r.outcomes[1].flow < Rational::from_int(14));
    }

    #[test]
    fn equi_worse_than_fifo_for_max_flow_under_backlog() {
        // The structural weakness EQUI has for max flow: a stream of later
        // arrivals steals capacity from the oldest job.
        let inst = seq_jobs(&[(0, 20), (1, 20), (2, 20), (3, 20)]);
        let cfg = SimConfig::new(2);
        let equi = simulate_equi(&inst, &cfg).max_flow();
        let fifo = simulate_fifo(&inst, &cfg).max_flow();
        assert!(
            equi >= fifo,
            "EQUI {} should not beat FIFO {} on max flow here",
            equi.to_f64(),
            fifo.to_f64()
        );
    }

    #[test]
    fn trace_validates() {
        let dag = Arc::new(shapes::fork_join(3, 2));
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::new(i, i as u64 * 3, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let (r, trace) = run_equi(&inst, &SimConfig::new(3).with_trace());
        let trace = trace.unwrap();
        assert!(trace.validate(&inst).is_ok());
        assert_eq!(r.stats.work_steps, inst.total_work());
    }

    #[test]
    fn trace_validates_with_speed() {
        let inst = seq_jobs(&[(0, 7), (2, 5), (9, 3)]);
        let (_, trace) = run_equi(
            &inst,
            &SimConfig::new(2)
                .with_speed(parflow_time::Speed::new(11, 10))
                .with_trace(),
        );
        assert!(trace.unwrap().validate(&inst).is_ok());
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![]);
        let r = simulate_equi(&inst, &SimConfig::new(2));
        assert!(r.outcomes.is_empty());
    }
}
