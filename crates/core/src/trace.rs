//! Schedule traces and an independent validity checker.
//!
//! Every engine can record what each processor did in each round. The
//! validator re-checks a recorded trace against the instance *without
//! trusting the engine*: arrivals, precedence constraints, exclusive node
//! execution and work conservation. Property tests run every scheduler
//! through this check.
//!
//! All-idle rounds (quiescent gaps between arrivals) are run-length encoded
//! as a single [`TraceSpan::Idle`] entry instead of `gap` copies of
//! `vec![Action::Idle; m]`, so a trace of a sparse instance costs O(busy
//! rounds), not O(total rounds).

use parflow_dag::{Instance, JobId, NodeId};
use parflow_time::{Round, Speed};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// What one processor did during one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Executed one unit of work of node `node` of job `job`.
    Work {
        /// Job worked on.
        job: JobId,
        /// Node worked on.
        node: NodeId,
    },
    /// Performed a steal attempt (work stealing only). `hit` is true if the
    /// victim had work.
    Steal {
        /// Whether the attempt found work.
        hit: bool,
    },
    /// Admitted a job from the global queue (work stealing only).
    Admit {
        /// Job admitted.
        job: JobId,
    },
    /// Nothing to do.
    Idle,
}

/// A run of consecutive rounds in a [`ScheduleTrace`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceSpan {
    /// One explicit round: what each of the `m` processors did.
    Busy(Vec<Action>),
    /// `count` consecutive rounds in which every processor idled.
    Idle {
        /// Number of all-idle rounds this span covers.
        count: u64,
    },
}

/// A complete record of a simulated schedule, as a sequence of rounds.
///
/// Busy rounds are stored explicitly; all-idle spans are run-length
/// encoded. Use [`ScheduleTrace::rounds`] to iterate per-round rows
/// (idle rounds yield `None`), or [`ScheduleTrace::to_dense`] for the
/// expanded `rounds[r][p]` form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTrace {
    /// Number of processors.
    pub m: usize,
    /// Speed of the schedule.
    pub speed: Speed,
    /// Run-length encoded rounds.
    pub spans: Vec<TraceSpan>,
}

/// A violation found by [`ScheduleTrace::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceViolation {
    /// A round row has the wrong number of processor entries.
    BadRowWidth {
        /// Offending round.
        round: Round,
    },
    /// Work on a job before it arrived.
    EarlyStart {
        /// Offending round.
        round: Round,
        /// Offending job.
        job: JobId,
    },
    /// Work on an unknown job or node.
    UnknownTarget {
        /// Offending job.
        job: JobId,
        /// Offending node.
        node: NodeId,
    },
    /// Two processors executed the same node in the same round.
    ConcurrentNode {
        /// Offending round.
        round: Round,
        /// Offending job.
        job: JobId,
        /// Offending node.
        node: NodeId,
    },
    /// A node received a unit before all its predecessors completed.
    PrecedenceViolation {
        /// Offending round.
        round: Round,
        /// Offending job.
        job: JobId,
        /// Offending node.
        node: NodeId,
    },
    /// A node received more units than its work.
    OverExecution {
        /// Offending job.
        job: JobId,
        /// Offending node.
        node: NodeId,
    },
    /// At the end of the trace some node had not received all its units.
    IncompleteNode {
        /// Offending job.
        job: JobId,
        /// Offending node.
        node: NodeId,
        /// Units actually executed.
        executed: u64,
    },
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceViolation::BadRowWidth { round } => write!(f, "round {round}: bad row width"),
            TraceViolation::EarlyStart { round, job } => {
                write!(f, "round {round}: job {job} executed before arrival")
            }
            TraceViolation::UnknownTarget { job, node } => {
                write!(f, "unknown target job {job} node {node}")
            }
            TraceViolation::ConcurrentNode { round, job, node } => {
                write!(f, "round {round}: node {node} of job {job} on 2 processors")
            }
            TraceViolation::PrecedenceViolation { round, job, node } => {
                write!(f, "round {round}: job {job} node {node} ran before preds")
            }
            TraceViolation::OverExecution { job, node } => {
                write!(f, "job {job} node {node} over-executed")
            }
            TraceViolation::IncompleteNode {
                job,
                node,
                executed,
            } => write!(f, "job {job} node {node} incomplete ({executed} units)"),
        }
    }
}

impl ScheduleTrace {
    /// An empty trace for `m` processors at `speed`.
    pub fn new(m: usize, speed: Speed) -> Self {
        ScheduleTrace {
            m,
            speed,
            spans: Vec::new(),
        }
    }

    /// Total number of rounds covered (busy rows plus RLE idle rounds).
    pub fn num_rounds(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| match s {
                TraceSpan::Busy(_) => 1,
                TraceSpan::Idle { count } => *count,
            })
            .sum()
    }

    /// Append one explicit round row.
    pub fn push_row(&mut self, row: Vec<Action>) {
        self.spans.push(TraceSpan::Busy(row));
    }

    /// Append `count` all-idle rounds, merging into a trailing idle span.
    pub fn push_idle_rounds(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(TraceSpan::Idle { count: c }) = self.spans.last_mut() {
            *c += count;
        } else {
            self.spans.push(TraceSpan::Idle { count });
        }
    }

    /// Iterate rounds in order. Busy rounds yield `Some(row)`, RLE idle
    /// rounds yield `None` (semantically a row of `m` idles).
    pub fn rounds(&self) -> impl Iterator<Item = Option<&[Action]>> {
        self.spans.iter().flat_map(|s| match s {
            TraceSpan::Busy(row) => itertools_repeat_row(Some(row.as_slice()), 1),
            TraceSpan::Idle { count } => itertools_repeat_row(None, *count),
        })
    }

    /// Iterate spans together with the round at which each span starts.
    ///
    /// Replay-style consumers (the certifier, renderers) need absolute
    /// round numbers without materializing RLE idle gaps; this keeps the
    /// running offset in one place instead of at every call site.
    pub fn spans_with_rounds(&self) -> impl Iterator<Item = (Round, &TraceSpan)> {
        let mut r: Round = 0;
        self.spans.iter().map(move |s| {
            let start = r;
            r += match s {
                TraceSpan::Busy(_) => 1,
                TraceSpan::Idle { count } => *count,
            };
            (start, s)
        })
    }

    /// Expand to the dense `rounds[r][p]` form (idle spans materialized).
    pub fn to_dense(&self) -> Vec<Vec<Action>> {
        let mut out = Vec::new();
        for row in self.rounds() {
            match row {
                Some(r) => out.push(r.to_vec()),
                None => out.push(vec![Action::Idle; self.m]),
            }
        }
        out
    }

    /// Build a trace from dense rows (the inverse of
    /// [`ScheduleTrace::to_dense`]; all-idle rows are re-encoded).
    pub fn from_dense(m: usize, speed: Speed, rows: Vec<Vec<Action>>) -> Self {
        let mut t = ScheduleTrace::new(m, speed);
        for row in rows {
            if !row.is_empty() && row.len() == m && row.iter().all(|a| *a == Action::Idle) {
                t.push_idle_rounds(1);
            } else {
                t.push_row(row);
            }
        }
        t
    }

    /// Exhaustively validate this trace against `instance`.
    ///
    /// Checks, independently of any engine state:
    /// 1. every explicit round row covers all `m` processors;
    /// 2. no job is worked on before its arrival becomes visible
    ///    (`arrival ≤ round-start`);
    /// 3. no node runs on two processors in the same round;
    /// 4. a node's first unit comes strictly after the round in which its
    ///    last predecessor finished (units occupy whole rounds);
    /// 5. every node receives exactly `work` units over the trace.
    pub fn validate(&self, instance: &Instance) -> Result<(), TraceViolation> {
        // Executed units and completion round per (job, node). Ordered
        // maps, so any future iteration over validator state is
        // deterministic by construction, not by accident — the validator
        // sits on the golden path (property tests run every scheduler
        // through it) and must never become an ordering side channel.
        let mut executed: BTreeMap<(JobId, NodeId), u64> = BTreeMap::new();
        let mut completed_in: BTreeMap<(JobId, NodeId), Round> = BTreeMap::new();
        let jobs = instance.jobs();
        // Precompute predecessor lists per job (lazily, shared across rounds).
        let mut preds_cache: BTreeMap<JobId, Vec<Vec<NodeId>>> = BTreeMap::new();

        let mut r: Round = 0;
        for span in &self.spans {
            let row = match span {
                TraceSpan::Idle { count } => {
                    // An RLE idle span is trivially valid: nothing executes.
                    r += count;
                    continue;
                }
                TraceSpan::Busy(row) => row,
            };
            if row.len() != self.m {
                return Err(TraceViolation::BadRowWidth { round: r });
            }
            let mut this_round: Vec<(JobId, NodeId)> = Vec::new();
            for action in row {
                let (job, node) = match *action {
                    Action::Work { job, node } => (job, node),
                    _ => continue,
                };
                let j = jobs
                    .get(job as usize)
                    .ok_or(TraceViolation::UnknownTarget { job, node })?;
                if (node as usize) >= j.dag.num_nodes() {
                    return Err(TraceViolation::UnknownTarget { job, node });
                }
                if !self.speed.arrived_by_round(j.arrival, r) {
                    return Err(TraceViolation::EarlyStart { round: r, job });
                }
                if this_round.contains(&(job, node)) {
                    return Err(TraceViolation::ConcurrentNode {
                        round: r,
                        job,
                        node,
                    });
                }
                this_round.push((job, node));

                // Precedence: every predecessor must have completed in a
                // strictly earlier round. Predecessors are nodes v with
                // `node ∈ succs(v)`.
                let units = executed.entry((job, node)).or_insert(0);
                if *units == 0 {
                    let preds = preds_cache.entry(job).or_insert_with(|| {
                        let mut p = vec![Vec::new(); j.dag.num_nodes()];
                        // lint: allow(truncating-cast) NodeId is u32; JobDag construction caps node count at u32 range
                        for pid in 0..j.dag.num_nodes() as u32 {
                            for &s in j.dag.succs(pid) {
                                p[s as usize].push(pid);
                            }
                        }
                        p
                    });
                    for &pid in &preds[node as usize] {
                        match completed_in.get(&(job, pid)) {
                            Some(&cr) if cr < r => {}
                            _ => {
                                return Err(TraceViolation::PrecedenceViolation {
                                    round: r,
                                    job,
                                    node,
                                })
                            }
                        }
                    }
                }
                *units += 1;
                let w = j.dag.work(node);
                if *units > w {
                    return Err(TraceViolation::OverExecution { job, node });
                }
                if *units == w {
                    completed_in.insert((job, node), r);
                }
            }
            r += 1;
        }

        // Work conservation: every node of every job fully executed.
        for j in jobs {
            // lint: allow(truncating-cast) NodeId is u32; JobDag construction caps node count at u32 range
            for nid in 0..j.dag.num_nodes() as u32 {
                let got = executed.get(&(j.id, nid)).copied().unwrap_or(0);
                if got != j.dag.work(nid) {
                    return Err(TraceViolation::IncompleteNode {
                        job: j.id,
                        node: nid,
                        executed: got,
                    });
                }
            }
        }
        Ok(())
    }

    /// Count processor-rounds by action type: (work, steals, admits, idle).
    pub fn action_counts(&self) -> (u64, u64, u64, u64) {
        let (mut w, mut s, mut a, mut i) = (0, 0, 0, 0);
        for span in &self.spans {
            match span {
                TraceSpan::Idle { count } => i += count * self.m as u64,
                TraceSpan::Busy(row) => {
                    for act in row {
                        match act {
                            Action::Work { .. } => w += 1,
                            Action::Steal { .. } => s += 1,
                            Action::Admit { .. } => a += 1,
                            Action::Idle => i += 1,
                        }
                    }
                }
            }
        }
        (w, s, a, i)
    }
}

/// Repeat a row reference `count` times (names the closure-free type so
/// both `flat_map` arms agree).
fn itertools_repeat_row(
    row: Option<&[Action]>,
    count: u64,
) -> std::iter::RepeatN<Option<&[Action]>> {
    std::iter::repeat_n(row, count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parflow_dag::{shapes, Instance, Job};
    use std::sync::Arc;

    fn one_job_instance(arrival: u64) -> Instance {
        let dag = Arc::new(shapes::chain(2, 1)); // nodes 0 -> 1, 1 unit each
        Instance::new(vec![Job::new(0, arrival, dag)])
    }

    fn trace(m: usize, rounds: Vec<Vec<Action>>) -> ScheduleTrace {
        let mut t = ScheduleTrace::new(m, Speed::ONE);
        for row in rounds {
            t.push_row(row);
        }
        t
    }

    #[test]
    fn valid_chain_trace() {
        let inst = one_job_instance(0);
        let t = trace(
            1,
            vec![
                vec![Action::Work { job: 0, node: 0 }],
                vec![Action::Work { job: 0, node: 1 }],
            ],
        );
        assert_eq!(t.validate(&inst), Ok(()));
        assert_eq!(t.action_counts(), (2, 0, 0, 0));
    }

    #[test]
    fn early_start_detected() {
        let inst = one_job_instance(5);
        let t = trace(1, vec![vec![Action::Work { job: 0, node: 0 }]]);
        assert_eq!(
            t.validate(&inst),
            Err(TraceViolation::EarlyStart { round: 0, job: 0 })
        );
    }

    #[test]
    fn precedence_violation_detected() {
        let inst = one_job_instance(0);
        // Node 1 before node 0.
        let t = trace(
            1,
            vec![
                vec![Action::Work { job: 0, node: 1 }],
                vec![Action::Work { job: 0, node: 0 }],
            ],
        );
        assert!(matches!(
            t.validate(&inst),
            Err(TraceViolation::PrecedenceViolation { node: 1, .. })
        ));
    }

    #[test]
    fn same_round_succ_violation_detected() {
        // Executing succ in the same round as the pred's completion is a
        // violation (rounds are atomic time steps).
        let dag = Arc::new(shapes::chain(2, 1));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let t = trace(
            2,
            vec![vec![
                Action::Work { job: 0, node: 0 },
                Action::Work { job: 0, node: 1 },
            ]],
        );
        assert!(matches!(
            t.validate(&inst),
            Err(TraceViolation::PrecedenceViolation { .. })
        ));
    }

    #[test]
    fn concurrent_node_detected() {
        let dag = Arc::new(shapes::single_node(2));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let t = trace(
            2,
            vec![vec![
                Action::Work { job: 0, node: 0 },
                Action::Work { job: 0, node: 0 },
            ]],
        );
        assert!(matches!(
            t.validate(&inst),
            Err(TraceViolation::ConcurrentNode { .. })
        ));
    }

    #[test]
    fn over_execution_detected() {
        let inst = Instance::new(vec![Job::new(0, 0, Arc::new(shapes::single_node(1)))]);
        let t = trace(
            1,
            vec![
                vec![Action::Work { job: 0, node: 0 }],
                vec![Action::Work { job: 0, node: 0 }],
            ],
        );
        assert!(matches!(
            t.validate(&inst),
            Err(TraceViolation::OverExecution { .. })
        ));
    }

    #[test]
    fn incomplete_detected() {
        let inst = Instance::new(vec![Job::new(0, 0, Arc::new(shapes::single_node(2)))]);
        let t = trace(1, vec![vec![Action::Work { job: 0, node: 0 }]]);
        assert!(matches!(
            t.validate(&inst),
            Err(TraceViolation::IncompleteNode { executed: 1, .. })
        ));
    }

    #[test]
    fn unknown_job_detected() {
        let inst = one_job_instance(0);
        let t = trace(1, vec![vec![Action::Work { job: 7, node: 0 }]]);
        assert!(matches!(
            t.validate(&inst),
            Err(TraceViolation::UnknownTarget { job: 7, .. })
        ));
    }

    #[test]
    fn bad_row_width_detected() {
        let inst = one_job_instance(0);
        let t = trace(2, vec![vec![Action::Idle]]);
        assert_eq!(
            t.validate(&inst),
            Err(TraceViolation::BadRowWidth { round: 0 })
        );
    }

    #[test]
    fn augmented_speed_arrival_check() {
        // Speed 2: round r starts at r/2. Job arrives at tick 1 → first
        // valid round is 2.
        let dag = Arc::new(shapes::single_node(1));
        let inst = Instance::new(vec![Job::new(0, 1, dag)]);
        let mut t = trace(
            1,
            vec![vec![Action::Idle], vec![Action::Work { job: 0, node: 0 }]],
        );
        t.speed = Speed::integer(2);
        assert_eq!(
            t.validate(&inst),
            Err(TraceViolation::EarlyStart { round: 1, job: 0 })
        );
        let mut t2 = trace(
            1,
            vec![
                vec![Action::Idle],
                vec![Action::Idle],
                vec![Action::Work { job: 0, node: 0 }],
            ],
        );
        t2.speed = Speed::integer(2);
        assert_eq!(t2.validate(&inst), Ok(()));
    }

    #[test]
    fn idle_spans_rle_round_trip() {
        // Idle gaps are RLE'd, merge with adjacent idle pushes, and
        // round-trip through the dense form.
        let mut t = ScheduleTrace::new(2, Speed::ONE);
        t.push_row(vec![Action::Work { job: 0, node: 0 }, Action::Idle]);
        t.push_idle_rounds(3);
        t.push_idle_rounds(2);
        t.push_row(vec![Action::Work { job: 0, node: 1 }, Action::Idle]);
        assert_eq!(t.spans.len(), 3, "adjacent idle spans merged");
        assert_eq!(t.num_rounds(), 7);
        assert_eq!(t.action_counts(), (2, 0, 0, 12));

        let dense = t.to_dense();
        assert_eq!(dense.len(), 7);
        assert_eq!(dense[1], vec![Action::Idle; 2]);
        let back = ScheduleTrace::from_dense(2, Speed::ONE, dense);
        assert_eq!(back.spans, t.spans);
    }

    #[test]
    fn idle_spans_validate_like_dense_rows() {
        // A trace with an RLE gap validates iff its dense expansion does:
        // the precedence round arithmetic must count skipped rounds.
        let dag = Arc::new(shapes::chain(2, 1));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let mut t = ScheduleTrace::new(1, Speed::ONE);
        t.push_row(vec![Action::Work { job: 0, node: 0 }]);
        t.push_idle_rounds(4);
        t.push_row(vec![Action::Work { job: 0, node: 1 }]);
        assert_eq!(t.validate(&inst), Ok(()));
        assert_eq!(
            ScheduleTrace::from_dense(1, Speed::ONE, t.to_dense()).validate(&inst),
            Ok(())
        );
    }
}
