//! The recursive interval construction of Sections 4 and 7 (Figure 1).
//!
//! The upper-bound proofs for steal-k-first and BWF both pivot on a set of
//! time intervals built backwards from the completion of the maximum-flow
//! job `J_i`:
//!
//! ```text
//! T = { [t', t_β], [t_β, t_{β−1}], …, [t_1, t_0], [t_0, r_i], [r_i, c_i] }
//! ```
//!
//! where `t_0` is the arrival of the earliest-arriving job unfinished right
//! before `r_i`, and recursively `t_a` is the arrival of the earliest job
//! unfinished right before `t_{a−1}`; the recursion stops at the first
//! interval of length `≤ ε·F_i`. The analyzer below reconstructs exactly
//! this decomposition from a simulation result, which is how the repo
//! regenerates Figure 1 and lets tests check the structural facts the proofs
//! rely on (chronological ordering, interval lengths, spanning jobs).

use crate::result::SimResult;
use parflow_dag::JobId;
use parflow_time::Rational;
use serde::{Deserialize, Serialize};

/// One interval of the decomposition, with the job that defines it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Interval start (the defining job's arrival time).
    pub start: Rational,
    /// Interval end.
    pub end: Rational,
    /// The job whose arrival defines `start`, if any.
    pub defining_job: Option<JobId>,
}

impl Interval {
    /// Interval length.
    pub fn len(&self) -> Rational {
        self.end - self.start
    }

    /// True if the interval is a point.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The full decomposition for the maximum-flow job of a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntervalAnalysis {
    /// The maximum-flow job `J_i`.
    pub job: JobId,
    /// Its arrival `r_i`.
    pub arrival: Rational,
    /// Its completion `c_i`.
    pub completion: Rational,
    /// Its flow time `F_i`.
    pub flow: Rational,
    /// The ε used for the termination test.
    pub epsilon: Rational,
    /// Intervals in chronological order: `[t_β, t_{β−1}], …, [t_0, r_i],
    /// [r_i, c_i]`. The final element is always `[r_i, c_i]`.
    pub intervals: Vec<Interval>,
    /// `t'`: arrival of the earliest job unfinished right before `t_β`
    /// (equals `t_β` if none); the proof uses `t_β − t' ≤ ε·F_i`.
    pub t_prime: Rational,
}

impl IntervalAnalysis {
    /// `t_β`, the start of the earliest recursive interval.
    pub fn t_beta(&self) -> Rational {
        self.intervals
            .first()
            .map(|iv| iv.start)
            .unwrap_or(self.arrival)
    }

    /// Number of recursively defined intervals (excluding `[r_i, c_i]`).
    pub fn beta(&self) -> usize {
        self.intervals.len().saturating_sub(1)
    }
}

/// Reconstruct the Section 4 interval decomposition from a run's outcomes.
///
/// `epsilon` is the ε of the analysis (e.g. `Rational::new(1, 10)`).
/// Returns `None` for empty instances.
///
/// ```
/// use parflow_core::{analyze_intervals, simulate_fifo, SimConfig};
/// use parflow_dag::{shapes, Instance, Job};
/// use parflow_time::Rational;
/// use std::sync::Arc;
///
/// let dag = Arc::new(shapes::single_node(10));
/// let jobs = (0..3).map(|i| Job::new(i, i as u64, dag.clone())).collect();
/// let inst = Instance::new(jobs);
/// let r = simulate_fifo(&inst, &SimConfig::new(1));
/// let a = analyze_intervals(&r, Rational::new(1, 10)).unwrap();
/// // The final interval is always the max-flow job's own [r_i, c_i].
/// assert_eq!(a.intervals.last().unwrap().len(), a.flow);
/// ```
pub fn analyze_intervals(result: &SimResult, epsilon: Rational) -> Option<IntervalAnalysis> {
    assert!(epsilon.is_positive(), "epsilon must be positive");
    let max_job = result.argmax_flow()?;
    let flow = max_job.flow;
    let arrival = Rational::from_int(max_job.arrival as i128);
    let completion = max_job.completion;
    let eps_flow = epsilon * flow;

    // Earliest arrival among jobs alive "right before" time t: arrived
    // strictly before t and not completed before t.
    let earliest_alive_before = |t: Rational| -> Option<(Rational, JobId)> {
        result
            .outcomes
            .iter()
            .filter(|o| Rational::from_int(o.arrival as i128) < t && o.completion >= t)
            .map(|o| (Rational::from_int(o.arrival as i128), o.job))
            .min()
    };

    let mut intervals = vec![Interval {
        start: arrival,
        end: completion,
        defining_job: Some(max_job.job),
    }];

    // t_0: earliest arrival among jobs unfinished right before r_i.
    let mut t_curr = match earliest_alive_before(arrival) {
        Some((t0, j0)) => {
            intervals.push(Interval {
                start: t0,
                end: arrival,
                defining_job: Some(j0),
            });
            t0
        }
        None => arrival,
    };

    // Recursive construction: stop once an interval has length ≤ ε·F_i
    // (the paper stops when `t_{a−1} − t_a ≤ ε F_i`).
    loop {
        let last_len = intervals
            .last()
            .map(|iv| iv.len())
            .unwrap_or(Rational::ZERO);
        if intervals.len() > 1 && last_len <= eps_flow {
            break;
        }
        match earliest_alive_before(t_curr) {
            Some((ta, ja)) if ta < t_curr => {
                intervals.push(Interval {
                    start: ta,
                    end: t_curr,
                    defining_job: Some(ja),
                });
                t_curr = ta;
            }
            _ => break,
        }
    }

    // t': the earliest arrival alive right before t_β (may equal t_β).
    let t_prime = earliest_alive_before(t_curr)
        .map(|(t, _)| t)
        .unwrap_or(t_curr);

    intervals.reverse();
    Some(IntervalAnalysis {
        job: max_job.job,
        arrival,
        completion,
        flow,
        epsilon,
        intervals,
        t_prime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::simulate_fifo;
    use crate::config::SimConfig;
    use parflow_dag::{shapes, Instance, Job};
    use std::sync::Arc;

    fn inst(arrivals_works: &[(u64, u64)]) -> Instance {
        Instance::new(
            arrivals_works
                .iter()
                .enumerate()
                .map(|(i, &(a, w))| Job::new(i as u32, a, Arc::new(shapes::single_node(w))))
                .collect(),
        )
    }

    #[test]
    fn single_job_has_only_final_interval() {
        let i = inst(&[(0, 5)]);
        let r = simulate_fifo(&i, &SimConfig::new(1));
        let a = analyze_intervals(&r, Rational::new(1, 10)).unwrap();
        assert_eq!(a.intervals.len(), 1);
        assert_eq!(a.flow, Rational::from_int(5));
        assert_eq!(a.beta(), 0);
        assert_eq!(a.t_prime, a.arrival);
    }

    #[test]
    fn empty_result_yields_none() {
        let i = Instance::new(vec![]);
        let r = simulate_fifo(&i, &SimConfig::new(1));
        assert!(analyze_intervals(&r, Rational::new(1, 2)).is_none());
    }

    #[test]
    fn backlog_creates_intervals() {
        // m=1: J0 (0, 10), J1 (1, 10), J2 (2, 10): FIFO completes at 10, 20,
        // 30; J2 has max flow 28. Right before r_2 = 2, J0 and J1 are alive;
        // earliest is J0 with arrival 0.
        let i = inst(&[(0, 10), (1, 10), (2, 10)]);
        let r = simulate_fifo(&i, &SimConfig::new(1));
        let a = analyze_intervals(&r, Rational::new(1, 100)).unwrap();
        assert_eq!(a.job, 2);
        assert_eq!(a.flow, Rational::from_int(28));
        // Final interval is [2, 30]; then [0, 2] defined by J0 (len 2 ≤
        // ε·F = 28/100? no, 2 > 0.28) → recursion continues from t=0: no
        // job alive before 0 → stop.
        assert_eq!(a.intervals.len(), 2);
        let last = a.intervals.last().unwrap();
        assert_eq!(last.start, Rational::from_int(2));
        assert_eq!(last.end, Rational::from_int(30));
        let first = &a.intervals[0];
        assert_eq!(first.start, Rational::ZERO);
        assert_eq!(first.end, Rational::from_int(2));
        assert_eq!(first.defining_job, Some(0));
    }

    #[test]
    fn intervals_are_contiguous_and_chronological() {
        let i = inst(&[(0, 8), (2, 8), (6, 8), (12, 8), (20, 8)]);
        let r = simulate_fifo(&i, &SimConfig::new(1));
        let a = analyze_intervals(&r, Rational::new(1, 10)).unwrap();
        for w in a.intervals.windows(2) {
            assert_eq!(w[0].end, w[1].start, "intervals must be contiguous");
            assert!(w[0].start <= w[0].end);
        }
        // The last interval is [r_i, c_i] of the max-flow job.
        let last = a.intervals.last().unwrap();
        assert_eq!(last.start, a.arrival);
        assert_eq!(last.end, a.completion);
        assert_eq!(last.len(), a.flow);
    }

    #[test]
    fn termination_on_short_interval() {
        // With a huge ε the recursion should stop immediately after t_0.
        let i = inst(&[(0, 10), (1, 10), (2, 10)]);
        let r = simulate_fifo(&i, &SimConfig::new(1));
        let a = analyze_intervals(&r, Rational::from_int(1)).unwrap();
        // ε·F = 28 ≥ any interval length → only [t_0, r_i] + final.
        assert!(a.intervals.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epsilon_panics() {
        let i = inst(&[(0, 5)]);
        let r = simulate_fifo(&i, &SimConfig::new(1));
        let _ = analyze_intervals(&r, Rational::ZERO);
    }

    #[test]
    fn interval_len_and_empty() {
        let iv = Interval {
            start: Rational::from_int(3),
            end: Rational::from_int(7),
            defining_job: None,
        };
        assert_eq!(iv.len(), Rational::from_int(4));
        assert!(!iv.is_empty());
        let pt = Interval {
            start: Rational::ONE,
            end: Rational::ONE,
            defining_job: None,
        };
        assert!(pt.is_empty());
    }
}
