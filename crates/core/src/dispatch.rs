//! Run any scheduler by name — the dispatch layer used by the CLI and the
//! experiment harness.

use crate::centralized::{run_priority, BiggestWeightFirst, Fifo, Lifo, ShortestJobFirst};
use crate::config::SimConfig;
use crate::equi::run_equi;
use crate::result::SimResult;
use crate::trace::ScheduleTrace;
use crate::worksteal::{run_worksteal, StealPolicy};
use parflow_dag::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Every scheduler this workspace implements, as a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// First-In-First-Out (Section 3).
    Fifo,
    /// Biggest-Weight-First (Section 7).
    Bwf,
    /// Last-In-First-Out strawman.
    Lifo,
    /// Clairvoyant Shortest-Job-First strawman.
    Sjf,
    /// EQUI / processor sharing (Section 8 baseline).
    Equi,
    /// Work stealing, admit-first (Section 4, `k = 0`).
    AdmitFirst,
    /// Work stealing, steal-k-first (Section 4).
    StealKFirst(
        /// The `k` parameter.
        u32,
    ),
}

impl SchedulerKind {
    /// All kinds with their default parameters (k = 16 as in the paper).
    pub fn all() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Fifo,
            SchedulerKind::Bwf,
            SchedulerKind::Lifo,
            SchedulerKind::Sjf,
            SchedulerKind::Equi,
            SchedulerKind::AdmitFirst,
            SchedulerKind::StealKFirst(16),
        ]
    }

    /// True for the distributed (work-stealing) schedulers, whose runs
    /// depend on the seed.
    pub fn is_randomized(&self) -> bool {
        matches!(
            self,
            SchedulerKind::AdmitFirst | SchedulerKind::StealKFirst(_)
        )
    }

    /// Run this scheduler.
    pub fn run(
        &self,
        instance: &Instance,
        config: &SimConfig,
        seed: u64,
    ) -> (SimResult, Option<ScheduleTrace>) {
        match *self {
            SchedulerKind::Fifo => run_priority(instance, config, &Fifo),
            SchedulerKind::Bwf => run_priority(instance, config, &BiggestWeightFirst),
            SchedulerKind::Lifo => run_priority(instance, config, &Lifo),
            SchedulerKind::Sjf => run_priority(instance, config, &ShortestJobFirst),
            SchedulerKind::Equi => run_equi(instance, config),
            SchedulerKind::AdmitFirst => {
                run_worksteal(instance, config, StealPolicy::AdmitFirst, seed)
            }
            SchedulerKind::StealKFirst(k) => {
                run_worksteal(instance, config, StealPolicy::StealKFirst { k }, seed)
            }
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerKind::Fifo => write!(f, "fifo"),
            SchedulerKind::Bwf => write!(f, "bwf"),
            SchedulerKind::Lifo => write!(f, "lifo"),
            SchedulerKind::Sjf => write!(f, "sjf"),
            SchedulerKind::Equi => write!(f, "equi"),
            SchedulerKind::AdmitFirst => write!(f, "admit-first"),
            SchedulerKind::StealKFirst(k) => write!(f, "steal-{k}-first"),
        }
    }
}

/// Parse error for [`SchedulerKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchedulerError(
    /// The unrecognized input.
    pub String,
);

impl fmt::Display for ParseSchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheduler '{}'; expected fifo|bwf|lifo|sjf|equi|admit-first|steal-<k>-first",
            self.0
        )
    }
}

impl std::error::Error for ParseSchedulerError {}

impl FromStr for SchedulerKind {
    type Err = ParseSchedulerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "fifo" => return Ok(SchedulerKind::Fifo),
            "bwf" => return Ok(SchedulerKind::Bwf),
            "lifo" => return Ok(SchedulerKind::Lifo),
            "sjf" => return Ok(SchedulerKind::Sjf),
            "equi" => return Ok(SchedulerKind::Equi),
            "admit-first" | "steal-0-first" => return Ok(SchedulerKind::AdmitFirst),
            _ => {}
        }
        if let Some(rest) = lower.strip_prefix("steal-") {
            if let Some(k) = rest.strip_suffix("-first") {
                if let Ok(k) = k.parse::<u32>() {
                    return Ok(if k == 0 {
                        SchedulerKind::AdmitFirst
                    } else {
                        SchedulerKind::StealKFirst(k)
                    });
                }
            }
        }
        Err(ParseSchedulerError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parflow_dag::{shapes, Job};
    use std::sync::Arc;

    fn tiny_instance() -> Instance {
        let dag = Arc::new(shapes::parallel_for(12, 3));
        Instance::new(
            (0..6)
                .map(|i| Job::new(i, i as u64 * 2, dag.clone()))
                .collect(),
        )
    }

    #[test]
    fn every_kind_runs_and_validates() {
        let inst = tiny_instance();
        let cfg = SimConfig::new(2).with_trace();
        for kind in SchedulerKind::all() {
            let (r, t) = kind.run(&inst, &cfg, 7);
            assert_eq!(r.outcomes.len(), inst.len(), "{kind}");
            assert_eq!(t.unwrap().validate(&inst), Ok(()), "{kind}");
        }
    }

    #[test]
    fn roundtrip_display_parse() {
        for kind in SchedulerKind::all() {
            let s = kind.to_string();
            let back: SchedulerKind = s.parse().unwrap();
            assert_eq!(back, kind, "{s}");
        }
    }

    #[test]
    fn parse_variants() {
        assert_eq!(
            "FIFO".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Fifo
        );
        assert_eq!(
            "steal-32-first".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::StealKFirst(32)
        );
        assert_eq!(
            "steal-0-first".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::AdmitFirst
        );
        assert!("nonsense".parse::<SchedulerKind>().is_err());
        assert!("steal-x-first".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn randomized_flag() {
        assert!(SchedulerKind::AdmitFirst.is_randomized());
        assert!(SchedulerKind::StealKFirst(4).is_randomized());
        assert!(!SchedulerKind::Fifo.is_randomized());
        assert!(!SchedulerKind::Equi.is_randomized());
    }

    #[test]
    fn deterministic_kinds_ignore_seed() {
        let inst = tiny_instance();
        let cfg = SimConfig::new(2);
        for kind in [SchedulerKind::Fifo, SchedulerKind::Equi, SchedulerKind::Sjf] {
            let a = kind.run(&inst, &cfg, 1).0;
            let b = kind.run(&inst, &cfg, 2).0;
            assert_eq!(a.max_flow(), b.max_flow(), "{kind}");
        }
    }
}
