//! Lemma-level verification: check the quantitative facts the paper's
//! proofs rest on against *actual* recorded schedules.
//!
//! Reproducing a theory paper means more than matching the headline
//! curves — the intermediate quantities the proofs manipulate are
//! themselves measurable. This module extracts them from a
//! [`ScheduleTrace`]:
//!
//! * **Proposition 2.1 / Lemma 3.2 (deterministic):** for any
//!   work-conserving centralized scheduler (FIFO, BWF, EQUI), every round
//!   within a job's lifetime in which *not all* `m` processors work must
//!   schedule all ready nodes of every active job, and therefore shortens
//!   each active job's remaining critical path by one unit. Hence the
//!   number of non-full rounds during `[r_i, c_i]` is at most `P_i` — an
//!   exact, testable invariant ([`check_greedy_nonfull_bound`]).
//! * **Lemma 4.5 (probabilistic):** under work stealing, the number of
//!   processor idling steps during `[e_i, c_i]` is `O(m·P_i + ln n)`
//!   w.h.p. [`ws_idling_report`] measures the normalized constant per job
//!   so tests can assert it stays below the paper's 64/32 coefficients.
//! * **Theorem 4.1 accounting:** over the Section 4 interval decomposition
//!   `[t_β, c_i]`, the work the scheduler executes cannot exceed the total
//!   work of the jobs alive in that window ([`interval_accounting`] —
//!   the `Y ≤ X` direction that must hold unconditionally).

use crate::interval::analyze_intervals;
use crate::result::SimResult;
use crate::trace::{Action, ScheduleTrace};
use parflow_dag::{Instance, JobId};
use parflow_time::{Rational, Round};
use serde::{Deserialize, Serialize};

/// Per-round activity counts extracted from a trace, with prefix sums for
/// O(1) range queries.
#[derive(Clone, Debug)]
pub struct RoundActivity {
    /// `work[r]` = processors executing job work in round `r`.
    pub work: Vec<u32>,
    /// `idling[r]` = processors stealing or idle in round `r` (the paper's
    /// "processor idling steps").
    pub idling: Vec<u32>,
    prefix_idling: Vec<u64>,
    prefix_nonfull: Vec<u64>,
}

impl RoundActivity {
    /// Extract activity from a trace.
    pub fn from_trace(trace: &ScheduleTrace) -> Self {
        let m = trace.m;
        let n_rounds = trace.num_rounds() as usize;
        let mut work = Vec::with_capacity(n_rounds);
        let mut idling = Vec::with_capacity(n_rounds);
        for row in trace.rounds() {
            // `None` = an idle round from a run-length-encoded idle span.
            let w = row.map_or(0, |r| {
                r.iter()
                    .filter(|a| matches!(a, Action::Work { .. }))
                    .count() as u32 // lint: allow(truncating-cast) bounded by the row width m; 2^32 processors unrepresentable
            });
            work.push(w);
            idling.push(m as u32 - w); // lint: allow(truncating-cast) m is the processor count; 2^32 processors unrepresentable
        }
        let mut prefix_idling = Vec::with_capacity(work.len() + 1);
        let mut prefix_nonfull = Vec::with_capacity(work.len() + 1);
        prefix_idling.push(0);
        prefix_nonfull.push(0);
        for (i, &w) in work.iter().enumerate() {
            prefix_idling.push(prefix_idling[i] + idling[i] as u64);
            prefix_nonfull.push(prefix_nonfull[i] + u64::from(w < m as u32)); // lint: allow(truncating-cast) m is the processor count; 2^32 processors unrepresentable
        }
        RoundActivity {
            work,
            idling,
            prefix_idling,
            prefix_nonfull,
        }
    }

    /// Number of rounds recorded.
    pub fn rounds(&self) -> usize {
        self.work.len()
    }

    /// Processor idling steps in the inclusive round range `[from, to]`,
    /// clamped to the trace length.
    pub fn idling_in(&self, from: Round, to: Round) -> u64 {
        let from = (from as usize).min(self.rounds());
        let to = ((to as usize) + 1).min(self.rounds());
        if from >= to {
            return 0;
        }
        self.prefix_idling[to] - self.prefix_idling[from]
    }

    /// Rounds in `[from, to]` where fewer than `m` processors worked.
    pub fn nonfull_rounds_in(&self, from: Round, to: Round) -> u64 {
        let from = (from as usize).min(self.rounds());
        let to = ((to as usize) + 1).min(self.rounds());
        if from >= to {
            return 0;
        }
        self.prefix_nonfull[to] - self.prefix_nonfull[from]
    }

    /// Units of work executed in `[from, to]`.
    pub fn work_in(&self, from: Round, to: Round) -> u64 {
        let from = (from as usize).min(self.rounds());
        let to = ((to as usize) + 1).min(self.rounds());
        if from >= to {
            return 0;
        }
        self.work[from..to].iter().map(|&w| w as u64).sum()
    }
}

/// A violation of the deterministic non-full-rounds bound.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreedyViolation {
    /// The job whose window violated the bound.
    pub job: JobId,
    /// Non-full rounds observed during the job's lifetime.
    pub nonfull_rounds: u64,
    /// The job's critical-path length (the bound).
    pub span: u64,
}

/// Check the Proposition 2.1 invariant for a *work-conserving centralized*
/// schedule: for every job `i`, the number of rounds within
/// `[first-round(r_i), completion_round(i)]` in which not all `m`
/// processors work is at most `P_i`.
///
/// (Does not hold for work stealing, whose idling comes from failed steals
/// rather than exhausted ready sets — that is the entire difficulty of
/// Section 4.)
pub fn check_greedy_nonfull_bound(
    instance: &Instance,
    result: &SimResult,
    trace: &ScheduleTrace,
) -> Result<(), GreedyViolation> {
    let activity = RoundActivity::from_trace(trace);
    for o in &result.outcomes {
        let job = &instance.jobs()[o.job as usize];
        let from = result.speed.first_round_at_or_after(job.arrival);
        let nonfull = activity.nonfull_rounds_in(from, o.completion_round);
        if nonfull > job.span() {
            return Err(GreedyViolation {
                job: o.job,
                nonfull_rounds: nonfull,
                span: job.span(),
            });
        }
    }
    Ok(())
}

/// Per-job idling measurement for the Lemma 4.5 bound.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WsIdlingReport {
    /// For each job: idling steps during `[e_i, c_i]` divided by
    /// `m·P_i + ln n` (the lemma bounds this by 64 w.h.p., constants 64/32).
    pub normalized: Vec<f64>,
    /// Maximum normalized value across jobs.
    pub worst: f64,
}

/// Measure, for every job, the processor idling steps during its execution
/// window `[e_i, c_i]` normalized by `m·P_i + ln n`.
pub fn ws_idling_report(
    instance: &Instance,
    result: &SimResult,
    trace: &ScheduleTrace,
) -> WsIdlingReport {
    let activity = RoundActivity::from_trace(trace);
    let n = instance.len().max(2) as f64;
    let m = result.m as f64;
    let normalized: Vec<f64> = result
        .outcomes
        .iter()
        .map(|o| {
            let span = instance.jobs()[o.job as usize].span() as f64;
            let idling = activity.idling_in(o.start_round, o.completion_round) as f64;
            idling / (m * span + n.ln())
        })
        .collect();
    let worst = normalized.iter().copied().fold(0.0, f64::max);
    WsIdlingReport { normalized, worst }
}

/// The Theorem 4.1 work accounting over `[t_β, c_i]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntervalAccounting {
    /// Start of the decomposition window (`t_β`).
    pub t_beta: Rational,
    /// End of the window (`c_i`).
    pub c_i: Rational,
    /// Work the scheduler executed inside the window (units).
    pub executed: u64,
    /// Total work of jobs alive at some point inside the window (units) —
    /// the only work available to execute.
    pub available: u64,
}

/// Compute the work accounting of Theorem 4.1's contradiction argument:
/// the scheduler's executed work within `[t_β, c_i]` versus the total work
/// of jobs alive in the window. `executed ≤ available` must hold for every
/// feasible schedule.
pub fn interval_accounting(
    instance: &Instance,
    result: &SimResult,
    trace: &ScheduleTrace,
    epsilon: Rational,
) -> Option<IntervalAccounting> {
    let analysis = analyze_intervals(result, epsilon)?;
    let t_beta = analysis.t_beta();
    let c_i = analysis.completion;
    let activity = RoundActivity::from_trace(trace);

    // Window in rounds: first round starting at or after t_beta … the
    // max-flow job's completion round.
    let speed = result.speed;
    let from = {
        // ceil(t_beta · num / den) as a round index; t_beta ≥ 0.
        let scaled = t_beta.mul_ratio(speed.num() as i128, speed.den() as i128);
        scaled.ceil().max(0) as Round
    };
    let max_job = result.argmax_flow()?;
    let executed = activity.work_in(from, max_job.completion_round);

    // Jobs alive at some point within [t_beta, c_i]: arrival ≤ c_i and
    // completion ≥ t_beta.
    let available: u64 = result
        .outcomes
        .iter()
        .filter(|o| Rational::from_int(o.arrival as i128) <= c_i && o.completion >= t_beta)
        .map(|o| instance.jobs()[o.job as usize].work())
        .sum();

    Some(IntervalAccounting {
        t_beta,
        c_i,
        executed,
        available,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{run_priority, BiggestWeightFirst, Fifo};
    use crate::config::SimConfig;
    use crate::equi::run_equi;
    use crate::worksteal::{run_worksteal, StealPolicy};
    use parflow_dag::{shapes, Job};
    use parflow_time::Speed;
    use std::sync::Arc;

    fn mixed_instance(n: u32, seed_gap: u64) -> Instance {
        let jobs: Vec<Job> = (0..n)
            .map(|i| {
                let dag = match i % 4 {
                    0 => shapes::parallel_for(30, 6),
                    1 => shapes::chain(4, 3),
                    2 => shapes::fork_join(3, 2),
                    _ => shapes::diamond(5, 2),
                };
                Job::new(i, (i as u64) * seed_gap, Arc::new(dag))
            })
            .collect();
        Instance::new(jobs)
    }

    #[test]
    fn activity_extraction_matches_counts() {
        let inst = mixed_instance(10, 3);
        let (result, trace) = run_priority(&inst, &SimConfig::new(3).with_trace(), &Fifo);
        let trace = trace.unwrap();
        let act = RoundActivity::from_trace(&trace);
        assert_eq!(act.rounds() as u64, trace.num_rounds());
        let total_work: u64 = act.work.iter().map(|&w| w as u64).sum();
        assert_eq!(total_work, result.stats.work_steps);
        assert_eq!(act.work_in(0, act.rounds() as u64), result.stats.work_steps);
        // Range queries are consistent with full sums.
        let half = act.rounds() as u64 / 2;
        assert_eq!(
            act.work_in(0, half) + act.work_in(half + 1, act.rounds() as u64),
            result.stats.work_steps
        );
    }

    #[test]
    fn greedy_bound_holds_for_fifo_bwf_equi() {
        for gap in [0u64, 2, 7] {
            let inst = mixed_instance(14, gap);
            for m in [1usize, 2, 4] {
                let cfg = SimConfig::new(m).with_trace();
                let (r, t) = run_priority(&inst, &cfg, &Fifo);
                assert_eq!(
                    check_greedy_nonfull_bound(&inst, &r, &t.unwrap()),
                    Ok(()),
                    "FIFO m={m} gap={gap}"
                );
                let (r, t) = run_priority(&inst, &cfg, &BiggestWeightFirst);
                assert_eq!(
                    check_greedy_nonfull_bound(&inst, &r, &t.unwrap()),
                    Ok(()),
                    "BWF m={m} gap={gap}"
                );
                let (r, t) = run_equi(&inst, &cfg);
                assert_eq!(
                    check_greedy_nonfull_bound(&inst, &r, &t.unwrap()),
                    Ok(()),
                    "EQUI m={m} gap={gap}"
                );
            }
        }
    }

    #[test]
    fn greedy_bound_holds_with_speed_augmentation() {
        let inst = mixed_instance(12, 4);
        let cfg = SimConfig::new(3).with_speed(Speed::new(3, 2)).with_trace();
        let (r, t) = run_priority(&inst, &cfg, &Fifo);
        assert_eq!(check_greedy_nonfull_bound(&inst, &r, &t.unwrap()), Ok(()));
    }

    #[test]
    fn ws_idling_stays_below_lemma_constant() {
        // Lemma 4.5: idling during [e_i, c_i] ≤ 64·m·P_i + 32·ln n w.h.p.
        // Our normalization divides by (m·P_i + ln n); the paper's bound
        // corresponds to 64. Measured values sit far below.
        let inst = mixed_instance(24, 2);
        for seed in [1u64, 2, 3] {
            let (r, t) = run_worksteal(
                &inst,
                &SimConfig::new(4).with_trace(),
                StealPolicy::StealKFirst { k: 2 },
                seed,
            );
            let report = ws_idling_report(&inst, &r, &t.unwrap());
            assert_eq!(report.normalized.len(), inst.len());
            assert!(
                report.worst <= 64.0,
                "Lemma 4.5 constant exceeded: {}",
                report.worst
            );
            assert!(report.worst >= 0.0);
        }
    }

    #[test]
    fn interval_accounting_never_exceeds_available() {
        let inst = mixed_instance(20, 1);
        let (r, t) = run_worksteal(
            &inst,
            &SimConfig::new(3).with_trace(),
            StealPolicy::AdmitFirst,
            9,
        );
        let acc = interval_accounting(&inst, &r, &t.unwrap(), Rational::new(1, 10)).unwrap();
        assert!(
            acc.executed <= acc.available,
            "scheduler executed {} > available {} in [t_beta, c_i]",
            acc.executed,
            acc.available
        );
        assert!(acc.t_beta <= acc.c_i);
    }

    #[test]
    fn interval_accounting_empty_instance() {
        let inst = Instance::new(vec![]);
        let (r, t) = run_worksteal(
            &inst,
            &SimConfig::new(2).with_trace(),
            StealPolicy::AdmitFirst,
            1,
        );
        assert!(interval_accounting(&inst, &r, &t.unwrap(), Rational::new(1, 2)).is_none());
    }

    #[test]
    fn idling_range_query_clamps() {
        let inst = mixed_instance(4, 2);
        let (_, t) = run_priority(&inst, &SimConfig::new(2).with_trace(), &Fifo);
        let act = RoundActivity::from_trace(&t.unwrap());
        // Ranges past the end are clamped, inverted ranges are empty.
        assert_eq!(act.idling_in(1_000_000, 2_000_000), 0);
        assert_eq!(act.work_in(10, 5), 0);
    }
}
