//! Per-run results: flow times and engine counters.

use crate::fault::{FaultEvent, JobStatus};
use parflow_dag::JobId;
use parflow_time::{Rational, Round, Speed, Ticks};
use serde::{Deserialize, Serialize};

/// Outcome of one job in a simulated schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job's id (dense, in arrival order).
    pub job: JobId,
    /// Release time `r_i` in wall-clock ticks.
    pub arrival: Ticks,
    /// Priority weight `w_i`.
    pub weight: u64,
    /// Round in which the job first received a unit of work (for work
    /// stealing this equals the admission round `e_i`, since admission
    /// immediately executes a node).
    pub start_round: Round,
    /// Round during which the job's last node finished.
    pub completion_round: Round,
    /// Completion wall-clock time `c_i` (end of `completion_round`).
    pub completion: Rational,
    /// Flow time `F_i = c_i − r_i`.
    pub flow: Rational,
    /// How the job ended. [`JobStatus::Completed`] in fault-free runs; for
    /// [`JobStatus::Failed`] / [`JobStatus::Aborted`] jobs the completion
    /// fields record the moment the job was given up, not a real finish.
    #[serde(default)]
    pub status: JobStatus,
}

impl JobOutcome {
    /// Weighted flow `w_i · F_i`.
    pub fn weighted_flow(&self) -> Rational {
        self.flow.mul_ratio(self.weight as i128, 1)
    }
}

/// Aggregate counters of engine activity, used to cross-check the lemmas
/// about idling/steal bounds and to report utilization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total processor-rounds in which a unit of job work was executed.
    pub work_steps: u64,
    /// Total processor-rounds spent on (successful or failed) steal attempts.
    pub steal_attempts: u64,
    /// Steal attempts that found a victim with a non-empty deque.
    pub successful_steals: u64,
    /// Jobs admitted from the global queue (work stealing only).
    pub admissions: u64,
    /// Processor-rounds with nothing to do at all.
    pub idle_steps: u64,
    /// Workers removed from service by injected crashes.
    #[serde(default)]
    pub crashed_workers: u64,
    /// Tasks reinjected into the global queue from crashed workers' deques.
    #[serde(default)]
    pub reinjected_tasks: u64,
    /// Executed tasks that failed via injected panics.
    #[serde(default)]
    pub injected_panics: u64,
    /// Processor-rounds lost to injected stalls and slowdowns.
    #[serde(default)]
    pub faulted_steps: u64,
}

impl EngineStats {
    /// Processor *idling* steps in the paper's sense: rounds in which a
    /// processor is not working on a job (stealing or idle).
    pub fn idling_steps(&self) -> u64 {
        self.steal_attempts + self.idle_steps
    }
}

/// A sampled snapshot of work-stealing backlog state (see
/// `SimConfig::with_sampling`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BacklogSample {
    /// Round at which the sample was taken.
    pub round: Round,
    /// Jobs waiting in the global FIFO queue.
    pub queued: usize,
    /// Jobs admitted but not yet completed.
    pub live: usize,
    /// Ready tasks sitting in worker deques.
    pub deque_tasks: usize,
}

/// The result of simulating one scheduler on one instance.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// Number of processors used.
    pub m: usize,
    /// Speed the schedule ran at.
    pub speed: Speed,
    /// Last round index that did any work (schedule length in rounds).
    pub total_rounds: Round,
    /// Per-job outcomes, indexed by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Engine activity counters.
    pub stats: EngineStats,
    /// Backlog samples (non-empty only for work stealing with
    /// `SimConfig::with_sampling`).
    pub samples: Vec<BacklogSample>,
    /// Faults that actually fired during the run, in engine-time order.
    #[serde(default)]
    pub fault_events: Vec<FaultEvent>,
}

impl SimResult {
    /// All per-job flow times `F_i` in job-id order, for aggregation
    /// layers (sweep cells, report epilogues) that summarize whole
    /// distributions rather than just the max.
    pub fn flows(&self) -> impl Iterator<Item = Rational> + '_ {
        self.outcomes.iter().map(|o| o.flow)
    }

    /// Maximum flow time `max_i F_i` (the unweighted objective).
    /// Returns zero for empty instances.
    pub fn max_flow(&self) -> Rational {
        self.outcomes
            .iter()
            .map(|o| o.flow)
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Maximum weighted flow time `max_i w_i·F_i` (the Section 7 objective).
    pub fn max_weighted_flow(&self) -> Rational {
        self.outcomes
            .iter()
            .map(|o| o.weighted_flow())
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// The job achieving the maximum flow time.
    pub fn argmax_flow(&self) -> Option<&JobOutcome> {
        self.outcomes.iter().max_by_key(|o| o.flow)
    }

    /// The job achieving the maximum weighted flow time.
    pub fn argmax_weighted_flow(&self) -> Option<&JobOutcome> {
        self.outcomes.iter().max_by_key(|o| o.weighted_flow())
    }

    /// Mean flow time, as `f64` (reporting only).
    pub fn mean_flow(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        // lint: allow(float-determinism) sums outcomes in job-id order; Vec iteration order is fixed
        self.outcomes.iter().map(|o| o.flow.to_f64()).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Makespan: wall-clock completion time of the last job.
    pub fn makespan(&self) -> Rational {
        self.outcomes
            .iter()
            .map(|o| o.completion)
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// True when every job ran to completion (no failures, no aborts).
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(|o| o.status.is_completed())
    }

    /// Jobs that did not complete, with their terminal status.
    pub fn unfinished(&self) -> Vec<(JobId, JobStatus)> {
        self.outcomes
            .iter()
            .filter(|o| !o.status.is_completed())
            .map(|o| (o.job, o.status))
            .collect()
    }

    /// Maximum flow time over *completed* jobs only — the meaningful
    /// objective under fault injection, where failed jobs' flows measure
    /// time-to-failure rather than service quality.
    pub fn max_completed_flow(&self) -> Rational {
        self.outcomes
            .iter()
            .filter(|o| o.status.is_completed())
            .map(|o| o.flow)
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Fraction of processor-rounds spent executing job work over the whole
    /// schedule (`work_steps / (m · total_rounds)`). Under the free-steal
    /// cost model steal *probes* consume no processor time, so they do not
    /// reduce this figure; under unit-cost steals they do.
    pub fn busy_fraction(&self) -> f64 {
        let capacity = self.m as u64 * self.total_rounds;
        if capacity == 0 {
            return 0.0;
        }
        self.stats.work_steps as f64 / capacity as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(job: u32, arrival: u64, weight: u64, flow: i128) -> JobOutcome {
        JobOutcome {
            job,
            arrival,
            weight,
            start_round: 0,
            completion_round: 0,
            completion: Rational::from_int(arrival as i128) + Rational::from_int(flow),
            flow: Rational::from_int(flow),
            status: JobStatus::Completed,
        }
    }

    fn result(outcomes: Vec<JobOutcome>) -> SimResult {
        SimResult {
            m: 2,
            speed: Speed::ONE,
            total_rounds: 10,
            outcomes,
            stats: EngineStats::default(),
            samples: Vec::new(),
            fault_events: Vec::new(),
        }
    }

    #[test]
    fn max_flow_empty_is_zero() {
        let r = result(vec![]);
        assert_eq!(r.max_flow(), Rational::ZERO);
        assert_eq!(r.max_weighted_flow(), Rational::ZERO);
        assert!(r.argmax_flow().is_none());
        assert_eq!(r.mean_flow(), 0.0);
    }

    #[test]
    fn max_and_mean() {
        let r = result(vec![
            outcome(0, 0, 1, 4),
            outcome(1, 2, 1, 10),
            outcome(2, 5, 1, 1),
        ]);
        assert_eq!(r.max_flow(), Rational::from_int(10));
        assert_eq!(r.argmax_flow().unwrap().job, 1);
        assert!((r.mean_flow() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_max_differs_from_unweighted() {
        let r = result(vec![outcome(0, 0, 10, 4), outcome(1, 0, 1, 10)]);
        assert_eq!(r.max_flow(), Rational::from_int(10));
        assert_eq!(r.max_weighted_flow(), Rational::from_int(40));
        assert_eq!(r.argmax_weighted_flow().unwrap().job, 0);
    }

    #[test]
    fn idling_steps_sum() {
        let s = EngineStats {
            work_steps: 10,
            steal_attempts: 3,
            successful_steals: 1,
            admissions: 2,
            idle_steps: 4,
            ..Default::default()
        };
        assert_eq!(s.idling_steps(), 7);
    }

    #[test]
    fn status_partitions() {
        let mut o = vec![outcome(0, 0, 1, 4), outcome(1, 2, 1, 10)];
        o[1].status = JobStatus::Failed;
        let r = result(o);
        assert!(!r.all_completed());
        assert_eq!(r.unfinished(), vec![(1, JobStatus::Failed)]);
        // Failed jobs are excluded from the completed-flow objective.
        assert_eq!(r.max_completed_flow(), Rational::from_int(4));
        assert_eq!(r.max_flow(), Rational::from_int(10));
    }

    #[test]
    fn busy_fraction() {
        // m = 2, total_rounds = 10 -> capacity 20 processor-rounds.
        let mut r = result(vec![outcome(0, 0, 1, 1)]);
        r.stats = EngineStats {
            work_steps: 15,
            steal_attempts: 10,
            idle_steps: 0,
            ..Default::default()
        };
        assert!((r.busy_fraction() - 0.75).abs() < 1e-12);
        r.total_rounds = 0;
        assert_eq!(r.busy_fraction(), 0.0);
    }

    #[test]
    fn makespan_is_last_completion() {
        let r = result(vec![outcome(0, 0, 1, 4), outcome(1, 2, 1, 10)]);
        assert_eq!(r.makespan(), Rational::from_int(12));
    }
}
