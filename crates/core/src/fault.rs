//! Deterministic, seeded fault injection shared by both execution engines.
//!
//! A [`FaultPlan`] describes *what goes wrong* on a machine — workers that
//! crash, run slow, stall, answer no steals, or execute tasks that panic —
//! in engine-neutral units so the same plan drives both the round-based
//! simulator (`crates/core::worksteal`) and the real threaded executor
//! (`crates/runtime`):
//!
//! * **time** is expressed in *rounds* (= one work unit = one tick =
//!   0.1 ms); the runtime converts rounds to wall-clock via its tick
//!   duration;
//! * **probabilities** are parts-per-million (`u32`), keeping the plan
//!   `Eq`/hashable and its sampling exactly reproducible from a seed;
//! * **worker indices** refer to the engine's worker array (`0..m`).
//!
//! Semantics in the simulator:
//!
//! * a [`crash`](FaultPlan::crash) at round `r` removes the worker from
//!   service at the *start* of round `r`; its deque is drained into the
//!   global FIFO orphan queue ("reinjection"), preserving claimed-node
//!   state, so surviving workers adopt the work without re-racing for it;
//! * a [`slowdown`](FaultPlan::slowdown) with factor `f < 1` lets the
//!   worker execute work only in a deterministic `f` fraction of rounds
//!   (credit accumulator — no randomness, no drift);
//! * a [`stall`](FaultPlan::stall) freezes the worker for a window
//!   `[from, from+duration)`: it keeps its deque but does nothing —
//!   exactly the paper's adversarial regime where the one loaded deque
//!   is unreachable (Lemma 5.1);
//! * a [`blackhole`](FaultPlan::blackhole) makes steal attempts *against*
//!   the worker always fail, without stopping its own execution;
//! * [`panic_ppm`](FaultPlan::with_panic_ppm) makes each executed task
//!   fail with that probability; in the simulator the job is marked
//!   [`Failed`](crate::JobStatus::Failed) and abandoned, in the runtime
//!   the chunk kernel genuinely `panic!`s and is caught.
//!
//! Every injected event is recorded as a [`FaultEvent`] on the run's
//! result, so experiments can correlate max-flow degradation with the
//! faults that caused it.

use serde::{Deserialize, Serialize};

/// One million — the denominator of all ppm probabilities and factors.
pub const PPM: u32 = 1_000_000;

/// A worker crash: permanent removal from service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrashFault {
    /// Worker index (`0..m`).
    pub worker: usize,
    /// Round at whose start the worker dies.
    pub at_round: u64,
}

/// A worker slowdown: the worker executes work in only a fraction of
/// rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlowdownFault {
    /// Worker index (`0..m`).
    pub worker: usize,
    /// Execution rate in parts-per-million (e.g. `500_000` = half speed).
    /// `0` is a total freeze; values ≥ [`PPM`] are clamped to full speed.
    pub rate_ppm: u32,
}

/// A temporary worker stall (freeze window).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StallFault {
    /// Worker index (`0..m`).
    pub worker: usize,
    /// First stalled round.
    pub from_round: u64,
    /// Number of stalled rounds.
    pub duration: u64,
}

impl StallFault {
    /// True if `round` lies inside the stall window.
    pub fn covers(&self, round: u64) -> bool {
        round >= self.from_round && round - self.from_round < self.duration
    }
}

/// What faults to inject into a run. Empty by default; see the module
/// docs for per-fault semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Permanent worker crashes.
    #[serde(default)]
    pub crashes: Vec<CrashFault>,
    /// Per-worker slowdown rates.
    #[serde(default)]
    pub slowdowns: Vec<SlowdownFault>,
    /// Temporary worker freezes.
    #[serde(default)]
    pub stalls: Vec<StallFault>,
    /// Workers whose deques never yield to thieves.
    #[serde(default)]
    pub blackholes: Vec<usize>,
    /// Probability (ppm) that any executed task fails/panics.
    #[serde(default)]
    pub panic_ppm: u32,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if this plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.slowdowns.is_empty()
            && self.stalls.is_empty()
            && self.blackholes.is_empty()
            && self.panic_ppm == 0
    }

    /// Add a crash of `worker` at the start of `at_round`.
    pub fn crash(mut self, worker: usize, at_round: u64) -> Self {
        self.crashes.push(CrashFault { worker, at_round });
        self
    }

    /// Add a permanent slowdown of `worker` to `rate_ppm` parts-per-million
    /// of full speed.
    pub fn slowdown(mut self, worker: usize, rate_ppm: u32) -> Self {
        self.slowdowns.push(SlowdownFault { worker, rate_ppm });
        self
    }

    /// Add a stall of `worker` for `duration` rounds starting at
    /// `from_round`.
    pub fn stall(mut self, worker: usize, from_round: u64, duration: u64) -> Self {
        self.stalls.push(StallFault {
            worker,
            from_round,
            duration,
        });
        self
    }

    /// Make steals against `worker` always fail.
    pub fn blackhole(mut self, worker: usize) -> Self {
        self.blackholes.push(worker);
        self
    }

    /// Make every executed task fail with probability `ppm` / 1e6.
    pub fn with_panic_ppm(mut self, ppm: u32) -> Self {
        self.panic_ppm = ppm.min(PPM);
        self
    }

    /// The crash scheduled for `worker`, if any (earliest wins).
    pub fn crash_round_of(&self, worker: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|c| c.worker == worker)
            .map(|c| c.at_round)
            .min()
    }

    /// The slowdown rate of `worker` in ppm ([`PPM`] = full speed).
    pub fn rate_ppm_of(&self, worker: usize) -> u32 {
        self.slowdowns
            .iter()
            .filter(|s| s.worker == worker)
            .map(|s| s.rate_ppm)
            .min()
            .unwrap_or(PPM)
            .min(PPM)
    }

    /// True if `worker` is stalled during `round`.
    pub fn is_stalled(&self, worker: usize, round: u64) -> bool {
        self.stalls
            .iter()
            .any(|s| s.worker == worker && s.covers(round))
    }

    /// True if steals against `worker` are blackholed.
    pub fn is_blackhole(&self, worker: usize) -> bool {
        self.blackholes.contains(&worker)
    }

    /// Largest round at which this plan still changes behaviour (used by
    /// engines to bound quiescent fast-forwarding).
    pub fn last_scheduled_round(&self) -> Option<u64> {
        let crash = self.crashes.iter().map(|c| c.at_round).max();
        let stall = self
            .stalls
            .iter()
            .map(|s| s.from_round.saturating_add(s.duration))
            .max();
        crash.max(stall)
    }

    /// Check the plan against a machine of `m` workers: worker indices in
    /// range, probabilities sane, and at least one worker left standing.
    pub fn validate(&self, m: usize) -> Result<(), String> {
        let oob = |w: usize| format!("fault references worker {w}, but m = {m}");
        for c in &self.crashes {
            if c.worker >= m {
                return Err(oob(c.worker));
            }
        }
        for s in &self.slowdowns {
            if s.worker >= m {
                return Err(oob(s.worker));
            }
        }
        for s in &self.stalls {
            if s.worker >= m {
                return Err(oob(s.worker));
            }
            if s.duration == 0 {
                return Err(format!("stall of worker {} has zero duration", s.worker));
            }
        }
        for &w in &self.blackholes {
            if w >= m {
                return Err(oob(w));
            }
        }
        if self.panic_ppm > PPM {
            return Err(format!(
                "panic probability {} ppm exceeds {} (100%)",
                self.panic_ppm, PPM
            ));
        }
        let crashed: std::collections::BTreeSet<usize> =
            self.crashes.iter().map(|c| c.worker).collect();
        if !self.crashes.is_empty() && crashed.len() >= m {
            return Err(format!(
                "plan crashes all {m} workers; at least one must survive"
            ));
        }
        // Progress guarantee: at least one worker must be able to execute
        // work forever (not crashed, not frozen at rate 0).
        let can_work = (0..m).any(|p| !crashed.contains(&p) && self.rate_ppm_of(p) > 0);
        if !can_work {
            return Err(format!(
                "plan leaves no worker of {m} able to make progress \
                 (all crashed or slowed to rate 0)"
            ));
        }
        Ok(())
    }
}

/// Deterministic per-round execution throttle implementing
/// [`SlowdownFault`]: a worker with rate `r` ppm accumulates `r` credits
/// per round and may execute work whenever it holds a full [`PPM`] —
/// exactly `⌊n·r/1e6⌋` working rounds in any window of `n`, no drift.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlowdownGate {
    rate_ppm: u32,
    credit: u64,
}

impl SlowdownGate {
    /// Gate for a worker running at `rate_ppm` parts-per-million.
    pub fn new(rate_ppm: u32) -> Self {
        SlowdownGate {
            rate_ppm: rate_ppm.min(PPM),
            credit: 0,
        }
    }

    /// Advance one round; true if the worker may execute this round.
    pub fn tick(&mut self) -> bool {
        self.credit += self.rate_ppm as u64;
        if self.credit >= PPM as u64 {
            self.credit -= PPM as u64;
            true
        } else {
            false
        }
    }

    /// True if this gate never blocks (full speed).
    pub fn is_full_speed(&self) -> bool {
        self.rate_ppm == PPM
    }
}

/// What kind of fault fired (for [`FaultEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A worker crashed and left service.
    Crash,
    /// A crashed worker's deque was reinjected into the global queue.
    OrphanReinjection,
    /// A worker entered a stall window.
    StallBegin,
    /// A worker left a stall window.
    StallEnd,
    /// An executed task failed (injected panic).
    TaskPanic,
    /// The engine abandoned the run (watchdog deadline, all workers dead).
    Abort,
}

/// One fault that actually fired during a run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Engine time (simulator round / runtime tick estimate) of the event.
    pub round: u64,
    /// Worker involved, if any.
    pub worker: Option<usize>,
    /// Job involved, if any.
    pub job: Option<u32>,
    /// What happened.
    pub kind: FaultKind,
    /// Free-form detail (e.g. number of reinjected tasks).
    pub detail: u64,
}

/// Terminal status of one job under fault injection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Ran to completion.
    #[default]
    Completed,
    /// A task of this job panicked / was marked failed.
    Failed,
    /// The run ended (watchdog / crash exhaustion) before the job finished.
    Aborted,
}

impl JobStatus {
    /// True for [`JobStatus::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed)
    }
}

/// Deterministic per-task panic sampler: a tiny SplitMix64 stream keyed by
/// `(seed, job, node)` so both engines agree on *which* tasks fail
/// regardless of scheduling order or thread interleaving.
#[derive(Clone, Copy, Debug)]
pub struct PanicSampler {
    seed: u64,
    ppm: u32,
}

impl PanicSampler {
    /// Sampler failing each task with probability `ppm`/1e6, keyed by
    /// `seed`.
    pub fn new(seed: u64, ppm: u32) -> Self {
        PanicSampler {
            seed,
            ppm: ppm.min(PPM),
        }
    }

    /// True if the task `(job, node)` should fail.
    pub fn should_panic(&self, job: u32, node: u32) -> bool {
        self.should_panic_seq(job, node as u64)
    }

    /// True if chunk `seq` of `job` should fail, keeping the sequence
    /// number's full 64-bit width.
    ///
    /// The runtime executor keys the sampler by a monotone per-job chunk
    /// counter; truncating it to `u32` (as an `as u32` cast at the call
    /// site used to) silently recycles panic decisions past 2³² chunks —
    /// the same defect family as the PR 3 `failed_steals` saturation bug.
    /// For `seq < 2³²` the stream is bit-identical to
    /// [`PanicSampler::should_panic`] (`job` occupies the high 32 bits,
    /// so XOR and OR agree while the halves are disjoint); beyond, the
    /// high bits mix instead of vanishing.
    pub fn should_panic_seq(&self, job: u32, seq: u64) -> bool {
        if self.ppm == 0 {
            return false;
        }
        let mut z = self
            .seed
            .wrapping_add(((job as u64) << 32) ^ seq)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % PPM as u64) < self.ppm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let plan = FaultPlan::none()
            .crash(3, 1000)
            .slowdown(2, 500_000)
            .stall(1, 50, 10)
            .blackhole(0)
            .with_panic_ppm(10_000);
        assert!(!plan.is_empty());
        assert_eq!(plan.crash_round_of(3), Some(1000));
        assert_eq!(plan.crash_round_of(0), None);
        assert_eq!(plan.rate_ppm_of(2), 500_000);
        assert_eq!(plan.rate_ppm_of(3), PPM);
        assert!(plan.is_stalled(1, 50));
        assert!(plan.is_stalled(1, 59));
        assert!(!plan.is_stalled(1, 60));
        assert!(!plan.is_stalled(1, 49));
        assert!(plan.is_blackhole(0));
        assert!(!plan.is_blackhole(1));
        assert_eq!(plan.panic_ppm, 10_000);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
        assert_eq!(FaultPlan::none().last_scheduled_round(), None);
    }

    #[test]
    fn last_scheduled_round_covers_crashes_and_stalls() {
        let plan = FaultPlan::none().crash(0, 100).stall(1, 400, 50);
        assert_eq!(plan.last_scheduled_round(), Some(450));
        let plan = FaultPlan::none().crash(0, 1000).stall(1, 400, 50);
        assert_eq!(plan.last_scheduled_round(), Some(1000));
    }

    #[test]
    fn validate_rejects_out_of_range_workers() {
        assert!(FaultPlan::none().crash(4, 10).validate(4).is_err());
        assert!(FaultPlan::none().slowdown(9, 1).validate(4).is_err());
        assert!(FaultPlan::none().stall(4, 0, 5).validate(4).is_err());
        assert!(FaultPlan::none().blackhole(7).validate(4).is_err());
        assert!(FaultPlan::none().crash(3, 10).validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_crashing_everyone() {
        let plan = FaultPlan::none().crash(0, 1).crash(1, 2);
        assert!(plan.validate(2).is_err());
        assert!(plan.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_zero_duration_stall() {
        assert!(FaultPlan::none().stall(0, 5, 0).validate(2).is_err());
    }

    #[test]
    fn slowdown_gate_exact_rate() {
        // Half speed: exactly n/2 working rounds in any prefix of length n.
        let mut g = SlowdownGate::new(500_000);
        let worked: u32 = (0..1000).map(|_| g.tick() as u32).sum();
        assert_eq!(worked, 500);

        // One third, over a window not divisible by 3.
        let mut g = SlowdownGate::new(333_333);
        let worked: u32 = (0..1000).map(|_| g.tick() as u32).sum();
        assert_eq!(worked, 333);

        // Full speed never blocks; zero never works.
        let mut full = SlowdownGate::new(PPM);
        let mut dead = SlowdownGate::new(0);
        for _ in 0..100 {
            assert!(full.tick());
            assert!(!dead.tick());
        }
    }

    #[test]
    fn panic_sampler_deterministic_and_calibrated() {
        let s = PanicSampler::new(42, 100_000); // 10%
        let t = PanicSampler::new(42, 100_000);
        let mut fails = 0u32;
        for job in 0..100u32 {
            for node in 0..100u32 {
                assert_eq!(s.should_panic(job, node), t.should_panic(job, node));
                fails += s.should_panic(job, node) as u32;
            }
        }
        // 10% ± generous slack over 10k samples.
        assert!((800..1200).contains(&fails), "got {fails} failures");
        // Different seeds give different streams.
        let u = PanicSampler::new(43, 100_000);
        let diff = (0..1000u32)
            .filter(|&n| s.should_panic(0, n) != u.should_panic(0, n))
            .count();
        assert!(diff > 0);
        // Zero probability never fires even with a seed.
        let z = PanicSampler::new(42, 0);
        assert!((0..1000u32).all(|n| !z.should_panic(0, n)));
    }

    #[test]
    fn panic_sampler_seq_keeps_full_width() {
        // Regression for the truncating `seq as u32` call site in the
        // runtime executor (the failed_steals u32-saturation family):
        // below 2^32 the wide key reproduces the narrow stream exactly...
        let s = PanicSampler::new(42, 100_000);
        for job in [0u32, 1, 7] {
            for seq in (0..2000u64).chain([u32::MAX as u64 - 1, u32::MAX as u64]) {
                assert_eq!(
                    s.should_panic_seq(job, seq),
                    s.should_panic(job, seq as u32),
                    "job {job} seq {seq}"
                );
            }
        }
        // ...while past 2^32 the high bits must matter: a truncating key
        // would recycle the sub-2^32 decisions verbatim.
        let wrapped = (0..4096u64)
            .filter(|&k| s.should_panic_seq(0, (1u64 << 32) + k) != s.should_panic(0, k as u32))
            .count();
        assert!(wrapped > 0, "seq high bits were discarded");
    }

    #[test]
    fn job_status_helpers() {
        assert!(JobStatus::Completed.is_completed());
        assert!(!JobStatus::Failed.is_completed());
        assert!(!JobStatus::Aborted.is_completed());
        assert_eq!(JobStatus::default(), JobStatus::Completed);
    }
}
