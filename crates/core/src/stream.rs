//! Streaming engine entry points: O(active)-memory simulation over endless
//! job streams.
//!
//! The materialized entry points ([`crate::run_worksteal`],
//! [`crate::run_priority`]) demand a fully built [`Instance`] — `Vec<Job>`
//! plus per-job state slabs and an O(n) outcome vector — so *memory*, not
//! CPU, caps the horizon at n ≈ 10⁶ jobs. The paper's model, however, is an
//! online endless arrival stream, and its asymptotic claims (competitive
//! ratios as n → ∞) need 10⁷-job runs. The entry points here pull jobs one
//! at a time from a [`JobStream`], keep exactly one job of lookahead, and
//! retire completed jobs back into a free-listed slab (plus the existing
//! recycled [`CursorArena`]), so live memory is O(active jobs + m), not
//! O(n). Completed [`JobOutcome`]s are pushed into a caller-provided sink
//! instead of being accumulated.
//!
//! **Bit identity.** For any materialized instance, running the streaming
//! engine over [`InstanceReplay`] reproduces the materialized run exactly:
//! the same RNG stream (victim selection never reads job ids), the same
//! [`EngineStats`], the same per-job outcomes in completion order, and the
//! same [`ScheduleTrace`] when recorded. Internally tasks carry slab *slot*
//! ids instead of job ids; slots are handed out in arrival order from a
//! LIFO free list, mirroring the arena recycling of the materialized path,
//! and every job-visible quantity (trace rows, admission tie-breaks,
//! outcomes) is translated back through the slot's stored job id. The
//! differential proptests in `tests/stream_differential.rs` pin this down
//! for every prefix of random instances.
//!
//! **Faults are unsupported** on the streaming path ([`StreamError::
//! FaultsUnsupported`]): crash/stall/panic machinery is inherently bounded
//! by the fault plan, not the stream, and all of it is a no-op under an
//! empty plan — which is exactly what the fault-free port here replays.

use crate::centralized::JobPriority;
use crate::config::{AdmissionOrder, SimConfig, StealCost, VictimStrategy};
use crate::fault::JobStatus;
use crate::opt::OptTracker;
use crate::result::{BacklogSample, EngineStats, JobOutcome};
use crate::trace::{Action, ScheduleTrace};
use crate::worksteal::{
    any_stealable, burn_failed_attempts, steal_into, StealPolicy, Worker, WorkerObs,
};
use parflow_dag::{CursorArena, CursorId, Instance, Job, JobDag, JobId, NodeId, StepOutcome};
use parflow_obs::{NullRecorder, Recorder};
use parflow_time::{Rational, Round, Speed, Ticks};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// One job pulled from a [`JobStream`]: the online metadata the scheduler
/// learns at release time, minus the dense id (assigned by the engine in
/// pull order). `weight` must be positive, like [`Job::weighted`]'s.
#[derive(Clone, Debug)]
pub struct StreamedJob {
    /// Release time `r_i` in wall-clock ticks. Streams must be
    /// non-decreasing in arrival, like [`Instance`]s.
    pub arrival: Ticks,
    /// Priority weight `w_i` (1 for unweighted streams).
    pub weight: u64,
    /// The job's internal structure. Shared via `Arc` so generators can
    /// cache structurally identical DAGs across millions of jobs.
    pub dag: Arc<JobDag>,
}

/// An online arrival sequence, pulled one job at a time.
///
/// The engine keeps exactly one job of lookahead: a job is pulled only
/// once the previous one has been released into the global queue, so a
/// stream backed by a live source sees demand-driven pulls and an endless
/// stream never materializes.
pub trait JobStream {
    /// The next job in arrival order, or `None` when the stream ends.
    fn next_job(&mut self) -> Option<StreamedJob>;
}

/// Replay of a materialized [`Instance`] as a [`JobStream`] — the bridge
/// the differential tests use to prove streaming runs bit-identical to
/// materialized ones.
#[derive(Clone, Debug)]
pub struct InstanceReplay<'a> {
    jobs: &'a [Job],
    next: usize,
}

impl<'a> InstanceReplay<'a> {
    /// Replay every job of `instance` in arrival order.
    pub fn new(instance: &'a Instance) -> Self {
        InstanceReplay {
            jobs: instance.jobs(),
            next: 0,
        }
    }

    /// Replay only the first `n` jobs (arrival order). Because instances
    /// are arrival-sorted with dense ids, this is exactly the instance
    /// built from the first `n` jobs.
    pub fn prefix(instance: &'a Instance, n: usize) -> Self {
        InstanceReplay {
            jobs: &instance.jobs()[..n.min(instance.len())],
            next: 0,
        }
    }
}

impl JobStream for InstanceReplay<'_> {
    fn next_job(&mut self) -> Option<StreamedJob> {
        let job = self.jobs.get(self.next)?;
        self.next += 1;
        Some(StreamedJob {
            arrival: job.arrival,
            weight: job.weight,
            dag: Arc::clone(&job.dag),
        })
    }
}

/// A [`JobStream`] adapter that feeds every pulled job into an
/// [`OptTracker`] before handing it to the engine, so the OPT lower bound
/// and competitive ratio are available live alongside the streaming run.
#[derive(Clone, Debug)]
pub struct OptTap<S> {
    inner: S,
    opt: OptTracker,
}

impl<S: JobStream> OptTap<S> {
    /// Wrap `inner`, tracking OPT bounds for an `m`-machine cluster.
    pub fn new(inner: S, m: usize) -> Self {
        OptTap {
            inner,
            opt: OptTracker::new(m),
        }
    }

    /// The tracker (covers every job pulled so far).
    pub fn opt(&self) -> &OptTracker {
        &self.opt
    }

    /// Unwrap into the inner stream and the tracker.
    pub fn into_parts(self) -> (S, OptTracker) {
        (self.inner, self.opt)
    }
}

impl<S: JobStream> JobStream for OptTap<S> {
    fn next_job(&mut self) -> Option<StreamedJob> {
        let job = self.inner.next_job()?;
        self.opt
            .on_arrival(job.arrival, job.dag.total_work(), job.dag.span());
        Some(job)
    }
}

/// Errors surfaced by the streaming entry points.
///
/// The materialized engines index jobs with dense `u32` ids and would
/// silently wrap past `u32::MAX` jobs if anything could materialize that
/// many; the streaming path is the first one that can, so it checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The stream produced more jobs than `u32` job ids can index
    /// (mirrors `parflow_runtime`'s `RuntimeError::TooManyJobs` guard).
    /// Carries the first id that did not fit.
    TooManyJobs(u64),
    /// Job at this pull index arrived before its predecessor; streams
    /// must be non-decreasing in arrival, like [`Instance`]s.
    UnsortedArrivals {
        /// 0-based pull index of the offending job.
        index: u64,
    },
    /// The config carries a non-empty fault plan; fault injection is only
    /// supported on the materialized path.
    FaultsUnsupported,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StreamError::TooManyJobs(id) => write!(
                f,
                "job stream exceeded u32 id space (job index {id} > {})",
                u32::MAX
            ),
            StreamError::UnsortedArrivals { index } => write!(
                f,
                "job stream is not sorted by arrival (job index {index} arrived before its predecessor)"
            ),
            StreamError::FaultsUnsupported => {
                write!(f, "fault plans are not supported on the streaming path")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Retirement telemetry of a streaming run: how hard the free-listed slab
/// and cursor arena were recycled. Kept out of [`EngineStats`] (which
/// goldens bit-compare against materialized runs) and surfaced both here
/// and as `ws.stream.*` counters on the obs taxonomy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetirementStats {
    /// Jobs whose slab slot was recycled after completion.
    pub jobs_retired: u64,
    /// High-water mark of simultaneously live (released, not yet retired)
    /// jobs — the "active" in the O(active + m) memory bound.
    pub live_jobs_high_water: u64,
    /// Slab slots ever allocated (== the high-water mark; retirement
    /// recycles instead of freeing).
    pub slab_slots: u64,
    /// Cursor-arena slots ever allocated (bounded by peak admitted jobs).
    pub cursor_slots: u64,
}

impl RetirementStats {
    /// Fraction of job activations served from recycled slots:
    /// `1 - slab_slots / jobs`, i.e. 0 when every job needed a fresh slot
    /// and → 1 when the slab reached steady state early. `None` until the
    /// first job is retired.
    pub fn slab_reuse_ratio(&self) -> Option<f64> {
        if self.jobs_retired == 0 {
            return None;
        }
        Some(1.0 - self.slab_slots as f64 / self.jobs_retired as f64)
    }
}

/// Result of a streaming run: everything [`crate::SimResult`] carries
/// except the O(n) outcome vector (outcomes went to the sink) — plus the
/// running max flow (the paper's objective, tracked exactly) and the
/// retirement telemetry.
#[derive(Clone, Debug)]
pub struct StreamSummary {
    /// Number of machines.
    pub m: usize,
    /// Machine speed used.
    pub speed: Speed,
    /// Rounds until the last job completed.
    pub total_rounds: Round,
    /// Jobs pulled from the stream (all completed).
    pub jobs: u64,
    /// Engine counters — bit-identical to the materialized run's.
    pub stats: EngineStats,
    /// Periodic backlog samples (`config.sample_every`).
    pub samples: Vec<BacklogSample>,
    /// Maximum flow time over all completed jobs, in ticks (exact).
    pub max_flow: Rational,
    /// Slab/arena recycling telemetry.
    pub retire: RetirementStats,
}

/// A live (released, not yet retired) job in the slab. The `Job` keeps the
/// stream-assigned dense id so admission tie-breaks, priority keys, trace
/// rows and outcomes are indistinguishable from the materialized run.
struct Slot {
    job: Job,
    cursor: Option<CursorId>,
    started: Option<Round>,
}

/// The free-listed job slab: slots recycle LIFO so the live set stays hot
/// in cache and steady state allocates nothing per job.
#[derive(Default)]
struct JobSlab {
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    live: u64,
    high_water: u64,
}

impl JobSlab {
    #[inline]
    fn alloc(&mut self, slot: Slot) -> u32 {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        if let Some(sid) = self.free.pop() {
            self.slots[sid as usize] = Some(slot);
            sid
        } else {
            // Live jobs are bounded by backlog, which blows the round cap
            // long before it could blow u32 — but check anyway.
            assert!(
                self.slots.len() < u32::MAX as usize,
                "live-job slab exceeded u32 slot space"
            );
            self.slots.push(Some(slot));
            (self.slots.len() - 1) as u32 // lint: allow(truncating-cast) length bounded by the assert above
        }
    }

    #[inline]
    fn get(&self, sid: u32) -> &Slot {
        self.slots[sid as usize].as_ref().expect("live slot") // lint: allow(panicking) invariant: queued/claimed tasks only reference live slots
    }

    #[inline]
    fn get_mut(&mut self, sid: u32) -> &mut Slot {
        self.slots[sid as usize].as_mut().expect("live slot") // lint: allow(panicking) invariant: queued/claimed tasks only reference live slots
    }

    /// Retire a completed job: drop its `Job` (and DAG Arc) and push the
    /// slot onto the free list for the next arrival.
    #[inline]
    fn retire(&mut self, sid: u32) -> Slot {
        let slot = self.slots[sid as usize].take().expect("live slot"); // lint: allow(panicking) invariant: a completing job occupies its slab slot exactly once
        self.free.push(sid);
        self.live -= 1;
        slot
    }
}

/// One-job-lookahead pull state shared by the streaming engines: assigns
/// dense ids in pull order, validates id space and arrival monotonicity,
/// and maintains the running totals the growing safety cap needs.
struct Puller<'s, S: JobStream> {
    stream: &'s mut S,
    id_base: u64,
    produced: u64,
    total_work: u64,
    last_arrival: Ticks,
    /// The job pulled but not yet released, with its assigned id.
    pending: Option<(JobId, StreamedJob)>,
}

impl<'s, S: JobStream> Puller<'s, S> {
    fn new(stream: &'s mut S, id_base: u64) -> Result<Self, StreamError> {
        let mut p = Puller {
            stream,
            id_base,
            produced: 0,
            total_work: 0,
            last_arrival: 0,
            pending: None,
        };
        p.advance()?;
        Ok(p)
    }

    /// Pull the next job into `pending` (replacing the released one).
    fn advance(&mut self) -> Result<(), StreamError> {
        let Some(job) = self.stream.next_job() else {
            self.pending = None;
            return Ok(());
        };
        let index = self.produced;
        let id64 = self
            .id_base
            .checked_add(index)
            .ok_or(StreamError::TooManyJobs(u64::MAX))?;
        if id64 > u32::MAX as u64 {
            return Err(StreamError::TooManyJobs(id64));
        }
        if index > 0 && job.arrival < self.last_arrival {
            return Err(StreamError::UnsortedArrivals { index });
        }
        self.produced += 1;
        self.total_work += job.dag.total_work();
        self.last_arrival = job.arrival;
        self.pending = Some((id64 as u32, job)); // lint: allow(truncating-cast) id64 checked <= u32::MAX just above
        Ok(())
    }
}

/// Simulate work stealing over a [`JobStream`], pushing each completed
/// job's [`JobOutcome`] into `sink` (in completion order) instead of
/// accumulating them. Bit-identical to [`crate::run_worksteal`] when the
/// stream replays a materialized instance — same RNG stream, same
/// [`EngineStats`], same trace — but with O(active + m) live memory.
///
/// `config.faults` must be empty ([`StreamError::FaultsUnsupported`]).
pub fn run_worksteal_stream<S: JobStream>(
    stream: &mut S,
    config: &SimConfig,
    policy: StealPolicy,
    seed: u64,
    sink: &mut dyn FnMut(&JobOutcome),
) -> Result<(StreamSummary, Option<ScheduleTrace>), StreamError> {
    run_worksteal_stream_observed(stream, config, policy, seed, sink, &mut NullRecorder)
}

/// [`run_worksteal_stream`] with a [`Recorder`] attached. Emits the same
/// `ws.*` / `ws.worker.*` taxonomy as the materialized engine plus
/// `ws.stream.*` retirement counters; per-job `ws.flow_ticks` samples are
/// intentionally **not** emitted (the recorder would grow O(n) on a 10M-job
/// stream — sample from the sink instead).
pub fn run_worksteal_stream_observed<S: JobStream>(
    stream: &mut S,
    config: &SimConfig,
    policy: StealPolicy,
    seed: u64,
    sink: &mut dyn FnMut(&JobOutcome),
    rec: &mut dyn Recorder,
) -> Result<(StreamSummary, Option<ScheduleTrace>), StreamError> {
    run_worksteal_stream_with_base(stream, config, policy, seed, sink, rec, 0)
}

/// [`run_worksteal_stream_observed`] with job ids starting at `id_base`
/// instead of 0. Exists so the `TooManyJobs` id-space guard is testable at
/// the `u32::MAX` boundary without streaming 4 billion jobs first.
#[doc(hidden)]
pub fn run_worksteal_stream_with_base<S: JobStream>(
    stream: &mut S,
    config: &SimConfig,
    policy: StealPolicy,
    seed: u64,
    sink: &mut dyn FnMut(&JobOutcome),
    rec: &mut dyn Recorder,
    id_base: u64,
) -> Result<(StreamSummary, Option<ScheduleTrace>), StreamError> {
    let m = config.m;
    let speed = config.speed;
    let k = policy.k();
    if !config.faults.is_empty() {
        return Err(StreamError::FaultsUnsupported);
    }
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut workers: Vec<Worker> = (0..m).map(Worker::new).collect();
    let mut arena = CursorArena::new();
    let mut slab = JobSlab::default();
    // The global FIFO holds slab slot ids; arrival order is preserved, so
    // FIFO admission pops the oldest job exactly like the materialized
    // queue of job ids.
    let mut global_queue: VecDeque<u32> = VecDeque::new();
    let mut stats = EngineStats::default();
    let mut trace = config.record_trace.then(|| ScheduleTrace::new(m, speed));
    let mut samples: Vec<BacklogSample> = Vec::new();

    let obs = rec.enabled();
    let mut wobs: Vec<WorkerObs> = if obs {
        vec![WorkerObs::default(); m]
    } else {
        Vec::new()
    };
    // The fault machinery of the materialized engine is a no-op under an
    // empty plan; only the blackhole mask survives into the shared steal
    // helpers (all false here).
    let blackholed: Vec<bool> = vec![false; m];

    let mut puller = Puller::new(stream, id_base)?;
    let mut released: u64 = 0;
    let mut completed: u64 = 0;
    let mut live_admitted = 0usize;
    let mut round: Round = 0;
    let mut last_busy_round: Round = 0;
    let mut max_flow = Rational::ZERO;
    let mut jobs_retired: u64 = 0;

    // Same bound as the materialized engine, but over the pulled prefix:
    // every round the engine can reach is justified by jobs already pulled,
    // so recomputing from the running totals after each pull keeps the
    // invariant. (Fault-free, so no plan-dependent stretching.)
    let cap = |last_arrival: Ticks, total_work: u64, produced: u64| -> Round {
        speed.first_round_at_or_after(last_arrival)
            + total_work
            + (k as Round + 2) * (produced + m as Round)
            + 64
    };
    let mut safety_cap: Round = cap(puller.last_arrival, puller.total_work, puller.produced);

    let fast_ok = !config.record_trace;

    // Scratch buffers hoisted out of the hot loop.
    let mut ready_scratch: Vec<NodeId> = Vec::new();
    let mut sources_scratch: Vec<NodeId> = Vec::new();

    'rounds: while puller.pending.is_some() || completed < released {
        assert!(
            round <= safety_cap,
            "streaming work-stealing engine exceeded round cap"
        );

        // Release arrivals into the global FIFO queue, pulling the next
        // job after each release (one-job lookahead).
        while let Some((jid, job)) = puller.pending.as_ref() {
            if !speed.arrived_by_round(job.arrival, round) {
                break;
            }
            let (jid, job) = (*jid, job.clone());
            let sid = slab.alloc(Slot {
                job: Job::weighted(jid, job.arrival, job.weight, job.dag),
                cursor: None,
                started: None,
            });
            global_queue.push_back(sid);
            released += 1;
            puller.advance()?;
            safety_cap = cap(puller.last_arrival, puller.total_work, puller.produced);
        }

        if config.sample_every > 0 && round.is_multiple_of(config.sample_every) {
            samples.push(BacklogSample {
                round,
                queued: global_queue.len(),
                live: live_admitted,
                deque_tasks: workers.iter().map(|w| w.deque.len()).sum::<usize>(),
            });
        }

        // Quiescent fast-forward: nothing admitted is live and nothing is
        // queued — skip to the next arrival.
        if live_admitted == 0 && global_queue.is_empty() {
            // `completed == released` here, so the loop condition
            // guarantees a pending job exists.
            let (_, job) = puller
                .pending
                .as_ref()
                .expect("deadlock: nothing live, nothing queued"); // lint: allow(panicking) invariant: loop condition guarantees a pending arrival when the backlog is empty
            let target = speed.first_round_at_or_after(job.arrival);
            debug_assert!(target > round, "fast-forward must move time forward");
            let gap = target - round;
            stats.idle_steps += gap * m as u64;
            for (p, w) in workers.iter_mut().enumerate() {
                w.failed_steals = w.failed_steals.saturating_add(gap);
                if obs {
                    let o = &mut wobs[p];
                    o.failed_steal_rounds += gap;
                    o.idle_steps += gap;
                    o.max_failed_streak = o.max_failed_streak.max(w.failed_steals);
                }
            }
            if config.sample_every > 0 {
                let se = config.sample_every;
                let mut s = (round / se + 1) * se;
                while s < target {
                    samples.push(BacklogSample {
                        round: s,
                        queued: 0,
                        live: 0,
                        deque_tasks: 0,
                    });
                    s += se;
                }
            }
            if let Some(t) = trace.as_mut() {
                t.push_idle_rounds(gap);
            }
            round = target;
            continue;
        }

        // Event-window fast path — identical to the materialized engine's
        // (see `run_worksteal_observed` for the full argument), with the
        // next *pending* arrival capping the span.
        'window: {
            if !fast_ok {
                break 'window;
            }
            let arrival_cap = if let Some((_, job)) = puller.pending.as_ref() {
                speed.first_round_at_or_after(job.arrival) - round
            } else {
                u64::MAX
            };
            if arrival_cap < 2 {
                break 'window;
            }
            let mut min_rem = u64::MAX;
            let mut busy = 0usize;
            let mut deques_empty = true;
            for w in &workers {
                if let Some((sid, v)) = w.current {
                    let cid = slab.get(sid).cursor.expect("admitted job"); // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
                    let rem = arena
                        .get(cid)
                        .remaining_work(v)
                        .expect("current node in range"); // lint: allow(panicking) invariant: cursors only hold nodes of their own DAG
                    if rem < 2 {
                        break 'window;
                    }
                    if rem < min_rem {
                        min_rem = rem;
                    }
                    busy += 1;
                }
                if !w.deque.is_empty() {
                    deques_empty = false;
                }
            }
            let eligible = busy > 0 && (busy == m || (global_queue.is_empty() && deques_empty));
            if eligible {
                let delta = min_rem.min(arrival_cap);
                let last = round + delta - 1;
                if config.sample_every > 0 {
                    let se = config.sample_every;
                    let queued = global_queue.len();
                    let deque_tasks = workers.iter().map(|w| w.deque.len()).sum::<usize>();
                    let mut s = (round / se + 1) * se;
                    while s <= last {
                        samples.push(BacklogSample {
                            round: s,
                            queued,
                            live: live_admitted,
                            deque_tasks,
                        });
                        s += se;
                    }
                }
                if busy < m {
                    debug_assert!(global_queue.is_empty() && deques_empty);
                    let per_round: u64 = match config.steal_cost {
                        StealCost::UnitStep => 1,
                        StealCost::Free => {
                            if k == 0 {
                                2 * m as u64
                            } else {
                                k as u64
                            }
                        }
                    };
                    let idle = (m - busy) as u64;
                    stats.steal_attempts += delta * per_round * idle;
                    if obs {
                        for (p, w) in workers.iter().enumerate() {
                            if w.current.is_none() {
                                wobs[p].steal_attempts += delta * per_round;
                            }
                        }
                    }
                    match config.victim {
                        VictimStrategy::Uniform => {
                            crate::worksteal::burn_uniform_draws(
                                &mut rng,
                                m,
                                delta * per_round * idle,
                            );
                        }
                        VictimStrategy::RoundRobinScan => {
                            for (p, w) in workers.iter_mut().enumerate() {
                                if w.current.is_none() {
                                    w.scan_next = crate::worksteal::advance_scan(
                                        w.scan_next,
                                        p,
                                        m,
                                        delta * per_round,
                                    );
                                }
                            }
                        }
                    }
                    match config.steal_cost {
                        StealCost::UnitStep => {
                            for (p, w) in workers.iter_mut().enumerate() {
                                if w.current.is_none() {
                                    w.failed_steals = w.failed_steals.saturating_add(delta);
                                    if obs {
                                        let o = &mut wobs[p];
                                        o.failed_steal_rounds += delta;
                                        o.max_failed_streak =
                                            o.max_failed_streak.max(w.failed_steals);
                                    }
                                }
                            }
                        }
                        StealCost::Free => {
                            stats.idle_steps += delta * idle;
                            if obs {
                                for (p, w) in workers.iter().enumerate() {
                                    if w.current.is_none() {
                                        wobs[p].idle_steps += delta;
                                    }
                                }
                            }
                        }
                    }
                }
                for (p, w) in workers.iter_mut().enumerate() {
                    let Some((sid, v)) = w.current else {
                        continue;
                    };
                    let cid = slab.get(sid).cursor.expect("admitted job"); // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
                    stats.work_steps += delta;
                    if obs {
                        wobs[p].work_steps += delta;
                    }
                    w.failed_steals = 0;
                    ready_scratch.clear();
                    let outcome = {
                        let slot = slab.get(sid);
                        arena
                            .get_mut(cid)
                            .execute_units(&slot.job.dag, v, delta, &mut ready_scratch)
                            .expect("current node claimed") // lint: allow(panicking) invariant: executed nodes were claimed by this cursor
                    };
                    match outcome {
                        StepOutcome::InProgress => {}
                        StepOutcome::NodeCompleted { job_completed } => {
                            w.current = None;
                            let cursor = arena.get_mut(cid);
                            for &u in ready_scratch.iter() {
                                cursor.claim(u).expect("newly ready claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                                w.pending.push((sid, u));
                            }
                            if job_completed {
                                arena.release(cid);
                                let slot = slab.retire(sid);
                                jobs_retired += 1;
                                live_admitted -= 1;
                                completed += 1;
                                let out = JobOutcome {
                                    job: slot.job.id,
                                    arrival: slot.job.arrival,
                                    weight: slot.job.weight,
                                    start_round: slot.started.expect("job admitted"), // lint: allow(panicking) invariant: start_round is recorded at admission, before execution
                                    completion_round: last,
                                    completion: speed.round_end(last),
                                    flow: speed.flow_time(slot.job.arrival, last),
                                    status: JobStatus::Completed,
                                };
                                max_flow = max_flow.max(out.flow);
                                sink(&out);
                            }
                        }
                    }
                }
                for w in &mut workers {
                    for task in w.pending.drain(..) {
                        w.deque.push_back(task);
                    }
                }
                last_busy_round = last;
                round += delta;
                continue 'rounds;
            }
        }

        let mut row: Vec<Action> = if config.record_trace {
            Vec::with_capacity(m)
        } else {
            Vec::new()
        };
        let mut stealable_cache: Option<bool> = None;

        for p in 0..m {
            // 1. Acquire work if idle: own deque → (policy) admit/steal.
            if workers[p].current.is_none() {
                if let Some(task) = workers[p].deque.pop_back() {
                    workers[p].current = Some(task);
                }
            }
            if workers[p].current.is_none() {
                match config.steal_cost {
                    StealCost::UnitStep => {
                        let admit_now = match policy {
                            StealPolicy::AdmitFirst => !global_queue.is_empty(),
                            StealPolicy::StealKFirst { k } => {
                                workers[p].failed_steals >= k as u64 && !global_queue.is_empty()
                            }
                        };
                        if admit_now {
                            let sid =
                                pop_admission_slot(&mut global_queue, &slab, config.admission)
                                    .expect("queue non-empty"); // lint: allow(panicking) emptiness checked immediately above
                            admit_slot(
                                sid,
                                p,
                                &mut slab,
                                &mut workers,
                                &mut arena,
                                &mut sources_scratch,
                                round,
                            );
                            live_admitted += 1;
                            stats.admissions += 1;
                            if obs {
                                wobs[p].admissions += 1;
                            }
                            stealable_cache = None;
                        } else {
                            stats.steal_attempts += 1;
                            if obs {
                                wobs[p].steal_attempts += 1;
                            }
                            let stealable = match stealable_cache {
                                Some(v) => v,
                                None => {
                                    let v = any_stealable(&workers, &blackholed);
                                    stealable_cache = Some(v);
                                    v
                                }
                            };
                            let hit = if stealable {
                                steal_into(
                                    p,
                                    &mut workers,
                                    &mut rng,
                                    config.victim,
                                    config.steal_amount,
                                    &blackholed,
                                )
                            } else {
                                burn_failed_attempts(&mut rng, &mut workers, p, config.victim, 1);
                                false
                            };
                            if hit {
                                stats.successful_steals += 1;
                                workers[p].failed_steals = 0;
                                if obs {
                                    wobs[p].successful_steals += 1;
                                }
                                stealable_cache = None;
                            } else {
                                workers[p].failed_steals =
                                    workers[p].failed_steals.saturating_add(1);
                                if obs {
                                    let o = &mut wobs[p];
                                    o.failed_steal_rounds += 1;
                                    o.max_failed_streak =
                                        o.max_failed_streak.max(workers[p].failed_steals);
                                }
                            }
                            if config.record_trace {
                                row.push(Action::Steal { hit });
                            }
                            continue;
                        }
                    }
                    StealCost::Free => {
                        if k == 0 {
                            if let Some(sid) =
                                pop_admission_slot(&mut global_queue, &slab, config.admission)
                            {
                                admit_slot(
                                    sid,
                                    p,
                                    &mut slab,
                                    &mut workers,
                                    &mut arena,
                                    &mut sources_scratch,
                                    round,
                                );
                                live_admitted += 1;
                                stats.admissions += 1;
                                if obs {
                                    wobs[p].admissions += 1;
                                }
                                stealable_cache = None;
                            } else {
                                let attempts = 2 * m.max(1) as u32; // lint: allow(truncating-cast) m is the processor count; a 2^32-processor instance is unrepresentable
                                let stealable = match stealable_cache {
                                    Some(v) => v,
                                    None => {
                                        let v = any_stealable(&workers, &blackholed);
                                        stealable_cache = Some(v);
                                        v
                                    }
                                };
                                if stealable {
                                    for _ in 0..attempts {
                                        stats.steal_attempts += 1;
                                        if obs {
                                            wobs[p].steal_attempts += 1;
                                        }
                                        if steal_into(
                                            p,
                                            &mut workers,
                                            &mut rng,
                                            config.victim,
                                            config.steal_amount,
                                            &blackholed,
                                        ) {
                                            stats.successful_steals += 1;
                                            if obs {
                                                wobs[p].successful_steals += 1;
                                            }
                                            stealable_cache = None;
                                            break;
                                        }
                                    }
                                } else {
                                    stats.steal_attempts += attempts as u64;
                                    if obs {
                                        wobs[p].steal_attempts += attempts as u64;
                                    }
                                    burn_failed_attempts(
                                        &mut rng,
                                        &mut workers,
                                        p,
                                        config.victim,
                                        attempts as u64,
                                    );
                                }
                            }
                        } else {
                            let stealable = match stealable_cache {
                                Some(v) => v,
                                None => {
                                    let v = any_stealable(&workers, &blackholed);
                                    stealable_cache = Some(v);
                                    v
                                }
                            };
                            if stealable {
                                for _ in 0..k {
                                    stats.steal_attempts += 1;
                                    if obs {
                                        wobs[p].steal_attempts += 1;
                                    }
                                    if steal_into(
                                        p,
                                        &mut workers,
                                        &mut rng,
                                        config.victim,
                                        config.steal_amount,
                                        &blackholed,
                                    ) {
                                        stats.successful_steals += 1;
                                        if obs {
                                            wobs[p].successful_steals += 1;
                                        }
                                        stealable_cache = None;
                                        break;
                                    }
                                }
                            } else {
                                stats.steal_attempts += k as u64;
                                if obs {
                                    wobs[p].steal_attempts += k as u64;
                                }
                                burn_failed_attempts(
                                    &mut rng,
                                    &mut workers,
                                    p,
                                    config.victim,
                                    k as u64,
                                );
                            }
                            if workers[p].current.is_none() {
                                if let Some(sid) =
                                    pop_admission_slot(&mut global_queue, &slab, config.admission)
                                {
                                    admit_slot(
                                        sid,
                                        p,
                                        &mut slab,
                                        &mut workers,
                                        &mut arena,
                                        &mut sources_scratch,
                                        round,
                                    );
                                    live_admitted += 1;
                                    stats.admissions += 1;
                                    if obs {
                                        wobs[p].admissions += 1;
                                    }
                                    stealable_cache = None;
                                }
                            }
                        }
                        if workers[p].current.is_none() {
                            stats.idle_steps += 1;
                            if obs {
                                wobs[p].idle_steps += 1;
                            }
                            if config.record_trace {
                                row.push(Action::Idle);
                            }
                            continue;
                        }
                    }
                }
            }

            // 2. Execute one unit of the current node.
            let (sid, v) = workers[p].current.expect("acquired work above"); // lint: allow(panicking) set on the acquisition path immediately above
            let cid = slab.get(sid).cursor.expect("admitted job"); // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
            let jid = slab.get(sid).job.id;
            stats.work_steps += 1;
            if obs {
                wobs[p].work_steps += 1;
            }
            workers[p].failed_steals = 0;
            ready_scratch.clear();
            let outcome = {
                let slot = slab.get(sid);
                arena
                    .get_mut(cid)
                    .execute_unit_into(&slot.job.dag, v, &mut ready_scratch)
                    .expect("current node claimed") // lint: allow(panicking) invariant: executed nodes were claimed by this cursor
            };
            match outcome {
                StepOutcome::InProgress => {}
                StepOutcome::NodeCompleted { job_completed } => {
                    workers[p].current = None;
                    let cursor = arena.get_mut(cid);
                    for &u in ready_scratch.iter() {
                        cursor.claim(u).expect("newly ready claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                        workers[p].pending.push((sid, u));
                    }
                    if job_completed {
                        arena.release(cid);
                        let slot = slab.retire(sid);
                        jobs_retired += 1;
                        live_admitted -= 1;
                        completed += 1;
                        let out = JobOutcome {
                            job: slot.job.id,
                            arrival: slot.job.arrival,
                            weight: slot.job.weight,
                            start_round: slot.started.expect("job admitted"), // lint: allow(panicking) invariant: start_round is recorded at admission, before execution
                            completion_round: round,
                            completion: speed.round_end(round),
                            flow: speed.flow_time(slot.job.arrival, round),
                            status: JobStatus::Completed,
                        };
                        max_flow = max_flow.max(out.flow);
                        sink(&out);
                    }
                }
            }
            if config.record_trace {
                row.push(Action::Work { job: jid, node: v });
            }
        }

        for w in &mut workers {
            for task in w.pending.drain(..) {
                w.deque.push_back(task);
            }
        }

        last_busy_round = round;
        if let Some(t) = trace.as_mut() {
            t.push_row(row);
        }
        round += 1;
    }

    let retire = RetirementStats {
        jobs_retired,
        live_jobs_high_water: slab.high_water,
        slab_slots: slab.slots.len() as u64,
        cursor_slots: arena.capacity() as u64,
    };
    if obs {
        for (p, o) in wobs.iter().enumerate() {
            rec.counter_at("ws.worker.work_steps", p, o.work_steps);
            rec.counter_at("ws.worker.steal_attempts", p, o.steal_attempts);
            rec.counter_at("ws.worker.successful_steals", p, o.successful_steals);
            rec.counter_at("ws.worker.failed_steal_rounds", p, o.failed_steal_rounds);
            rec.counter_at("ws.worker.admissions", p, o.admissions);
            rec.counter_at("ws.worker.idle_steps", p, o.idle_steps);
            rec.counter_at("ws.worker.max_failed_streak", p, o.max_failed_streak);
        }
        rec.counter("ws.work_steps", stats.work_steps);
        rec.counter("ws.steal_attempts", stats.steal_attempts);
        rec.counter("ws.successful_steals", stats.successful_steals);
        rec.counter("ws.admissions", stats.admissions);
        rec.counter("ws.idle_steps", stats.idle_steps);
        rec.gauge("ws.total_rounds", (last_busy_round + 1) as f64);
        rec.counter("ws.stream.jobs_retired", retire.jobs_retired);
        rec.counter(
            "ws.stream.live_jobs_high_water",
            retire.live_jobs_high_water,
        );
        rec.counter("ws.stream.slab_slots", retire.slab_slots);
        rec.counter("ws.stream.cursor_slots", retire.cursor_slots);
        if let Some(r) = retire.slab_reuse_ratio() {
            rec.gauge("ws.stream.slab_reuse_ratio", r);
        }
    }
    let summary = StreamSummary {
        m,
        speed,
        total_rounds: last_busy_round + 1,
        jobs: completed,
        stats,
        samples,
        max_flow,
        retire,
    };
    Ok((summary, trace))
}

/// Pop the next slot to admit: the front (FIFO) or the largest-weight
/// queued job (ties to the earlier arrival, i.e. the smaller job id) —
/// the slab-indexed mirror of `worksteal::pop_admission`.
fn pop_admission_slot(
    queue: &mut VecDeque<u32>,
    slab: &JobSlab,
    order: AdmissionOrder,
) -> Option<u32> {
    match order {
        AdmissionOrder::Fifo => queue.pop_front(),
        AdmissionOrder::ByWeight => {
            let best = queue
                .iter()
                .enumerate()
                .max_by_key(|&(_, &sid)| {
                    let job = &slab.get(sid).job;
                    (job.weight, std::cmp::Reverse(job.id))
                })?
                .0;
            queue.remove(best)
        }
    }
}

/// Admit the job in slot `sid` on worker `p`: the slab-indexed mirror of
/// `worksteal::admit_job`, which additionally records the start round in
/// the slot (the materialized engine keeps an O(n) `started` vector).
fn admit_slot(
    sid: u32,
    p: usize,
    slab: &mut JobSlab,
    workers: &mut [Worker],
    arena: &mut CursorArena,
    sources: &mut Vec<NodeId>,
    round: Round,
) {
    let slot = slab.get_mut(sid);
    let id = arena.alloc(&slot.job.dag);
    slot.cursor = Some(id);
    slot.started = Some(round);
    let cur = arena.get_mut(id);
    sources.clear();
    sources.extend_from_slice(cur.ready_nodes());
    for &s in sources.iter() {
        cur.claim(s).expect("source ready"); // lint: allow(panicking) invariant: freshly materialized source nodes are unclaimed
        workers[p].deque.push_back((sid, s));
    }
    let task = workers[p].deque.pop_back().expect("pushed sources"); // lint: allow(panicking) a source task was pushed just above; the deque is non-empty
    workers[p].current = Some(task);
    workers[p].failed_steals = 0;
}

/// Simulate a centralized priority scheduler over a [`JobStream`] —
/// the streaming counterpart of [`crate::run_priority`], bit-identical on
/// instance replays, O(active + m) live memory. Outcomes go to `sink` in
/// completion order; `config.faults` must be empty.
pub fn run_priority_stream<P: JobPriority, S: JobStream>(
    stream: &mut S,
    config: &SimConfig,
    policy: &P,
    sink: &mut dyn FnMut(&JobOutcome),
) -> Result<(StreamSummary, Option<ScheduleTrace>), StreamError> {
    run_priority_stream_observed(stream, config, policy, sink, &mut NullRecorder)
}

/// [`run_priority_stream`] with a [`Recorder`] attached: emits the same
/// `central.*` taxonomy as the materialized engine plus `central.stream.*`
/// retirement counters (no per-job `central.flow_ticks` samples — sample
/// from the sink).
pub fn run_priority_stream_observed<P: JobPriority, S: JobStream>(
    stream: &mut S,
    config: &SimConfig,
    policy: &P,
    sink: &mut dyn FnMut(&JobOutcome),
    rec: &mut dyn Recorder,
) -> Result<(StreamSummary, Option<ScheduleTrace>), StreamError> {
    let m = config.m;
    let speed = config.speed;
    if !config.faults.is_empty() {
        return Err(StreamError::FaultsUnsupported);
    }

    let mut arena = CursorArena::new();
    let mut slab = JobSlab::default();
    // Active jobs as (key, slot id), kept sorted ascending by key; keys
    // are computed from the slot's `Job` exactly like the materialized
    // engine's, so the order (and every tie-break) is identical.
    let mut active: Vec<((u64, u64, u32), u32)> = Vec::new();
    let mut claimed: Vec<(u32, JobId, NodeId)> = Vec::new();
    let mut ready_buf: Vec<NodeId> = Vec::new();
    let mut ready_scratch: Vec<NodeId> = Vec::new();
    let mut stats = EngineStats::default();
    let mut trace = config.record_trace.then(|| ScheduleTrace::new(m, speed));

    let obs = rec.enabled();
    let mut horizons: u64 = 0;
    let mut quiescent_jumps: u64 = 0;

    let mut puller = Puller::new(stream, 0)?;
    let mut released: u64 = 0;
    let mut completed: u64 = 0;
    let mut round: Round = 0;
    let mut last_busy_round: Round = 0;
    let mut max_flow = Rational::ZERO;
    let mut jobs_retired: u64 = 0;

    let cap = |last_arrival: Ticks, total_work: u64, produced: u64| -> Round {
        speed.first_round_at_or_after(last_arrival) + total_work + produced + 16
    };
    let mut safety_cap: Round = cap(puller.last_arrival, puller.total_work, puller.produced);

    while puller.pending.is_some() || completed < released {
        assert!(
            round <= safety_cap,
            "streaming centralized engine exceeded round cap"
        );

        // Activate arrivals visible at the start of this round.
        while let Some((jid, job)) = puller.pending.as_ref() {
            if !speed.arrived_by_round(job.arrival, round) {
                break;
            }
            let (jid, job) = (*jid, job.clone());
            let sid = slab.alloc(Slot {
                job: Job::weighted(jid, job.arrival, job.weight, job.dag),
                cursor: None,
                started: None,
            });
            {
                let slot = slab.get_mut(sid);
                slot.cursor = Some(arena.alloc(&slot.job.dag));
            }
            let key = policy.key(&slab.get(sid).job);
            let pos = active.partition_point(|&(k, _)| k < key);
            active.insert(pos, (key, sid));
            released += 1;
            puller.advance()?;
            safety_cap = cap(puller.last_arrival, puller.total_work, puller.produced);
        }

        if active.is_empty() {
            let (_, job) = puller
                .pending
                .as_ref()
                .expect("no active jobs but none left to arrive"); // lint: allow(panicking) invariant: loop condition guarantees a pending arrival when nothing is active
            let target = speed.first_round_at_or_after(job.arrival);
            debug_assert!(target > round);
            let gap = target - round;
            stats.idle_steps += gap * m as u64;
            if obs {
                quiescent_jumps += 1;
            }
            if let Some(t) = trace.as_mut() {
                t.push_idle_rounds(gap);
            }
            round = target;
            continue;
        }

        // Assignment phase: walk jobs in priority order, claim ready nodes.
        claimed.clear();
        let mut avail = m;
        for &(_, sid) in active.iter() {
            if avail == 0 {
                break;
            }
            let slot = slab.get(sid);
            let jid = slot.job.id;
            let cid = slot.cursor.expect("active job has cursor"); // lint: allow(panicking) invariant: every active job owns an arena cursor until completion
            let cursor = arena.get_mut(cid);
            ready_buf.clear();
            ready_buf.extend_from_slice(cursor.ready_nodes());
            ready_buf.sort_unstable();
            for &v in ready_buf.iter().take(avail) {
                cursor.claim(v).expect("ready node claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                claimed.push((sid, jid, v));
            }
            avail -= ready_buf.len().min(avail);
        }
        debug_assert!(!claimed.is_empty(), "active jobs must yield ready nodes");

        // Event horizon: the assignment repeats until a claimed node
        // completes or the pending job arrives, whichever is first.
        let mut delta: Round = claimed
            .iter()
            .map(|&(sid, _, v)| {
                let cid = slab.get(sid).cursor.expect("cursor"); // lint: allow(panicking) invariant: active jobs always own a cursor
                arena
                    .get(cid)
                    .remaining_work(v)
                    .expect("claimed node in range") // lint: allow(panicking) invariant: claimed nodes index this job DAG
            })
            .min()
            .expect("claimed non-empty"); // lint: allow(panicking) claim set verified non-empty above
        if let Some((_, job)) = puller.pending.as_ref() {
            delta = delta.min(speed.first_round_at_or_after(job.arrival) - round);
        }
        debug_assert!(delta >= 1);
        let last = round + delta - 1;

        for &(sid, _, v) in claimed.iter() {
            let cid = slab.get(sid).cursor.expect("cursor"); // lint: allow(panicking) invariant: active jobs always own a cursor
            slab.get_mut(sid).started.get_or_insert(round);
            ready_scratch.clear();
            let outcome = {
                let slot = slab.get(sid);
                arena
                    .get_mut(cid)
                    .execute_units(&slot.job.dag, v, delta, &mut ready_scratch)
                    .expect("claimed node executes") // lint: allow(panicking) invariant: execute targets were claimed this round
            };
            match outcome {
                StepOutcome::InProgress => {
                    arena
                        .get_mut(cid)
                        .release(v)
                        .expect("in-progress node releases"); // lint: allow(panicking) invariant: release follows the successful claim above
                }
                StepOutcome::NodeCompleted { job_completed } => {
                    if job_completed {
                        arena.release(cid);
                        let pos = active
                            .iter()
                            .position(|&(_, s)| s == sid)
                            .expect("completed job was active"); // lint: allow(panicking) invariant: a completing job sits in the active list exactly once
                        active.remove(pos);
                        let slot = slab.retire(sid);
                        jobs_retired += 1;
                        completed += 1;
                        let out = JobOutcome {
                            job: slot.job.id,
                            arrival: slot.job.arrival,
                            weight: slot.job.weight,
                            start_round: slot.started.expect("job executed"), // lint: allow(panicking) invariant: start_round is recorded before any execution
                            completion_round: last,
                            completion: speed.round_end(last),
                            flow: speed.flow_time(slot.job.arrival, last),
                            status: JobStatus::Completed,
                        };
                        max_flow = max_flow.max(out.flow);
                        sink(&out);
                    }
                }
            }
        }

        stats.work_steps += delta * claimed.len() as u64;
        stats.idle_steps += delta * (m - claimed.len()) as u64;
        if obs {
            horizons += 1;
        }
        last_busy_round = last;

        if let Some(t) = trace.as_mut() {
            let mut row: Vec<Action> = claimed
                .iter()
                .map(|&(_, job, node)| Action::Work { job, node })
                .collect();
            row.resize(m, Action::Idle);
            for _ in 1..delta {
                t.push_row(row.clone());
            }
            t.push_row(row);
        }

        round += delta;
    }

    let retire = RetirementStats {
        jobs_retired,
        live_jobs_high_water: slab.high_water,
        slab_slots: slab.slots.len() as u64,
        cursor_slots: arena.capacity() as u64,
    };
    if obs {
        rec.counter("central.work_steps", stats.work_steps);
        rec.counter("central.idle_steps", stats.idle_steps);
        rec.counter("central.event_horizons", horizons);
        rec.counter("central.quiescent_jumps", quiescent_jumps);
        rec.gauge("central.total_rounds", (last_busy_round + 1) as f64);
        rec.counter("central.stream.jobs_retired", retire.jobs_retired);
        rec.counter(
            "central.stream.live_jobs_high_water",
            retire.live_jobs_high_water,
        );
        rec.counter("central.stream.slab_slots", retire.slab_slots);
        rec.counter("central.stream.cursor_slots", retire.cursor_slots);
        if let Some(r) = retire.slab_reuse_ratio() {
            rec.gauge("central.stream.slab_reuse_ratio", r);
        }
    }
    let summary = StreamSummary {
        m,
        speed,
        total_rounds: last_busy_round + 1,
        jobs: completed,
        stats,
        samples: Vec::new(),
        max_flow,
        retire,
    };
    Ok((summary, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::Fifo;
    use parflow_dag::shapes;

    fn inst_seq(arrivals_works: &[(u64, u64)]) -> Instance {
        Instance::new(
            arrivals_works
                .iter()
                .enumerate()
                .map(|(i, &(a, w))| Job::new(i as u32, a, Arc::new(shapes::single_node(w))))
                .collect(),
        )
    }

    #[test]
    fn replay_matches_materialized_worksteal() {
        let inst = inst_seq(&[(0, 7), (0, 3), (4, 9), (10, 1), (10, 6)]);
        let cfg = SimConfig::new(2);
        let (batch, _) = crate::run_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 2 }, 9);
        let mut outs = Vec::new();
        let mut replay = InstanceReplay::new(&inst);
        let (sum, _) = run_worksteal_stream(
            &mut replay,
            &cfg,
            StealPolicy::StealKFirst { k: 2 },
            9,
            &mut |o| outs.push(o.clone()),
        )
        .expect("streams cleanly");
        assert_eq!(sum.stats, batch.stats);
        assert_eq!(sum.total_rounds, batch.total_rounds);
        assert_eq!(sum.max_flow, batch.max_flow());
        assert_eq!(sum.jobs, inst.len() as u64);
        // Outcomes arrive in completion order; compare as sets keyed by id.
        outs.sort_by_key(|o| o.job);
        assert_eq!(outs, batch.outcomes);
    }

    #[test]
    fn replay_matches_materialized_centralized() {
        let inst = inst_seq(&[(0, 5), (2, 2), (2, 8), (9, 4)]);
        let cfg = SimConfig::new(3);
        let (batch, _) = crate::run_priority(&inst, &cfg, &Fifo);
        let mut outs = Vec::new();
        let mut replay = InstanceReplay::new(&inst);
        let (sum, _) = run_priority_stream(&mut replay, &cfg, &Fifo, &mut |o| outs.push(o.clone()))
            .expect("streams cleanly");
        assert_eq!(sum.stats, batch.stats);
        assert_eq!(sum.total_rounds, batch.total_rounds);
        assert_eq!(sum.max_flow, batch.max_flow());
        outs.sort_by_key(|o| o.job);
        assert_eq!(outs, batch.outcomes);
    }

    #[test]
    fn empty_stream_is_one_idle_round() {
        let inst = Instance::new(Vec::new());
        let mut replay = InstanceReplay::new(&inst);
        let (sum, _) = run_worksteal_stream(
            &mut replay,
            &SimConfig::new(2),
            StealPolicy::AdmitFirst,
            1,
            &mut |_| {},
        )
        .expect("empty stream is fine");
        assert_eq!(sum.total_rounds, 1);
        assert_eq!(sum.jobs, 0);
        assert_eq!(sum.max_flow, Rational::ZERO);
        assert_eq!(sum.retire, RetirementStats::default());
    }

    #[test]
    fn slab_recycles_slots() {
        // Jobs spaced far apart: at most one is ever live, so the slab
        // should end with exactly one slot regardless of job count.
        let inst = inst_seq(&[(0, 3), (100, 3), (200, 3), (300, 3)]);
        let mut replay = InstanceReplay::new(&inst);
        let (sum, _) = run_worksteal_stream(
            &mut replay,
            &SimConfig::new(2),
            StealPolicy::AdmitFirst,
            5,
            &mut |_| {},
        )
        .expect("streams cleanly");
        assert_eq!(sum.retire.jobs_retired, 4);
        assert_eq!(sum.retire.live_jobs_high_water, 1);
        assert_eq!(sum.retire.slab_slots, 1);
        assert_eq!(sum.retire.cursor_slots, 1);
        assert_eq!(sum.retire.slab_reuse_ratio(), Some(0.75));
    }

    #[test]
    fn too_many_jobs_is_checked_at_the_boundary() {
        // Stream 5 jobs with ids starting 3 below u32::MAX: the 4th pull
        // would need id 2^32 and must fail before any materialization.
        let inst = inst_seq(&[(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)]);
        let mut replay = InstanceReplay::new(&inst);
        let err = run_worksteal_stream_with_base(
            &mut replay,
            &SimConfig::new(1),
            StealPolicy::AdmitFirst,
            1,
            &mut |_| {},
            &mut NullRecorder,
            u32::MAX as u64 - 2,
        )
        .expect_err("id space must overflow");
        assert_eq!(err, StreamError::TooManyJobs(u32::MAX as u64 + 1));
    }

    #[test]
    fn unsorted_stream_is_rejected() {
        struct Unsorted(u32);
        impl JobStream for Unsorted {
            fn next_job(&mut self) -> Option<StreamedJob> {
                self.0 += 1;
                (self.0 <= 2).then(|| StreamedJob {
                    arrival: if self.0 == 1 { 10 } else { 5 },
                    weight: 1,
                    dag: Arc::new(shapes::single_node(1)),
                })
            }
        }
        let err = run_worksteal_stream(
            &mut Unsorted(0),
            &SimConfig::new(1),
            StealPolicy::AdmitFirst,
            1,
            &mut |_| {},
        )
        .expect_err("unsorted arrivals must be rejected");
        assert_eq!(err, StreamError::UnsortedArrivals { index: 1 });
    }

    #[test]
    fn faulty_config_is_rejected() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan {
            panic_ppm: 1,
            ..Default::default()
        };
        let cfg = SimConfig::new(2).with_faults(plan);
        let inst = inst_seq(&[(0, 1)]);
        let mut replay = InstanceReplay::new(&inst);
        let err = run_worksteal_stream(&mut replay, &cfg, StealPolicy::AdmitFirst, 1, &mut |_| {})
            .expect_err("fault plans unsupported");
        assert_eq!(err, StreamError::FaultsUnsupported);
    }

    #[test]
    fn opt_tap_tracks_batch_bound() {
        let inst = inst_seq(&[(0, 6), (1, 2), (5, 4)]);
        let m = 2;
        let mut tap = OptTap::new(InstanceReplay::new(&inst), m);
        let (_, _) = run_worksteal_stream(
            &mut tap,
            &SimConfig::new(m),
            StealPolicy::AdmitFirst,
            3,
            &mut |_| {},
        )
        .expect("streams cleanly");
        assert_eq!(tap.opt().opt_max_flow(), crate::opt_max_flow(&inst, m));
        assert_eq!(
            tap.opt().combined_lower_bound(),
            crate::combined_lower_bound(&inst, m)
        );
    }
}
