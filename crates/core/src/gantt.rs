//! ASCII Gantt rendering of schedule traces — one row per processor, one
//! column per round — for debugging schedulers and for documentation.

use crate::trace::{Action, ScheduleTrace};
use parflow_dag::JobId;
use parflow_time::Round;
use std::fmt::Write as _;

/// Symbol assigned to a job: letters cycle a–z then A–Z.
fn job_symbol(job: JobId) -> char {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    ALPHA[(job as usize) % ALPHA.len()] as char
}

/// Render rounds `[from, to)` of a trace as an ASCII Gantt chart.
///
/// Symbols: a letter = working on that job (letters cycle per job id),
/// `*` = steal attempt, `+` = admission, `.` = idle. A header row marks
/// every tenth round; a legend lists the jobs appearing in the window.
///
/// Intended for small windows (`to − from` up to ~120 columns).
pub fn render_gantt(trace: &ScheduleTrace, from: Round, to: Round) -> String {
    let num_rounds = trace.num_rounds() as usize;
    let from = (from as usize).min(num_rounds);
    let to = (to as usize).clamp(from, num_rounds);
    let width = to - from;
    let mut out = String::new();

    // Header: round ruler.
    let _ = write!(out, "{:>5} ", "round");
    for r in from..to {
        out.push(if r % 10 == 0 { '|' } else { ' ' });
    }
    out.push('\n');

    // Materialize the window once (the trace stores idle stretches
    // run-length encoded; `rounds()` yields `None` for idle rounds).
    let window: Vec<Option<&[Action]>> = trace.rounds().skip(from).take(to - from).collect();

    let mut seen: Vec<JobId> = Vec::new();
    for p in 0..trace.m {
        let _ = write!(out, "  P{p:<3} ");
        for row in &window {
            let c = match row.and_then(|r| r.get(p)) {
                Some(Action::Work { job, .. }) => {
                    if !seen.contains(job) {
                        seen.push(*job);
                    }
                    job_symbol(*job)
                }
                Some(Action::Steal { .. }) => '*',
                Some(Action::Admit { job }) => {
                    if !seen.contains(job) {
                        seen.push(*job);
                    }
                    '+'
                }
                Some(Action::Idle) | None => '.',
            };
            out.push(c);
        }
        out.push('\n');
    }

    // Legend.
    seen.sort_unstable();
    let _ = write!(out, "  jobs:");
    for job in seen {
        let _ = write!(out, " {}=J{}", job_symbol(job), job);
    }
    let _ = writeln!(out, "   (*=steal  .=idle)  rounds {from}..{}", to);
    let _ = width;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{run_priority, Fifo};
    use crate::config::SimConfig;
    use crate::worksteal::{run_worksteal, StealPolicy};
    use parflow_dag::{shapes, Instance, Job};
    use std::sync::Arc;

    fn small_instance() -> Instance {
        let dag = Arc::new(shapes::diamond(3, 2));
        Instance::new(
            (0..3)
                .map(|i| Job::new(i, i as u64 * 2, dag.clone()))
                .collect(),
        )
    }

    #[test]
    fn fifo_gantt_shows_jobs_and_ruler() {
        let inst = small_instance();
        let (_, t) = run_priority(&inst, &SimConfig::new(2).with_trace(), &Fifo);
        let g = render_gantt(&t.unwrap(), 0, 40);
        assert!(g.contains("P0"));
        assert!(g.contains("P1"));
        assert!(g.contains('a'), "job 0 symbol missing:\n{g}");
        assert!(g.contains("a=J0"));
        assert!(g.contains("round"));
    }

    #[test]
    fn ws_gantt_shows_steals() {
        let inst = small_instance();
        let (_, t) = run_worksteal(
            &inst,
            &SimConfig::new(3).with_trace(),
            StealPolicy::StealKFirst { k: 2 },
            5,
        );
        let g = render_gantt(&t.unwrap(), 0, 60);
        assert!(g.contains('*'), "expected steal symbols:\n{g}");
    }

    #[test]
    fn window_clamps() {
        let inst = small_instance();
        let (_, t) = run_priority(&inst, &SimConfig::new(1).with_trace(), &Fifo);
        let t = t.unwrap();
        let g = render_gantt(&t, 10_000, 20_000);
        // Degenerate window: still renders rows and legend without panic.
        assert!(g.contains("P0"));
        let g2 = render_gantt(&t, 5, 2);
        assert!(g2.contains("P0"));
    }

    #[test]
    fn symbols_cycle() {
        assert_eq!(job_symbol(0), 'a');
        assert_eq!(job_symbol(25), 'z');
        assert_eq!(job_symbol(26), 'A');
        assert_eq!(job_symbol(52), 'a');
    }
}
