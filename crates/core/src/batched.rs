//! Batched-replica work-stealing engine: structure-of-arrays hot state,
//! `u64`-word bitset idle tracking and a calendar queue of completion
//! events, stepping B independent replicas per pass.
//!
//! Replica sweeps (seed variance, confidence intervals, phase diagrams)
//! run the same instance under many `(config, policy, seed)` triples. The
//! sequential engine rebuilds all engine state per replica and steps
//! per-round even through forced spans; [`run_batched`] instead keeps B
//! *lanes* of reusable engine state (cursor arena, deques, SoA worker
//! columns, scratch) and round-robins bursts of steps across them, so
//! buffer capacity warmed up by one replica is recycled by the next and
//! per-round bookkeeping runs over flat `u64`/`u32` columns instead of an
//! array of worker structs.
//!
//! **Bit-identical by construction.** Replicas are fully independent: each
//! keeps its own seeded [`SmallRng`], its own columns and its own arena, so
//! interleaving their steps cannot change any replica's schedule. The lane
//! stepper is a faithful port of the fault-free sequential loop — same
//! acquisition order, same admission rule, same Lemire victim sampling,
//! same deferred deque publication — plus two strictly-behavior-preserving
//! accelerations:
//!
//! * the event-window fast paths read the earliest next completion from a
//!   [`CalendarQueue`](crate::CalendarQueue) maintained at work
//!   acquisition/completion, instead of scanning all `m` workers per
//!   window — O(events), not O(m · windows), which is what makes m = 256
//!   and 1024 tractable;
//! * a new *k-burn window* (unit-step steals, nothing stealable, global
//!   queue non-empty, every idle worker below its admission threshold)
//!   bulk-replays the forced failed-steal rounds that the sequential
//!   engine steps one by one: the span is capped so no admission, arrival
//!   or completion falls inside it, and the burned RNG draws land on the
//!   stream in exactly the positions the per-round loop would use (see
//!   `burn_uniform_draws`).
//!
//! `tests/engine_differential.rs` pins batched-vs-sequential lockstep —
//! outcomes, stats, samples *and* `ScheduleTrace` — across mixed configs,
//! batch widths and m = 256.
//!
//! Replicas whose config carries a non-empty fault plan are delegated to
//! the sequential engine (faults are incompatible with the window fast
//! paths, exactly as in `run_worksteal`'s own `fast_ok` gate); the results
//! are identical either way.

use crate::calendar::CalendarQueue;
use crate::config::{SimConfig, StealAmount, StealCost, VictimStrategy};
use crate::fault::JobStatus;
use crate::result::{BacklogSample, EngineStats, JobOutcome, SimResult};
use crate::trace::{Action, ScheduleTrace};
use crate::worksteal::{
    advance_scan, burn_uniform_draws, gen_uniform_below, pop_admission, run_worksteal, StealPolicy,
};
use parflow_dag::{CursorArena, CursorId, Instance, Job, JobId, NodeId, StepOutcome};
use parflow_time::Round;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// One replica of a batched run: a simulation config, a steal policy and
/// the seed of the replica's private victim-selection RNG stream.
#[derive(Clone, Debug)]
pub struct ReplicaSpec {
    /// Simulation configuration (machine size, speed, steal model, …).
    pub config: SimConfig,
    /// Admission policy.
    pub policy: StealPolicy,
    /// Seed of this replica's RNG stream; the replica's schedule is
    /// bit-identical to `run_worksteal(instance, &config, policy, seed)`.
    pub seed: u64,
}

impl ReplicaSpec {
    /// Convenience constructor.
    pub fn new(config: SimConfig, policy: StealPolicy, seed: u64) -> Self {
        ReplicaSpec {
            config,
            policy,
            seed,
        }
    }
}

/// Sentinel for "no current task" in the SoA `cur_job` column.
const NONE: u32 = u32::MAX;

/// Steps per lane per scheduling pass: large enough to amortize the lane
/// switch, small enough that a batch of lanes still interleaves.
const BURST: u32 = 256;

/// Fixed-size bitset over workers, one `u64` word per 64 workers.
///
/// The batched engine's idle/victim bookkeeping is all "which workers are
/// busy" / "which deques are non-empty" queries; at m = 256/1024 word-wide
/// popcounts and scans replace the per-worker walks that dominate the
/// sequential engine's window setup.
#[derive(Debug, Default)]
struct BitWords {
    words: Vec<u64>,
}

impl BitWords {
    fn reset(&mut self, m: usize) {
        self.words.clear();
        self.words.resize(m.div_ceil(64), 0);
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    #[inline]
    fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    #[inline]
    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Visit set bits in ascending index order.
    #[inline]
    fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f((wi << 6) | b);
                w &= w - 1;
            }
        }
    }

    /// Visit clear bits `< m` in ascending index order.
    #[inline]
    fn for_each_clear(&self, m: usize, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let base = wi << 6;
            let valid = if m - base >= 64 {
                u64::MAX
            } else {
                (1u64 << (m - base)) - 1
            };
            let mut w = !word & valid;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f(base | b);
                w &= w - 1;
            }
        }
    }
}

/// One lane: reusable engine storage plus the scalars of the replica
/// currently running in it. Buffers (arena slots, deque rings, columns)
/// keep their capacity across replicas, so only the first replica of a
/// sweep pays warm-up allocations.
struct Lane {
    // Reusable storage.
    arena: CursorArena,
    deques: Vec<VecDeque<(JobId, NodeId)>>,
    cur_job: Vec<u32>,
    cur_node: Vec<NodeId>,
    failed_steals: Vec<u64>,
    scan_next: Vec<usize>,
    busy: BitWords,
    deque_ne: BitWords,
    calendar: CalendarQueue,
    pending: Vec<(u32, JobId, NodeId)>,
    newly_busy: Vec<u32>,
    ready_scratch: Vec<NodeId>,
    sources_scratch: Vec<NodeId>,
    cursor_ids: Vec<Option<CursorId>>,
    outcomes: Vec<Option<JobOutcome>>,
    started: Vec<Option<Round>>,
    global_queue: VecDeque<JobId>,
    // Per-replica scalars.
    cfg: SimConfig,
    policy: StealPolicy,
    k: u32,
    rng: SmallRng,
    stats: EngineStats,
    samples: Vec<BacklogSample>,
    trace: Option<ScheduleTrace>,
    next_arrival: usize,
    completed: usize,
    live_admitted: usize,
    round: Round,
    last_busy_round: Round,
    safety_cap: Round,
    fast_ok: bool,
    done: bool,
}

impl Lane {
    fn new() -> Self {
        Lane {
            arena: CursorArena::new(),
            deques: Vec::new(),
            cur_job: Vec::new(),
            cur_node: Vec::new(),
            failed_steals: Vec::new(),
            scan_next: Vec::new(),
            busy: BitWords::default(),
            deque_ne: BitWords::default(),
            calendar: CalendarQueue::new(),
            pending: Vec::new(),
            newly_busy: Vec::new(),
            ready_scratch: Vec::new(),
            sources_scratch: Vec::new(),
            cursor_ids: Vec::new(),
            outcomes: Vec::new(),
            started: Vec::new(),
            global_queue: VecDeque::new(),
            cfg: SimConfig::new(1),
            policy: StealPolicy::AdmitFirst,
            k: 0,
            rng: SmallRng::seed_from_u64(0),
            stats: EngineStats::default(),
            samples: Vec::new(),
            trace: None,
            next_arrival: 0,
            completed: 0,
            live_admitted: 0,
            round: 0,
            last_busy_round: 0,
            safety_cap: 0,
            fast_ok: false,
            done: false,
        }
    }

    /// Reset the lane for a fresh replica, reusing every buffer's capacity.
    fn start(&mut self, instance: &Instance, spec: &ReplicaSpec) {
        let n = instance.len();
        let m = spec.config.m;
        debug_assert!(
            spec.config.faults.is_empty(),
            "fault replicas are delegated"
        );
        self.cfg = spec.config.clone();
        self.policy = spec.policy;
        self.k = spec.policy.k();
        self.rng = SmallRng::seed_from_u64(spec.seed);

        self.deques.resize_with(m, VecDeque::new);
        for d in &mut self.deques {
            d.clear();
        }
        self.cur_job.clear();
        self.cur_job.resize(m, NONE);
        self.cur_node.clear();
        self.cur_node.resize(m, 0);
        self.failed_steals.clear();
        self.failed_steals.resize(m, 0);
        self.scan_next.clear();
        self.scan_next.extend(1..=m);
        self.busy.reset(m);
        self.deque_ne.reset(m);
        self.calendar.clear();
        self.pending.clear();
        self.newly_busy.clear();
        self.cursor_ids.clear();
        self.cursor_ids.resize(n, None);
        self.outcomes.clear();
        self.outcomes.resize(n, None);
        self.started.clear();
        self.started.resize(n, None);
        self.global_queue.clear();
        self.arena.recycle_all();

        self.stats = EngineStats::default();
        self.samples = Vec::new();
        self.trace = self
            .cfg
            .record_trace
            .then(|| ScheduleTrace::new(m, self.cfg.speed));
        self.next_arrival = 0;
        self.completed = 0;
        self.live_admitted = 0;
        self.round = 0;
        self.last_busy_round = 0;
        // Same cap as the sequential engine's empty-fault branch.
        self.safety_cap = self
            .cfg
            .speed
            .first_round_at_or_after(instance.last_arrival())
            + instance.total_work()
            + (self.k as Round + 2) * (n as Round + m as Round)
            + 64;
        self.fast_ok = !self.cfg.record_trace;
        self.done = n == 0;
    }

    /// Detach the finished replica's result from the lane.
    fn finish(&mut self) -> (SimResult, Option<ScheduleTrace>) {
        debug_assert!(self.done);
        let outcomes: Vec<JobOutcome> = self
            .outcomes
            .drain(..)
            .map(|o| o.expect("all jobs completed")) // lint: allow(panicking) invariant: a lane is done only after every job completed
            .collect();
        let result = SimResult {
            m: self.cfg.m,
            speed: self.cfg.speed,
            total_rounds: self.last_busy_round + 1,
            outcomes,
            stats: self.stats,
            samples: std::mem::take(&mut self.samples),
            fault_events: Vec::new(),
        };
        (result, self.trace.take())
    }

    /// Admit job `jid` on worker `p` (exact port of the sequential
    /// `admit_job` + its call-site bookkeeping).
    fn admit(&mut self, jid: JobId, p: usize, jobs: &[Job]) {
        let job = &jobs[jid as usize];
        let id = self.arena.alloc(&job.dag);
        self.cursor_ids[jid as usize] = Some(id);
        let cur = self.arena.get_mut(id);
        self.sources_scratch.clear();
        self.sources_scratch.extend_from_slice(cur.ready_nodes());
        for &s in self.sources_scratch.iter() {
            cur.claim(s).expect("source ready"); // lint: allow(panicking) invariant: freshly materialized source nodes are unclaimed
            self.deques[p].push_back((jid, s));
        }
        let task = self.deques[p].pop_back().expect("pushed sources"); // lint: allow(panicking) a source task was pushed just above; the deque is non-empty
        self.cur_job[p] = task.0;
        self.cur_node[p] = task.1;
        self.busy.set(p);
        self.newly_busy.push(p as u32); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
        self.failed_steals[p] = 0;
        if self.deques[p].is_empty() {
            self.deque_ne.clear(p);
        } else {
            self.deque_ne.set(p);
        }
        self.started[jid as usize] = Some(self.round);
        self.live_admitted += 1;
        self.stats.admissions += 1;
    }

    /// One steal attempt by worker `p` (port of the sequential
    /// `steal_into`; no blackholes in batched mode).
    #[inline]
    fn steal_into(&mut self, p: usize) -> bool {
        let m = self.cfg.m;
        if m <= 1 {
            return false;
        }
        let victim = match self.cfg.victim {
            VictimStrategy::Uniform => {
                let mut v = gen_uniform_below(&mut self.rng, m - 1);
                if v >= p {
                    v += 1;
                }
                v
            }
            VictimStrategy::RoundRobinScan => {
                let mut v = self.scan_next[p] % m;
                if v == p {
                    v = (v + 1) % m;
                }
                self.scan_next[p] = (v + 1) % m;
                v
            }
        };
        if let Some(task) = self.deques[victim].pop_front() {
            self.cur_job[p] = task.0;
            self.cur_node[p] = task.1;
            self.busy.set(p);
            self.newly_busy.push(p as u32); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
            if self.cfg.steal_amount == StealAmount::Half {
                let extra = (self.deques[victim].len() + 1).div_ceil(2) - 1;
                for _ in 0..extra {
                    let t = self.deques[victim].pop_front().expect("len checked"); // lint: allow(panicking) emptiness checked immediately above; pop cannot fail
                    self.deques[p].push_back(t);
                }
                if extra > 0 {
                    self.deque_ne.set(p);
                }
            }
            if self.deques[victim].is_empty() {
                self.deque_ne.clear(victim);
            }
            true
        } else {
            false
        }
    }

    /// Consume the per-attempt state of `count` failing steal attempts by
    /// worker `p` (port of the sequential `burn_failed_attempts`).
    #[inline]
    fn burn_failed(&mut self, p: usize, count: u64) {
        let m = self.cfg.m;
        if m <= 1 {
            return;
        }
        match self.cfg.victim {
            VictimStrategy::Uniform => burn_uniform_draws(&mut self.rng, m, count),
            VictimStrategy::RoundRobinScan => {
                self.scan_next[p] = advance_scan(self.scan_next[p], p, m, count);
            }
        }
    }

    /// Execute one unit of worker `p`'s current task; returns the action
    /// for the trace row.
    fn execute_unit(&mut self, p: usize, jobs: &[Job]) -> Action {
        let jid = self.cur_job[p];
        let v = self.cur_node[p];
        let job = &jobs[jid as usize];
        let cid = self.cursor_ids[jid as usize].expect("admitted job"); // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
        self.stats.work_steps += 1;
        self.failed_steals[p] = 0;
        self.ready_scratch.clear();
        let cursor = self.arena.get_mut(cid);
        match cursor
            .execute_unit_into(&job.dag, v, &mut self.ready_scratch)
            .expect("current node claimed") // lint: allow(panicking) invariant: executed nodes were claimed by this cursor
        {
            StepOutcome::InProgress => {}
            StepOutcome::NodeCompleted { job_completed } => {
                self.cur_job[p] = NONE;
                self.busy.clear(p);
                // The completing worker's calendar event names this round;
                // absent only if the node was acquired this same round.
                self.calendar.remove(self.round, p as u32); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
                let cursor = self.arena.get_mut(cid);
                for i in 0..self.ready_scratch.len() {
                    let u = self.ready_scratch[i];
                    cursor.claim(u).expect("newly ready claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                    self.pending.push((p as u32, jid, u)); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
                }
                if job_completed {
                    self.arena
                        .release(self.cursor_ids[jid as usize].take().expect("cursor id")); // lint: allow(panicking) invariant: completion releases exactly the cursor admission installed
                    self.live_admitted -= 1;
                    self.completed += 1;
                    self.outcomes[jid as usize] = Some(JobOutcome {
                        job: jid,
                        arrival: job.arrival,
                        weight: job.weight,
                        start_round: self.started[jid as usize].expect("job admitted"), // lint: allow(panicking) invariant: start_round is recorded at admission, before execution
                        completion_round: self.round,
                        completion: self.cfg.speed.round_end(self.round),
                        flow: self.cfg.speed.flow_time(job.arrival, self.round),
                        status: JobStatus::Completed,
                    });
                }
            }
        }
        Action::Work { job: jid, node: v }
    }

    /// Flush deferred deque pushes and publish calendar events for workers
    /// that acquired a node during this step and still hold it.
    fn end_of_round(&mut self) {
        for i in 0..self.pending.len() {
            let (p, jid, u) = self.pending[i];
            self.deques[p as usize].push_back((jid, u));
            self.deque_ne.set(p as usize);
        }
        self.pending.clear();
        for i in 0..self.newly_busy.len() {
            let p = self.newly_busy[i] as usize;
            let jid = self.cur_job[p];
            if jid != NONE {
                let rem = self
                    .arena
                    .get(self.cursor_ids[jid as usize].expect("admitted job")) // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
                    .remaining_work(self.cur_node[p])
                    .expect("current node in range"); // lint: allow(panicking) invariant: cursors only hold nodes of their own DAG
                                                      // `round + remaining` is invariant while the worker stays on
                                                      // the node (one unit per round), so the key is exact.
                self.calendar.push(self.round + rem, p as u32); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
            }
        }
        self.newly_busy.clear();
    }

    /// Advance the replica by one event: a quiescent jump, an event
    /// window, or one explicit round.
    fn step(&mut self, instance: &Instance) {
        let jobs = instance.jobs();
        let n = jobs.len();
        let m = self.cfg.m;
        let speed = self.cfg.speed;

        assert!(
            self.round <= self.safety_cap,
            "batched work-stealing engine exceeded round cap"
        );

        // Release arrivals into the global FIFO queue.
        while self.next_arrival < n
            && speed.arrived_by_round(jobs[self.next_arrival].arrival, self.round)
        {
            self.global_queue.push_back(jobs[self.next_arrival].id);
            self.next_arrival += 1;
        }

        if self.cfg.sample_every > 0 && self.round.is_multiple_of(self.cfg.sample_every) {
            self.samples.push(BacklogSample {
                round: self.round,
                queued: self.global_queue.len(),
                live: self.live_admitted,
                deque_tasks: self.deques.iter().map(|d| d.len()).sum::<usize>(),
            });
        }

        // Quiescent fast-forward (port of the sequential path; no fault
        // boundaries can clamp the jump in batched mode).
        if self.live_admitted == 0 && self.global_queue.is_empty() {
            debug_assert!(
                self.next_arrival < n,
                "deadlock: nothing live, nothing queued"
            );
            let target = speed.first_round_at_or_after(jobs[self.next_arrival].arrival);
            debug_assert!(target > self.round, "fast-forward must move time forward");
            let gap = target - self.round;
            self.stats.idle_steps += gap * m as u64;
            for f in &mut self.failed_steals {
                *f = f.saturating_add(gap);
            }
            if self.cfg.sample_every > 0 {
                let se = self.cfg.sample_every;
                let mut s = (self.round / se + 1) * se;
                while s < target {
                    self.samples.push(BacklogSample {
                        round: s,
                        queued: 0,
                        live: 0,
                        deque_tasks: 0,
                    });
                    s += se;
                }
            }
            if let Some(t) = self.trace.as_mut() {
                t.push_idle_rounds(gap);
            }
            self.round = target;
            if self.completed >= n {
                self.done = true;
            }
            return;
        }

        // Event-window fast paths. Case A/B mirror the sequential engine
        // (all busy, or idle workers provably cannot acquire anything);
        // case C is the batched engine's k-burn window. The earliest
        // completion comes from the calendar queue instead of an O(m)
        // worker scan.
        'window: {
            if !self.fast_ok {
                break 'window;
            }
            let arrival_cap = if self.next_arrival < n {
                speed.first_round_at_or_after(jobs[self.next_arrival].arrival) - self.round
            } else {
                u64::MAX
            };
            if arrival_cap < 2 {
                break 'window;
            }
            let busy = self.busy.count();
            debug_assert_eq!(busy, self.calendar.len(), "one event per busy worker");
            let min_rem = if busy == 0 {
                u64::MAX
            } else {
                match self.calendar.peek_min(self.round) {
                    // key = last execution round of the earliest-finishing
                    // current node, so remaining = key − round + 1.
                    Some(key) => key - self.round + 1,
                    None => u64::MAX,
                }
            };
            if busy > 0 && min_rem < 2 {
                break 'window;
            }
            let deques_empty = !self.deque_ne.any();
            let queue_empty = self.global_queue.is_empty();
            // Case A: everyone busy. Case B: idle workers can acquire
            // nothing (queue and all deques empty ⇒ every steal fails).
            let eligible_ab = busy > 0 && (busy == m || (queue_empty && deques_empty));
            // Case C (k-burn): unit-step steals, nothing stealable, queue
            // non-empty, and every idle worker still below its admission
            // threshold — each idle round is a forced failed steal.
            let mut steal_cap = u64::MAX;
            let eligible_c = !eligible_ab
                && deques_empty
                && !queue_empty
                && busy < m
                && self.cfg.steal_cost == StealCost::UnitStep
                && matches!(self.policy, StealPolicy::StealKFirst { .. })
                && {
                    let k = self.k as u64;
                    let mut ok = true;
                    self.busy.for_each_clear(m, |p| {
                        let f = self.failed_steals[p];
                        if f >= k {
                            ok = false;
                        } else {
                            steal_cap = steal_cap.min(k - f);
                        }
                    });
                    ok
                };
            if !(eligible_ab || eligible_c) {
                break 'window;
            }
            let delta = min_rem.min(arrival_cap).min(steal_cap);
            if delta < 2 {
                break 'window;
            }
            let last = self.round + delta - 1;
            if self.cfg.sample_every > 0 {
                let se = self.cfg.sample_every;
                let queued = self.global_queue.len();
                let deque_tasks = self.deques.iter().map(|d| d.len()).sum::<usize>();
                let mut s = (self.round / se + 1) * se;
                while s <= last {
                    self.samples.push(BacklogSample {
                        round: s,
                        queued,
                        live: self.live_admitted,
                        deque_tasks,
                    });
                    s += se;
                }
            }
            if busy < m {
                debug_assert!(deques_empty);
                let per_round: u64 = match self.cfg.steal_cost {
                    StealCost::UnitStep => 1,
                    StealCost::Free => {
                        if self.k == 0 {
                            2 * m as u64
                        } else {
                            self.k as u64
                        }
                    }
                };
                let idle = (m - busy) as u64;
                self.stats.steal_attempts += delta * per_round * idle;
                // `m == 1` burns no per-attempt state, mirroring the
                // sequential `burn_failed_attempts` early return.
                if m > 1 {
                    match self.cfg.victim {
                        VictimStrategy::Uniform => {
                            burn_uniform_draws(&mut self.rng, m, delta * per_round * idle);
                        }
                        VictimStrategy::RoundRobinScan => {
                            for p in 0..m {
                                if self.cur_job[p] == NONE {
                                    self.scan_next[p] =
                                        advance_scan(self.scan_next[p], p, m, delta * per_round);
                                }
                            }
                        }
                    }
                }
                match self.cfg.steal_cost {
                    StealCost::UnitStep => {
                        for p in 0..m {
                            if self.cur_job[p] == NONE {
                                self.failed_steals[p] = self.failed_steals[p].saturating_add(delta);
                            }
                        }
                    }
                    StealCost::Free => {
                        self.stats.idle_steps += delta * idle;
                    }
                }
            }
            // Busy workers bulk-execute; completions land in the last
            // round of the span, exactly as per-round stepping would.
            let mut workers_buf = std::mem::take(&mut self.newly_busy);
            workers_buf.clear();
            self.busy.for_each_set(|p| workers_buf.push(p as u32)); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
            for &w in &workers_buf {
                let p = w as usize;
                let jid = self.cur_job[p];
                let v = self.cur_node[p];
                let job = &jobs[jid as usize];
                let cid = self.cursor_ids[jid as usize].expect("admitted job"); // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
                self.stats.work_steps += delta;
                self.failed_steals[p] = 0;
                self.ready_scratch.clear();
                let cursor = self.arena.get_mut(cid);
                match cursor
                    .execute_units(&job.dag, v, delta, &mut self.ready_scratch)
                    .expect("current node claimed") // lint: allow(panicking) invariant: executed nodes were claimed by this cursor
                {
                    StepOutcome::InProgress => {}
                    StepOutcome::NodeCompleted { job_completed } => {
                        self.cur_job[p] = NONE;
                        self.busy.clear(p);
                        let removed = self.calendar.remove(last, p as u32); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
                        debug_assert!(removed, "windowed completion had a calendar event");
                        let cursor = self.arena.get_mut(cid);
                        for i in 0..self.ready_scratch.len() {
                            let u = self.ready_scratch[i];
                            cursor.claim(u).expect("newly ready claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                            self.pending.push((p as u32, jid, u)); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
                        }
                        if job_completed {
                            self.arena
                                .release(self.cursor_ids[jid as usize].take().expect("cursor id")); // lint: allow(panicking) invariant: completion releases exactly the cursor admission installed
                            self.live_admitted -= 1;
                            self.completed += 1;
                            self.outcomes[jid as usize] = Some(JobOutcome {
                                job: jid,
                                arrival: job.arrival,
                                weight: job.weight,
                                start_round: self.started[jid as usize].expect("job admitted"), // lint: allow(panicking) invariant: start_round is recorded at admission, before execution
                                completion_round: last,
                                completion: speed.round_end(last),
                                flow: speed.flow_time(job.arrival, last),
                                status: JobStatus::Completed,
                            });
                        }
                    }
                }
            }
            workers_buf.clear();
            self.newly_busy = workers_buf;
            for i in 0..self.pending.len() {
                let (p, jid, u) = self.pending[i];
                self.deques[p as usize].push_back((jid, u));
                self.deque_ne.set(p as usize);
            }
            self.pending.clear();
            self.last_busy_round = last;
            self.round += delta;
            if self.completed >= n {
                self.done = true;
            }
            return;
        }

        // Explicit round: the port of the sequential per-worker loop (no
        // fault gates, no orphans, no panic sampler — empty plan).
        let record_trace = self.cfg.record_trace;
        let mut row: Vec<Action> = if record_trace {
            Vec::with_capacity(m)
        } else {
            Vec::new()
        };
        for p in 0..m {
            if self.cur_job[p] == NONE {
                if let Some(task) = self.deques[p].pop_back() {
                    self.cur_job[p] = task.0;
                    self.cur_node[p] = task.1;
                    self.busy.set(p);
                    self.newly_busy.push(p as u32); // lint: allow(truncating-cast) worker index < m, which is far below 2^32
                    if self.deques[p].is_empty() {
                        self.deque_ne.clear(p);
                    }
                }
            }
            if self.cur_job[p] == NONE {
                match self.cfg.steal_cost {
                    StealCost::UnitStep => {
                        let admit_now = match self.policy {
                            StealPolicy::AdmitFirst => !self.global_queue.is_empty(),
                            StealPolicy::StealKFirst { k } => {
                                self.failed_steals[p] >= k as u64 && !self.global_queue.is_empty()
                            }
                        };
                        if admit_now {
                            let jid =
                                pop_admission(&mut self.global_queue, jobs, self.cfg.admission)
                                    .expect("queue non-empty"); // lint: allow(panicking) emptiness checked immediately above
                            self.admit(jid, p, jobs);
                        } else {
                            self.stats.steal_attempts += 1;
                            let stealable = self.deque_ne.any();
                            let hit = if stealable {
                                self.steal_into(p)
                            } else {
                                self.burn_failed(p, 1);
                                false
                            };
                            if hit {
                                self.stats.successful_steals += 1;
                                self.failed_steals[p] = 0;
                            } else {
                                self.failed_steals[p] = self.failed_steals[p].saturating_add(1);
                            }
                            if record_trace {
                                row.push(Action::Steal { hit });
                            }
                            continue;
                        }
                    }
                    StealCost::Free => {
                        if self.k == 0 {
                            if let Some(jid) =
                                pop_admission(&mut self.global_queue, jobs, self.cfg.admission)
                            {
                                self.admit(jid, p, jobs);
                            } else {
                                let attempts = 2 * m.max(1) as u32; // lint: allow(truncating-cast) m is the processor count; a 2^32-processor instance is unrepresentable
                                if self.deque_ne.any() {
                                    for _ in 0..attempts {
                                        self.stats.steal_attempts += 1;
                                        if self.steal_into(p) {
                                            self.stats.successful_steals += 1;
                                            break;
                                        }
                                    }
                                } else {
                                    self.stats.steal_attempts += attempts as u64;
                                    self.burn_failed(p, attempts as u64);
                                }
                            }
                        } else {
                            if self.deque_ne.any() {
                                for _ in 0..self.k {
                                    self.stats.steal_attempts += 1;
                                    if self.steal_into(p) {
                                        self.stats.successful_steals += 1;
                                        break;
                                    }
                                }
                            } else {
                                self.stats.steal_attempts += self.k as u64;
                                self.burn_failed(p, self.k as u64);
                            }
                            if self.cur_job[p] == NONE {
                                if let Some(jid) =
                                    pop_admission(&mut self.global_queue, jobs, self.cfg.admission)
                                {
                                    self.admit(jid, p, jobs);
                                }
                            }
                        }
                        if self.cur_job[p] == NONE {
                            self.stats.idle_steps += 1;
                            if record_trace {
                                row.push(Action::Idle);
                            }
                            continue;
                        }
                    }
                }
            }
            let action = self.execute_unit(p, jobs);
            if record_trace {
                row.push(action);
            }
        }

        self.end_of_round();
        self.last_busy_round = self.round;
        if let Some(t) = self.trace.as_mut() {
            t.push_row(row);
        }
        self.round += 1;
        if self.completed >= n {
            self.done = true;
        }
    }
}

/// Run every replica in `specs` on `instance`, stepping up to `batch`
/// replicas concurrently per pass over reusable engine lanes.
///
/// Results are returned in spec order; each entry is bit-identical to
/// `run_worksteal(instance, &spec.config, spec.policy, spec.seed)` — the
/// differential proptests in `tests/engine_differential.rs` pin outcomes,
/// stats, samples and `ScheduleTrace` equality. Replicas with non-empty
/// fault plans are delegated to the sequential engine.
pub fn run_batched(
    instance: &Instance,
    specs: &[ReplicaSpec],
    batch: usize,
) -> Vec<(SimResult, Option<ScheduleTrace>)> {
    let lanes_n = batch.max(1).min(specs.len());
    let mut results: Vec<Option<(SimResult, Option<ScheduleTrace>)>> =
        (0..specs.len()).map(|_| None).collect();
    let mut lanes: Vec<Lane> = (0..lanes_n).map(|_| Lane::new()).collect();
    let mut assigned: Vec<Option<usize>> = vec![None; lanes_n];
    let mut next_spec = 0usize;
    loop {
        let mut progressed = false;
        for li in 0..lanes_n {
            if assigned[li].is_none() {
                while next_spec < specs.len() {
                    let si = next_spec;
                    next_spec += 1;
                    let spec = &specs[si];
                    if !spec.config.faults.is_empty() {
                        results[si] = Some(run_worksteal(
                            instance,
                            &spec.config,
                            spec.policy,
                            spec.seed,
                        ));
                        continue;
                    }
                    lanes[li].start(instance, spec);
                    assigned[li] = Some(si);
                    break;
                }
            }
            if let Some(si) = assigned[li] {
                let lane = &mut lanes[li];
                for _ in 0..BURST {
                    if lane.done {
                        break;
                    }
                    lane.step(instance);
                }
                progressed = true;
                if lane.done {
                    results[si] = Some(lane.finish());
                    assigned[li] = None;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every replica finished")) // lint: allow(panicking) invariant: the lane loop exits only after all specs ran
        .collect()
}

/// Convenience wrapper returning only the [`SimResult`]s, in spec order.
pub fn simulate_batched(
    instance: &Instance,
    specs: &[ReplicaSpec],
    batch: usize,
) -> Vec<SimResult> {
    run_batched(instance, specs, batch)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// Streaming counterpart of [`simulate_batched`]: run every replica over
/// its own [`JobStream`](crate::JobStream) in O(active + m) memory,
/// pushing each completed outcome into `sink` tagged with the replica
/// index.
///
/// Lanes hold whole materialized instances, so the SoA interleaving is the
/// wrong shape for endless streams; replicas instead run sequentially
/// through the streaming engine — each result is bit-identical to
/// `run_worksteal(instance, &spec.config, spec.policy, spec.seed)` on the
/// materialization of that replica's stream (transitively through the
/// streaming engine's own differential guarantee). `make_stream(i)` builds
/// replica `i`'s stream; replicas with non-empty fault plans fail with
/// [`StreamError::FaultsUnsupported`](crate::StreamError::FaultsUnsupported),
/// like every streaming entry point.
pub fn simulate_batched_stream<S, F>(
    mut make_stream: F,
    specs: &[ReplicaSpec],
    sink: &mut dyn FnMut(usize, &JobOutcome),
) -> Result<Vec<crate::StreamSummary>, crate::StreamError>
where
    S: crate::JobStream,
    F: FnMut(usize) -> S,
{
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut stream = make_stream(i);
            let mut per_replica = |o: &JobOutcome| sink(i, o);
            crate::run_worksteal_stream(
                &mut stream,
                &spec.config,
                spec.policy,
                spec.seed,
                &mut per_replica,
            )
            .map(|(summary, _)| summary)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worksteal::simulate_worksteal;
    use parflow_dag::shapes;
    use std::sync::Arc;

    fn inst_seq(arrivals_works: &[(u64, u64)]) -> Instance {
        Instance::new(
            arrivals_works
                .iter()
                .enumerate()
                .map(|(i, &(a, w))| Job::new(i as u32, a, Arc::new(shapes::single_node(w))))
                .collect(),
        )
    }

    #[test]
    fn empty_specs_empty_results() {
        let inst = inst_seq(&[(0, 1)]);
        assert!(run_batched(&inst, &[], 4).is_empty());
    }

    #[test]
    fn single_replica_matches_sequential() {
        let inst = inst_seq(&[(0, 7), (3, 2), (9, 5)]);
        let cfg = SimConfig::new(2);
        let policy = StealPolicy::StealKFirst { k: 3 };
        let seq = simulate_worksteal(&inst, &cfg, policy, 42);
        let out = simulate_batched(&inst, &[ReplicaSpec::new(cfg, policy, 42)], 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], seq);
    }

    #[test]
    fn k_burn_window_matches_per_round_counters() {
        // 2 unit jobs, 2 workers, k = 3: both workers burn exactly 3
        // failed steal rounds before admitting (the k-burn window path).
        let inst = inst_seq(&[(0, 1), (0, 1)]);
        let cfg = SimConfig::new(2);
        let policy = StealPolicy::StealKFirst { k: 3 };
        let r = &simulate_batched(&inst, &[ReplicaSpec::new(cfg.clone(), policy, 7)], 1)[0];
        let seq = simulate_worksteal(&inst, &cfg, policy, 7);
        assert_eq!(*r, seq);
        assert_eq!(r.stats.steal_attempts, 6);
        assert_eq!(r.stats.admissions, 2);
    }

    #[test]
    fn lane_reuse_across_many_replicas() {
        // More replicas than lanes: lanes are recycled in spec order and
        // every replica still matches its sequential run.
        let inst = inst_seq(&[(0, 5), (2, 3), (4, 8), (20, 1)]);
        let cfg = SimConfig::new(3).with_free_steals();
        let specs: Vec<ReplicaSpec> = (0..7)
            .map(|i| {
                ReplicaSpec::new(
                    cfg.clone(),
                    if i % 2 == 0 {
                        StealPolicy::AdmitFirst
                    } else {
                        StealPolicy::StealKFirst { k: 2 }
                    },
                    1000 + i,
                )
            })
            .collect();
        let out = simulate_batched(&inst, &specs, 2);
        for (spec, got) in specs.iter().zip(&out) {
            let want = simulate_worksteal(&inst, &spec.config, spec.policy, spec.seed);
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn traced_replica_matches_sequential_trace() {
        let inst = inst_seq(&[(0, 4), (1, 2), (6, 3)]);
        let cfg = SimConfig::new(2).with_trace();
        let policy = StealPolicy::StealKFirst { k: 2 };
        let (seq_r, seq_t) = run_worksteal(&inst, &cfg, policy, 9);
        let mut out = run_batched(&inst, &[ReplicaSpec::new(cfg, policy, 9)], 1);
        let (r, t) = out.remove(0);
        assert_eq!(r, seq_r);
        assert_eq!(t, seq_t);
    }

    #[test]
    fn giant_m_replica_matches_sequential() {
        let inst = inst_seq(&[(0, 3), (1, 9), (2, 4), (50, 2)]);
        let cfg = SimConfig::new(256);
        let policy = StealPolicy::StealKFirst { k: 16 };
        let seq = simulate_worksteal(&inst, &cfg, policy, 5);
        let out = simulate_batched(&inst, &[ReplicaSpec::new(cfg, policy, 5)], 1);
        assert_eq!(out[0], seq);
    }

    #[test]
    fn fault_replicas_are_delegated() {
        use crate::fault::{CrashFault, FaultPlan};
        let inst = inst_seq(&[(0, 6), (1, 6)]);
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                worker: 1,
                at_round: 2,
            }],
            ..FaultPlan::none()
        };
        let cfg = SimConfig::new(2).with_faults(plan);
        let policy = StealPolicy::AdmitFirst;
        let seq = simulate_worksteal(&inst, &cfg, policy, 3);
        let out = simulate_batched(&inst, &[ReplicaSpec::new(cfg, policy, 3)], 4);
        assert_eq!(out[0], seq);
    }
}
