//! The multiprogrammed work-stealing scheduler of Section 4.
//!
//! Model (faithful to the paper):
//!
//! * every worker owns a deque; it pushes newly enabled nodes on the bottom
//!   and pops from the bottom; thieves steal from the top;
//! * a global FIFO queue holds jobs that have arrived but were not yet
//!   admitted; admitting pops the head;
//! * a steal attempt takes one unit time step (one round); the victim is
//!   chosen uniformly at random among the other workers;
//! * **admit-first** (`k = 0`): a worker with an empty deque admits from the
//!   global queue whenever it is non-empty, and steals only otherwise;
//! * **steal-k-first**: a worker with an empty deque first makes steal
//!   attempts and admits only after `k` consecutive failures (and only if
//!   the global queue is non-empty).
//!
//! Admission itself is free (the admitting worker immediately executes the
//! job's first node), matching the TBB implementation where popping the
//! global queue costs no more than popping a deque. The cost of steal
//! attempts is configurable via [`crate::StealCost`]: in the theory model
//! each attempt consumes the worker's whole round (what Theorem 4.1's
//! `(k+1+ε)` speed pays for); in the systems model attempts are
//! instantaneous, matching the paper's TBB experiments where a steal is
//! ~10⁴× cheaper than a 0.1 ms work unit.
//!
//! Rounds are atomic time steps: nodes enabled during round `r` are pushed
//! to the owner's deque only at the end of `r`, so they can first be
//! executed or stolen in round `r+1`. Workers act in index order within a
//! round; steals observe the victims' deques as already modified by
//! lower-indexed workers in the same round (modelling racy concurrency
//! deterministically).

use crate::config::{AdmissionOrder, SimConfig, StealAmount, StealCost, VictimStrategy};
use crate::fault::{FaultEvent, FaultKind, JobStatus, PanicSampler, SlowdownGate, PPM};
use crate::result::{BacklogSample, EngineStats, JobOutcome, SimResult};
use crate::trace::{Action, ScheduleTrace};
use parflow_dag::{CursorArena, CursorId, Instance, Job, JobId, NodeId, StepOutcome};
use parflow_obs::{NullRecorder, Recorder};
use parflow_time::Round;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Admission policy of the work-stealing scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StealPolicy {
    /// Admit from the global queue whenever the local deque is empty and
    /// the queue is non-empty; steal only when the queue is empty.
    /// This is steal-k-first with `k = 0` (Corollary 4.3).
    AdmitFirst,
    /// Try random steals first; admit only after `k` consecutive failed
    /// attempts (Theorem 4.1). The paper's experiments use `k = 16`.
    StealKFirst {
        /// Number of consecutive failed steals required before admitting.
        k: u32,
    },
}

impl StealPolicy {
    /// The `k` parameter (0 for admit-first).
    pub fn k(&self) -> u32 {
        match *self {
            StealPolicy::AdmitFirst => 0,
            StealPolicy::StealKFirst { k } => k,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> String {
        match *self {
            StealPolicy::AdmitFirst => "admit-first".to_string(),
            StealPolicy::StealKFirst { k } => format!("steal-{k}-first"),
        }
    }
}

/// One worker's private state. Shared with the streaming engine
/// (`crate::stream`), whose tasks carry slab slot ids in place of job ids
/// — both are `u32`, so the layout is identical.
#[derive(Clone, Debug)]
pub(crate) struct Worker {
    /// The node currently being executed across rounds, if any.
    pub(crate) current: Option<(JobId, NodeId)>,
    /// The deque: back = bottom (owner side), front = top (thief side).
    pub(crate) deque: VecDeque<(JobId, NodeId)>,
    /// Nodes enabled during the current round, flushed to `deque` at round end.
    pub(crate) pending: Vec<(JobId, NodeId)>,
    /// Consecutive failed steal attempts since the last success/work.
    /// `u64` so quiescent fast-forwards count every skipped round exactly;
    /// the old `u32` silently saturated past ~4.3e9 rounds.
    pub(crate) failed_steals: u64,
    /// Next victim index for the round-robin scan strategy.
    pub(crate) scan_next: usize,
}

impl Worker {
    /// `index` staggers the round-robin scan start so thieves probe
    /// distinct victims each round instead of sweeping in lockstep.
    pub(crate) fn new(index: usize) -> Self {
        Worker {
            current: None,
            deque: VecDeque::new(),
            pending: Vec::new(),
            failed_steals: 0,
            scan_next: index + 1,
        }
    }
}

/// Per-worker telemetry, maintained only when a [`Recorder`] is enabled
/// and flushed as `ws.worker.*` counters at the end of the run. Kept out
/// of [`EngineStats`] (which goldens bit-compare) and out of `Worker`
/// (which the hot loop touches) so the disabled path stays byte-identical
/// and allocation-free.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WorkerObs {
    /// Work units executed by this worker.
    pub(crate) work_steps: u64,
    /// Steal attempts charged to this worker (excludes quiescent gaps,
    /// mirroring `EngineStats::steal_attempts`).
    pub(crate) steal_attempts: u64,
    /// Successful steals.
    pub(crate) successful_steals: u64,
    /// Rounds this worker spent on failed steals (unit-cost model) or
    /// quiescent fast-forwarded rounds.
    pub(crate) failed_steal_rounds: u64,
    /// Jobs admitted from the global queue by this worker.
    pub(crate) admissions: u64,
    /// Idle rounds (free-steal model and quiescent gaps).
    pub(crate) idle_steps: u64,
    /// Largest consecutive failed-steal streak ever observed — the value
    /// the `failed_steals` u32→u64 widening makes exact.
    pub(crate) max_failed_streak: u64,
}

/// One steal attempt by worker `p`; the victim is chosen per `strategy`
/// (uniform random — the paper's model — or a deterministic cyclic scan).
/// On success moves the victim's top task into `workers[p].current`, plus
/// — under [`StealAmount::Half`] — the rest of the top half of the
/// victim's deque onto the thief's deque.
#[inline]
pub(crate) fn steal_into(
    p: usize,
    workers: &mut [Worker],
    rng: &mut SmallRng,
    strategy: VictimStrategy,
    amount: StealAmount,
    blackholed: &[bool],
) -> bool {
    let m = workers.len();
    if m <= 1 {
        return false;
    }
    let victim = match strategy {
        VictimStrategy::Uniform => {
            let mut v = gen_uniform_below(rng, m - 1);
            if v >= p {
                v += 1;
            }
            v
        }
        VictimStrategy::RoundRobinScan => {
            let mut v = workers[p].scan_next % m;
            if v == p {
                v = (v + 1) % m;
            }
            workers[p].scan_next = (v + 1) % m;
            v
        }
    };
    // A blackholed victim consumes the attempt but never yields work.
    if blackholed[victim] {
        return false;
    }
    if let Some(task) = workers[victim].deque.pop_front() {
        workers[p].current = Some(task);
        if amount == StealAmount::Half {
            // Transfer the remainder of the victim's top half (the first
            // task became `current`). ceil(len_before/2) − 1 extra tasks.
            let extra = (workers[victim].deque.len() + 1).div_ceil(2) - 1;
            for _ in 0..extra {
                let t = workers[victim].deque.pop_front().expect("len checked"); // lint: allow(panicking) emptiness checked immediately above; pop cannot fail
                workers[p].deque.push_back(t);
            }
        }
        true
    } else {
        false
    }
}

/// True if any steal attempt could currently succeed: some non-blackholed
/// worker has a non-empty deque. (The thief's own deque is always empty at
/// a steal site — it pops it before reaching the steal path — so the thief
/// index needs no exclusion.)
#[inline]
pub(crate) fn any_stealable(workers: &[Worker], blackholed: &[bool]) -> bool {
    workers
        .iter()
        .zip(blackholed)
        .any(|(w, &b)| !b && !w.deque.is_empty())
}

/// `rng.gen_range(0..bound)` for `usize`, inlined.
///
/// Replays rand 0.8.5's `sample_single` Lemire rejection loop bit-for-bit
/// (`range = bound`, `zone = (range << range.leading_zeros()) - 1`, accept a
/// draw `v` iff the low 64 bits of `v * range` are ≤ zone, result = high 64
/// bits). `gen_range` itself is an opaque cross-crate call on the hot steal
/// path; this keeps the identical RNG stream at a fraction of the cost.
#[inline]
pub(crate) fn gen_uniform_below(rng: &mut SmallRng, bound: usize) -> usize {
    debug_assert!(bound >= 1);
    let range = bound as u64;
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let t = (v as u128) * (range as u128);
        if (t as u64) <= zone {
            return (t >> 64) as usize;
        }
    }
}

/// Consume exactly the RNG draws that `count` uniform victim selections
/// (`gen_range(0..m-1)`) would consume, without computing victims.
///
/// Replays rand 0.8.5's Lemire rejection loop draw-for-draw: each accepted
/// sample is one attempt, rejected samples re-draw, so the stream position
/// afterwards is bit-identical to `count` calls through `steal_into`.
/// Callers must have established that every one of these attempts fails
/// (nothing is stealable), making the victim index itself irrelevant.
#[inline]
pub(crate) fn burn_uniform_draws(rng: &mut SmallRng, m: usize, count: u64) {
    if m <= 1 || count == 0 {
        return;
    }
    let range = (m - 1) as u64;
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    // Phase 1: a fixed-trip-count loop the compiler can unroll and
    // software-pipeline (the data-dependent `while` form defeats both).
    // Draws are consumed in stream order either way, so splitting the
    // rejection fixup into phase 2 leaves the stream position identical:
    // every rejected draw (probability ≈ range/2⁶⁴ per draw) still costs
    // exactly one extra accepted draw.
    let mut shortfall = 0u64;
    for _ in 0..count {
        let v = rng.next_u64();
        shortfall += (v.wrapping_mul(range) > zone) as u64;
    }
    while shortfall > 0 {
        let v = rng.next_u64();
        shortfall -= (v.wrapping_mul(range) <= zone) as u64;
    }
}

/// Advance the round-robin scan cursor of worker `p` by `count` failed
/// attempts without touching the deques.
///
/// One application maps `s` to `s+1 (mod m)` except from `p`, which jumps
/// to `p+2`: after the first application the state lives on a single cycle
/// of length `m-1` (every residue except `p+1`), so the remaining count is
/// reduced modulo that cycle instead of iterated.
#[inline]
pub(crate) fn advance_scan(start: usize, p: usize, m: usize, count: u64) -> usize {
    debug_assert!(m >= 2);
    let step = |s: usize| -> usize {
        let mut v = s % m;
        if v == p {
            v = (v + 1) % m;
        }
        (v + 1) % m
    };
    if count == 0 {
        return start;
    }
    let mut s = step(start);
    let mut rem = (count - 1) % (m as u64 - 1);
    while rem > 0 {
        s = step(s);
        rem -= 1;
    }
    s
}

/// Consume the per-attempt state (RNG stream or scan cursor) of `count`
/// steal attempts by worker `p` that are known to fail. A no-op for
/// `m <= 1`, mirroring `steal_into`'s early return.
#[inline]
pub(crate) fn burn_failed_attempts(
    rng: &mut SmallRng,
    workers: &mut [Worker],
    p: usize,
    strategy: VictimStrategy,
    count: u64,
) {
    let m = workers.len();
    if m <= 1 {
        return;
    }
    match strategy {
        VictimStrategy::Uniform => burn_uniform_draws(rng, m, count),
        VictimStrategy::RoundRobinScan => {
            workers[p].scan_next = advance_scan(workers[p].scan_next, p, m, count);
        }
    }
}

/// Pop the next job to admit according to the admission order: the front
/// (FIFO) or the largest-weight queued job (distributed BWF; ties go to
/// the earlier arrival, i.e. the smaller id).
pub(crate) fn pop_admission(
    queue: &mut VecDeque<JobId>,
    jobs: &[Job],
    order: AdmissionOrder,
) -> Option<JobId> {
    match order {
        AdmissionOrder::Fifo => queue.pop_front(),
        AdmissionOrder::ByWeight => {
            let best = queue
                .iter()
                .enumerate()
                .max_by_key(|&(_, &jid)| (jobs[jid as usize].weight, std::cmp::Reverse(jid)))?
                .0;
            queue.remove(best)
        }
    }
}

/// Admit job `jid` on worker `p`: create its cursor, push all source nodes
/// onto the worker's deque and take the last one as the current task.
/// `sources` is a caller-owned scratch buffer (hoisted out of the hot loop).
fn admit_job(
    jid: JobId,
    p: usize,
    jobs: &[Job],
    workers: &mut [Worker],
    arena: &mut CursorArena,
    cursor_ids: &mut [Option<CursorId>],
    sources: &mut Vec<NodeId>,
) {
    let job = &jobs[jid as usize];
    let id = arena.alloc(&job.dag);
    cursor_ids[jid as usize] = Some(id);
    let cur = arena.get_mut(id);
    sources.clear();
    sources.extend_from_slice(cur.ready_nodes());
    for &s in sources.iter() {
        cur.claim(s).expect("source ready"); // lint: allow(panicking) invariant: freshly materialized source nodes are unclaimed
        workers[p].deque.push_back((jid, s));
    }
    let task = workers[p].deque.pop_back().expect("pushed sources"); // lint: allow(panicking) a source task was pushed just above; the deque is non-empty
    workers[p].current = Some(task);
    workers[p].failed_steals = 0;
}

/// Simulate work stealing with the given `policy` on `instance`.
///
/// `seed` drives victim selection; runs are bit-reproducible for a given
/// `(instance, config, policy, seed)`.
pub fn run_worksteal(
    instance: &Instance,
    config: &SimConfig,
    policy: StealPolicy,
    seed: u64,
) -> (SimResult, Option<ScheduleTrace>) {
    run_worksteal_observed(instance, config, policy, seed, &mut NullRecorder)
}

/// [`run_worksteal`] with a [`Recorder`] attached. With the recorder
/// disabled (`rec.enabled() == false`) the run is bit-identical to
/// `run_worksteal`: the RNG stream, `SimResult` and trace do not change.
/// With it enabled, per-worker `ws.worker.*` counters (work steps, steal
/// attempts/successes, failed-steal rounds, admissions, idle rounds, max
/// failed-steal streak), engine-level `ws.*` counters mirroring
/// [`EngineStats`], a `ws.total_rounds` gauge and per-job `ws.flow_ticks`
/// samples are emitted at the end of the run.
pub fn run_worksteal_observed(
    instance: &Instance,
    config: &SimConfig,
    policy: StealPolicy,
    seed: u64,
    rec: &mut dyn Recorder,
) -> (SimResult, Option<ScheduleTrace>) {
    let jobs = instance.jobs();
    let n = jobs.len();
    let m = config.m;
    let speed = config.speed;
    let k = policy.k();
    let faults = &config.faults;
    if let Err(e) = faults.validate(m) {
        panic!("invalid fault plan: {e}"); // lint: allow(panicking) documented contract: simulator entry points panic on invalid fault plans, validated before any stepping
    }
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut workers: Vec<Worker> = (0..m).map(Worker::new).collect();
    // Cursor state lives in a recycled arena (slot allocated at admission,
    // released at completion/failure): slot count and buffer capacity are
    // bounded by peak live jobs, so steady state allocates nothing per job.
    let mut arena = CursorArena::new();
    let mut cursor_ids: Vec<Option<CursorId>> = vec![None; n];
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n];
    let mut started: Vec<Option<Round>> = vec![None; n];
    let mut global_queue: VecDeque<JobId> = VecDeque::new();
    let mut stats = EngineStats::default();
    let mut trace = config.record_trace.then(|| ScheduleTrace::new(m, speed));
    let mut samples: Vec<BacklogSample> = Vec::new();

    // Hoisted once: with the NullRecorder every `if obs` below is a dead
    // branch and `wobs` stays empty (no allocation).
    let obs = rec.enabled();
    let mut wobs: Vec<WorkerObs> = if obs {
        vec![WorkerObs::default(); m]
    } else {
        Vec::new()
    };

    // Fault machinery. Orphaned tasks from crashed workers go into a
    // global FIFO of their own: claimed-node state lives in the job's
    // cursor, so an adopting worker resumes exactly where the dead one
    // stopped without re-racing for the nodes.
    let mut fault_events: Vec<FaultEvent> = Vec::new();
    let mut orphans: VecDeque<(JobId, NodeId)> = VecDeque::new();
    let mut alive: Vec<bool> = vec![true; m];
    let mut alive_count = m;
    let mut was_stalled: Vec<bool> = vec![false; m];
    let mut gates: Vec<SlowdownGate> = (0..m)
        .map(|p| SlowdownGate::new(faults.rate_ppm_of(p)))
        .collect();
    let blackholed: Vec<bool> = (0..m).map(|p| faults.is_blackhole(p)).collect();
    let sampler = PanicSampler::new(seed, faults.panic_ppm);

    let mut next_arrival = 0usize;
    // Jobs that reached a terminal state (completed or failed).
    let mut completed = 0usize;
    // Jobs admitted but not yet terminal.
    let mut live_admitted = 0usize;
    let mut round: Round = 0;
    let mut last_busy_round: Round = 0;

    // Rounds with admitted live work always execute ≥ 1 unit; rounds with
    // only queued jobs admit within ≤ k+1 rounds; quiescent gaps are
    // skipped. Anything past this cap is an engine bug.
    let mut safety_cap: Round = speed.first_round_at_or_after(instance.last_arrival())
        + instance.total_work()
        + (k as Round + 2) * (n as Round + m as Round)
        + 64;
    if !faults.is_empty() {
        // Stalls add dead rounds, slowdowns stretch execution by up to
        // PPM/best_rate, and fault boundaries bound fast-forward clamping.
        let stall_total: Round = faults.stalls.iter().map(|s| s.duration).sum();
        let best_rate = (0..m)
            .filter(|&p| faults.crash_round_of(p).is_none())
            .map(|p| faults.rate_ppm_of(p))
            .max()
            .unwrap_or(PPM)
            .max(1);
        safety_cap = safety_cap * (PPM as Round).div_ceil(best_rate as Round)
            + faults.last_scheduled_round().unwrap_or(0)
            + stall_total
            + 64;
    }

    // Rounds at which the plan changes some worker's behaviour, sorted
    // once up front; quiescent fast-forwards must not skip them. The
    // lookup is a binary search instead of a per-gap rescan of the plan.
    let fault_boundaries: Vec<Round> = {
        let mut b: Vec<Round> = faults
            .crashes
            .iter()
            .map(|c| c.at_round)
            .chain(
                faults
                    .stalls
                    .iter()
                    .flat_map(|s| [s.from_round, s.from_round.saturating_add(s.duration)]),
            )
            .collect();
        b.sort_unstable();
        b.dedup();
        b
    };
    let next_fault_boundary = |round: Round| -> Option<Round> {
        let i = fault_boundaries.partition_point(|&b| b <= round);
        fault_boundaries.get(i).copied()
    };
    let has_stalls = !faults.stalls.is_empty();
    let mut crash_pending = (0..m).any(|p| faults.crash_round_of(p).is_some());
    // The event-window fast path below bulk-steps uneventful round spans.
    // It preserves the RNG stream bit-for-bit but compresses bookkeeping,
    // so it is only taken when no fault can fire (empty plan ⇒ no crashes,
    // stalls, slowdowns, blackholes or panics) and no trace row is needed.
    let fast_ok = faults.is_empty() && !config.record_trace;

    // Scratch buffers hoisted out of the hot loop.
    let mut ready_scratch: Vec<NodeId> = Vec::new();
    let mut sources_scratch: Vec<NodeId> = Vec::new();

    'rounds: while completed < n {
        assert!(
            round <= safety_cap,
            "work-stealing engine exceeded round cap"
        );

        // Crash pre-pass: workers whose crash round has come die at the
        // start of the round; their current task and deque are reinjected
        // into the global orphan FIFO for survivors to adopt. Skipped
        // entirely once every scheduled crash has fired.
        if crash_pending {
            for p in 0..m {
                if alive[p] && faults.crash_round_of(p).is_some_and(|cr| cr <= round) {
                    alive[p] = false;
                    alive_count -= 1;
                    stats.crashed_workers += 1;
                    fault_events.push(FaultEvent {
                        round,
                        worker: Some(p),
                        job: None,
                        kind: FaultKind::Crash,
                        detail: 0,
                    });
                    let mut reinjected = 0u64;
                    if let Some(task) = workers[p].current.take() {
                        orphans.push_back(task);
                        reinjected += 1;
                    }
                    while let Some(task) = workers[p].deque.pop_front() {
                        orphans.push_back(task);
                        reinjected += 1;
                    }
                    for task in workers[p].pending.drain(..) {
                        orphans.push_back(task);
                        reinjected += 1;
                    }
                    if reinjected > 0 {
                        stats.reinjected_tasks += reinjected;
                        fault_events.push(FaultEvent {
                            round,
                            worker: Some(p),
                            job: None,
                            kind: FaultKind::OrphanReinjection,
                            detail: reinjected,
                        });
                    }
                }
            }
            crash_pending = (0..m).any(|q| alive[q] && faults.crash_round_of(q).is_some());
        }

        // Release arrivals into the global FIFO queue.
        while next_arrival < n && speed.arrived_by_round(jobs[next_arrival].arrival, round) {
            global_queue.push_back(jobs[next_arrival].id);
            next_arrival += 1;
        }

        if config.sample_every > 0 && round.is_multiple_of(config.sample_every) {
            samples.push(BacklogSample {
                round,
                queued: global_queue.len(),
                live: live_admitted,
                deque_tasks: workers.iter().map(|w| w.deque.len()).sum::<usize>() + orphans.len(),
            });
        }

        // Quiescent fast-forward: nothing admitted is live and nothing is
        // queued — skip to the next arrival. The skipped rounds would be
        // failed steal attempts; count every one of them (the counter is
        // `u64`, so no clamping — the old `u32` version saturated here).
        // Fault boundaries clamp the jump so crash/stall transitions still
        // fire at their scheduled rounds.
        if live_admitted == 0 && global_queue.is_empty() && orphans.is_empty() {
            debug_assert!(next_arrival < n, "deadlock: nothing live, nothing queued");
            let mut target = speed.first_round_at_or_after(jobs[next_arrival].arrival);
            if let Some(boundary) = next_fault_boundary(round) {
                target = target.min(boundary);
            }
            debug_assert!(target > round, "fast-forward must move time forward");
            let gap = target - round;
            stats.idle_steps += gap * alive_count as u64;
            for (p, w) in workers.iter_mut().enumerate() {
                if alive[p] {
                    w.failed_steals = w.failed_steals.saturating_add(gap);
                    if obs {
                        let o = &mut wobs[p];
                        o.failed_steal_rounds += gap;
                        o.idle_steps += gap;
                        o.max_failed_streak = o.max_failed_streak.max(w.failed_steals);
                    }
                }
            }
            // Backlog samples falling inside the skipped span are still
            // emitted (the backlog is empty by construction — nothing is
            // live, queued or orphaned during a quiescent gap), so sampled
            // series stay evenly spaced across gaps.
            if config.sample_every > 0 {
                let se = config.sample_every;
                let mut s = (round / se + 1) * se;
                while s < target {
                    samples.push(BacklogSample {
                        round: s,
                        queued: 0,
                        live: 0,
                        deque_tasks: 0,
                    });
                    s += se;
                }
            }
            if let Some(t) = trace.as_mut() {
                t.push_idle_rounds(gap);
            }
            round = target;
            continue;
        }

        // Event-window fast path: between events the round-by-round
        // behaviour is forced. If every worker is busy (nobody pops, admits
        // or steals), or the idle workers provably cannot acquire anything
        // (global queue, orphan FIFO and every deque empty — so every steal
        // attempt fails), then until the next node completion or arrival
        // each round repeats the same pattern. Consume the whole span at
        // once: busy workers bulk-execute their current node, idle workers'
        // failed steal attempts are replayed onto the RNG stream without
        // computing victims. Completions land in the last round of the
        // span, exactly where the per-round loop would put them.
        'window: {
            if !fast_ok {
                break 'window;
            }
            // Cheapest cap first: if the next arrival lands next round the
            // span can only be 1 round — skip the worker scan entirely.
            let arrival_cap = if next_arrival < n {
                speed.first_round_at_or_after(jobs[next_arrival].arrival) - round
            } else {
                u64::MAX
            };
            if arrival_cap < 2 {
                break 'window;
            }
            let mut min_rem = u64::MAX;
            let mut busy = 0usize;
            let mut deques_empty = true;
            for w in &workers {
                if let Some((jid, v)) = w.current {
                    let rem = arena
                        .get(cursor_ids[jid as usize].expect("admitted job")) // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
                        .remaining_work(v)
                        .expect("current node in range"); // lint: allow(panicking) invariant: cursors only hold nodes of their own DAG
                    if rem < 2 {
                        // The span is capped at 1 round — the per-round
                        // loop handles that more cheaply than span setup.
                        break 'window;
                    }
                    if rem < min_rem {
                        min_rem = rem;
                    }
                    busy += 1;
                }
                if !w.deque.is_empty() {
                    deques_empty = false;
                }
            }
            let eligible = busy > 0 && (busy == m || (global_queue.is_empty() && deques_empty));
            if eligible {
                // ≥ 2 by construction: every remaining-work and the arrival
                // cap were pre-checked, so the span always beats per-round.
                let delta = min_rem.min(arrival_cap);
                {
                    let last = round + delta - 1;
                    // Backlog state is constant at the top of every round
                    // in the span (completions only land *during* the last
                    // one), so interior samples all read the same values.
                    if config.sample_every > 0 {
                        let se = config.sample_every;
                        let queued = global_queue.len();
                        let deque_tasks =
                            workers.iter().map(|w| w.deque.len()).sum::<usize>() + orphans.len();
                        let mut s = (round / se + 1) * se;
                        while s <= last {
                            samples.push(BacklogSample {
                                round: s,
                                queued,
                                live: live_admitted,
                                deque_tasks,
                            });
                            s += se;
                        }
                    }
                    if busy < m {
                        debug_assert!(global_queue.is_empty() && deques_empty);
                        debug_assert!(orphans.is_empty(), "no orphans without crashes");
                        let per_round: u64 = match config.steal_cost {
                            StealCost::UnitStep => 1,
                            StealCost::Free => {
                                if k == 0 {
                                    2 * m as u64
                                } else {
                                    k as u64
                                }
                            }
                        };
                        let idle = (m - busy) as u64;
                        stats.steal_attempts += delta * per_round * idle;
                        if obs {
                            for (p, w) in workers.iter().enumerate() {
                                if w.current.is_none() {
                                    wobs[p].steal_attempts += delta * per_round;
                                }
                            }
                        }
                        match config.victim {
                            VictimStrategy::Uniform => {
                                burn_uniform_draws(&mut rng, m, delta * per_round * idle);
                            }
                            VictimStrategy::RoundRobinScan => {
                                for (p, w) in workers.iter_mut().enumerate() {
                                    if w.current.is_none() {
                                        w.scan_next =
                                            advance_scan(w.scan_next, p, m, delta * per_round);
                                    }
                                }
                            }
                        }
                        match config.steal_cost {
                            StealCost::UnitStep => {
                                // A failed unit-cost steal consumes the
                                // round and bumps the failure counter.
                                for (p, w) in workers.iter_mut().enumerate() {
                                    if w.current.is_none() {
                                        w.failed_steals = w.failed_steals.saturating_add(delta);
                                        if obs {
                                            let o = &mut wobs[p];
                                            o.failed_steal_rounds += delta;
                                            o.max_failed_streak =
                                                o.max_failed_streak.max(w.failed_steals);
                                        }
                                    }
                                }
                            }
                            StealCost::Free => {
                                // Free attempts cost nothing; the round
                                // itself is recorded as idle.
                                stats.idle_steps += delta * idle;
                                if obs {
                                    for (p, w) in workers.iter().enumerate() {
                                        if w.current.is_none() {
                                            wobs[p].idle_steps += delta;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    for (p, w) in workers.iter_mut().enumerate() {
                        let Some((jid, v)) = w.current else {
                            continue;
                        };
                        let job = &jobs[jid as usize];
                        let cid = cursor_ids[jid as usize].expect("admitted job"); // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
                        let cursor = arena.get_mut(cid);
                        stats.work_steps += delta;
                        if obs {
                            wobs[p].work_steps += delta;
                        }
                        w.failed_steals = 0;
                        ready_scratch.clear();
                        match cursor
                            .execute_units(&job.dag, v, delta, &mut ready_scratch)
                            .expect("current node claimed") // lint: allow(panicking) invariant: executed nodes were claimed by this cursor
                        {
                            StepOutcome::InProgress => {}
                            StepOutcome::NodeCompleted { job_completed } => {
                                w.current = None;
                                debug_assert!(
                                    !sampler.should_panic(jid, v),
                                    "no injected panics under an empty fault plan"
                                );
                                for &u in ready_scratch.iter() {
                                    cursor.claim(u).expect("newly ready claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                                    w.pending.push((jid, u));
                                }
                                if job_completed {
                                    // Last live node of the job: no other
                                    // worker's `current` can reference this
                                    // slot, safe to recycle.
                                    arena.release(
                                        cursor_ids[jid as usize].take().expect("cursor id"), // lint: allow(panicking) invariant: completion releases exactly the cursor admission installed
                                    );
                                    live_admitted -= 1;
                                    completed += 1;
                                    outcomes[jid as usize] = Some(JobOutcome {
                                        job: jid,
                                        arrival: job.arrival,
                                        weight: job.weight,
                                        start_round: started[jid as usize].expect("job admitted"), // lint: allow(panicking) invariant: start_round is recorded at admission, before execution
                                        completion_round: last,
                                        completion: speed.round_end(last),
                                        flow: speed.flow_time(job.arrival, last),
                                        status: JobStatus::Completed,
                                    });
                                }
                            }
                        }
                    }
                    for w in &mut workers {
                        for task in w.pending.drain(..) {
                            w.deque.push_back(task);
                        }
                    }
                    last_busy_round = last;
                    round += delta;
                    continue 'rounds;
                }
            }
        }

        let mut row: Vec<Action> = if config.record_trace {
            Vec::with_capacity(m)
        } else {
            Vec::new()
        };
        // All-deques-empty knowledge, shared across this round's steal
        // sites: `Some(false)` ⇒ every attempt fails (burn it), computed at
        // most once per round and invalidated by any deque push.
        let mut stealable_cache: Option<bool> = None;

        for p in 0..m {
            // 0. Fault gates: dead workers do nothing; stalled workers
            // freeze (their deques stay stealable); slowed workers only
            // act in the rounds their credit gate opens.
            if !alive[p] {
                if config.record_trace {
                    row.push(Action::Idle);
                }
                continue;
            }
            if has_stalls {
                let stalled = faults.is_stalled(p, round);
                if stalled != was_stalled[p] {
                    was_stalled[p] = stalled;
                    fault_events.push(FaultEvent {
                        round,
                        worker: Some(p),
                        job: None,
                        kind: if stalled {
                            FaultKind::StallBegin
                        } else {
                            FaultKind::StallEnd
                        },
                        detail: 0,
                    });
                }
                if stalled {
                    stats.faulted_steps += 1;
                    if config.record_trace {
                        row.push(Action::Idle);
                    }
                    continue;
                }
            }
            if !gates[p].is_full_speed() && !gates[p].tick() {
                stats.faulted_steps += 1;
                if config.record_trace {
                    row.push(Action::Idle);
                }
                continue;
            }

            // 1. Acquire work if idle: own deque → orphan FIFO →
            //    (policy) admit/steal. Adopting an orphaned task is free,
            //    like popping the own deque: the task was already claimed
            //    by the crashed worker, no coordination is needed.
            if workers[p].current.is_none() {
                if let Some(task) = workers[p].deque.pop_back() {
                    workers[p].current = Some(task);
                }
            }
            if workers[p].current.is_none() {
                if let Some(task) = orphans.pop_front() {
                    workers[p].current = Some(task);
                    workers[p].failed_steals = 0;
                }
            }
            if workers[p].current.is_none() {
                match config.steal_cost {
                    StealCost::UnitStep => {
                        let admit_now = match policy {
                            StealPolicy::AdmitFirst => !global_queue.is_empty(),
                            StealPolicy::StealKFirst { k } => {
                                workers[p].failed_steals >= k as u64 && !global_queue.is_empty()
                            }
                        };
                        if admit_now {
                            let jid = pop_admission(&mut global_queue, jobs, config.admission)
                                .expect("queue non-empty"); // lint: allow(panicking) emptiness checked immediately above
                            admit_job(
                                jid,
                                p,
                                jobs,
                                &mut workers,
                                &mut arena,
                                &mut cursor_ids,
                                &mut sources_scratch,
                            );
                            started[jid as usize] = Some(round);
                            live_admitted += 1;
                            stats.admissions += 1;
                            if obs {
                                wobs[p].admissions += 1;
                            }
                            stealable_cache = None;
                        } else {
                            // Steal attempt: one full round; the stolen node
                            // (if any) starts executing next round.
                            stats.steal_attempts += 1;
                            if obs {
                                wobs[p].steal_attempts += 1;
                            }
                            let stealable = match stealable_cache {
                                Some(v) => v,
                                None => {
                                    let v = any_stealable(&workers, &blackholed);
                                    stealable_cache = Some(v);
                                    v
                                }
                            };
                            let hit = if stealable {
                                steal_into(
                                    p,
                                    &mut workers,
                                    &mut rng,
                                    config.victim,
                                    config.steal_amount,
                                    &blackholed,
                                )
                            } else {
                                burn_failed_attempts(&mut rng, &mut workers, p, config.victim, 1);
                                false
                            };
                            if hit {
                                stats.successful_steals += 1;
                                workers[p].failed_steals = 0;
                                if obs {
                                    wobs[p].successful_steals += 1;
                                }
                                stealable_cache = None;
                            } else {
                                workers[p].failed_steals =
                                    workers[p].failed_steals.saturating_add(1);
                                if obs {
                                    let o = &mut wobs[p];
                                    o.failed_steal_rounds += 1;
                                    o.max_failed_streak =
                                        o.max_failed_streak.max(workers[p].failed_steals);
                                }
                            }
                            if config.record_trace {
                                row.push(Action::Steal { hit });
                            }
                            continue;
                        }
                    }
                    StealCost::Free => {
                        // Instantaneous acquisition: steal attempts cost
                        // nothing; only executing work (or finding none)
                        // consumes the round. `k = 0` is admit-first.
                        if k == 0 {
                            if let Some(jid) =
                                pop_admission(&mut global_queue, jobs, config.admission)
                            {
                                admit_job(
                                    jid,
                                    p,
                                    jobs,
                                    &mut workers,
                                    &mut arena,
                                    &mut cursor_ids,
                                    &mut sources_scratch,
                                );
                                started[jid as usize] = Some(round);
                                live_admitted += 1;
                                stats.admissions += 1;
                                if obs {
                                    wobs[p].admissions += 1;
                                }
                                stealable_cache = None;
                            } else {
                                // Scan for stealable work.
                                let attempts = 2 * m.max(1) as u32; // lint: allow(truncating-cast) m is the processor count; a 2^32-processor instance is unrepresentable
                                let stealable = match stealable_cache {
                                    Some(v) => v,
                                    None => {
                                        let v = any_stealable(&workers, &blackholed);
                                        stealable_cache = Some(v);
                                        v
                                    }
                                };
                                if stealable {
                                    for _ in 0..attempts {
                                        stats.steal_attempts += 1;
                                        if obs {
                                            wobs[p].steal_attempts += 1;
                                        }
                                        if steal_into(
                                            p,
                                            &mut workers,
                                            &mut rng,
                                            config.victim,
                                            config.steal_amount,
                                            &blackholed,
                                        ) {
                                            stats.successful_steals += 1;
                                            if obs {
                                                wobs[p].successful_steals += 1;
                                            }
                                            stealable_cache = None;
                                            break;
                                        }
                                    }
                                } else {
                                    stats.steal_attempts += attempts as u64;
                                    if obs {
                                        wobs[p].steal_attempts += attempts as u64;
                                    }
                                    burn_failed_attempts(
                                        &mut rng,
                                        &mut workers,
                                        p,
                                        config.victim,
                                        attempts as u64,
                                    );
                                }
                            }
                        } else {
                            let stealable = match stealable_cache {
                                Some(v) => v,
                                None => {
                                    let v = any_stealable(&workers, &blackholed);
                                    stealable_cache = Some(v);
                                    v
                                }
                            };
                            if stealable {
                                for _ in 0..k {
                                    stats.steal_attempts += 1;
                                    if obs {
                                        wobs[p].steal_attempts += 1;
                                    }
                                    if steal_into(
                                        p,
                                        &mut workers,
                                        &mut rng,
                                        config.victim,
                                        config.steal_amount,
                                        &blackholed,
                                    ) {
                                        stats.successful_steals += 1;
                                        if obs {
                                            wobs[p].successful_steals += 1;
                                        }
                                        stealable_cache = None;
                                        break;
                                    }
                                }
                            } else {
                                stats.steal_attempts += k as u64;
                                if obs {
                                    wobs[p].steal_attempts += k as u64;
                                }
                                burn_failed_attempts(
                                    &mut rng,
                                    &mut workers,
                                    p,
                                    config.victim,
                                    k as u64,
                                );
                            }
                            if workers[p].current.is_none() {
                                if let Some(jid) =
                                    pop_admission(&mut global_queue, jobs, config.admission)
                                {
                                    admit_job(
                                        jid,
                                        p,
                                        jobs,
                                        &mut workers,
                                        &mut arena,
                                        &mut cursor_ids,
                                        &mut sources_scratch,
                                    );
                                    started[jid as usize] = Some(round);
                                    live_admitted += 1;
                                    stats.admissions += 1;
                                    if obs {
                                        wobs[p].admissions += 1;
                                    }
                                    stealable_cache = None;
                                }
                            }
                        }
                        if workers[p].current.is_none() {
                            stats.idle_steps += 1;
                            if obs {
                                wobs[p].idle_steps += 1;
                            }
                            if config.record_trace {
                                row.push(Action::Idle);
                            }
                            continue;
                        }
                    }
                }
            }

            // 2. Execute one unit of the current node.
            let (jid, v) = workers[p].current.expect("acquired work above"); // lint: allow(panicking) set on the acquisition path immediately above
            let job = &jobs[jid as usize];
            let cid = cursor_ids[jid as usize].expect("admitted job"); // lint: allow(panicking) invariant: every admitted job owns an arena cursor until completion
            let cursor = arena.get_mut(cid);
            stats.work_steps += 1;
            if obs {
                wobs[p].work_steps += 1;
            }
            workers[p].failed_steals = 0;
            ready_scratch.clear();
            match cursor
                .execute_unit_into(&job.dag, v, &mut ready_scratch)
                .expect("current node claimed") // lint: allow(panicking) invariant: executed nodes were claimed by this cursor
            {
                StepOutcome::InProgress => {}
                StepOutcome::NodeCompleted { job_completed } => {
                    workers[p].current = None;
                    if sampler.should_panic(jid, v) {
                        // Injected task panic: the job fails and is
                        // abandoned. Purge its tasks everywhere so no
                        // worker touches the dead job again.
                        stats.injected_panics += 1;
                        fault_events.push(FaultEvent {
                            round,
                            worker: Some(p),
                            job: Some(jid),
                            kind: FaultKind::TaskPanic,
                            detail: v as u64,
                        });
                        for w in workers.iter_mut() {
                            w.deque.retain(|t| t.0 != jid);
                            w.pending.retain(|t| t.0 != jid);
                            if w.current.is_some_and(|t| t.0 == jid) {
                                w.current = None;
                            }
                        }
                        orphans.retain(|t| t.0 != jid);
                        arena.release(cursor_ids[jid as usize].take().expect("cursor id")); // lint: allow(panicking) invariant: completion releases exactly the cursor admission installed
                        live_admitted -= 1;
                        completed += 1;
                        outcomes[jid as usize] = Some(JobOutcome {
                            job: jid,
                            arrival: job.arrival,
                            weight: job.weight,
                            start_round: started[jid as usize].expect("job admitted"), // lint: allow(panicking) invariant: start_round is recorded at admission, before execution
                            completion_round: round,
                            completion: speed.round_end(round),
                            flow: speed.flow_time(job.arrival, round),
                            status: JobStatus::Failed,
                        });
                        if config.record_trace {
                            row.push(Action::Work { job: jid, node: v });
                        }
                        continue;
                    }
                    // Claim enabled nodes now (they are exclusively ours)
                    // but defer deque publication to the end of the round.
                    let cursor = arena.get_mut(cid);
                    for &u in ready_scratch.iter() {
                        cursor.claim(u).expect("newly ready claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                        workers[p].pending.push((jid, u));
                    }
                    if job_completed {
                        arena.release(cursor_ids[jid as usize].take().expect("cursor id")); // lint: allow(panicking) invariant: completion releases exactly the cursor admission installed
                        live_admitted -= 1;
                        completed += 1;
                        outcomes[jid as usize] = Some(JobOutcome {
                            job: jid,
                            arrival: job.arrival,
                            weight: job.weight,
                            start_round: started[jid as usize].expect("job admitted"), // lint: allow(panicking) invariant: start_round is recorded at admission, before execution
                            completion_round: round,
                            completion: speed.round_end(round),
                            flow: speed.flow_time(job.arrival, round),
                            status: JobStatus::Completed,
                        });
                    }
                }
            }
            if config.record_trace {
                row.push(Action::Work { job: jid, node: v });
            }
        }

        // Flush deferred pushes (bottom of the owner's deque, enable order).
        for w in &mut workers {
            for task in w.pending.drain(..) {
                w.deque.push_back(task);
            }
        }

        last_busy_round = round;
        if let Some(t) = trace.as_mut() {
            t.push_row(row);
        }
        round += 1;
    }

    let outcomes: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("all jobs completed")) // lint: allow(panicking) invariant: the engine loop exits only after every job completes
        .collect();
    if obs {
        for (p, o) in wobs.iter().enumerate() {
            rec.counter_at("ws.worker.work_steps", p, o.work_steps);
            rec.counter_at("ws.worker.steal_attempts", p, o.steal_attempts);
            rec.counter_at("ws.worker.successful_steals", p, o.successful_steals);
            rec.counter_at("ws.worker.failed_steal_rounds", p, o.failed_steal_rounds);
            rec.counter_at("ws.worker.admissions", p, o.admissions);
            rec.counter_at("ws.worker.idle_steps", p, o.idle_steps);
            rec.counter_at("ws.worker.max_failed_streak", p, o.max_failed_streak);
        }
        rec.counter("ws.work_steps", stats.work_steps);
        rec.counter("ws.steal_attempts", stats.steal_attempts);
        rec.counter("ws.successful_steals", stats.successful_steals);
        rec.counter("ws.admissions", stats.admissions);
        rec.counter("ws.idle_steps", stats.idle_steps);
        rec.counter("ws.faulted_steps", stats.faulted_steps);
        rec.counter("ws.crashed_workers", stats.crashed_workers);
        rec.counter("ws.reinjected_tasks", stats.reinjected_tasks);
        rec.counter("ws.injected_panics", stats.injected_panics);
        rec.gauge("ws.total_rounds", (last_busy_round + 1) as f64);
        for o in &outcomes {
            rec.sample("ws.flow_ticks", o.flow.to_f64());
        }
    }
    let result = SimResult {
        m,
        speed,
        total_rounds: last_busy_round + 1,
        outcomes,
        stats,
        samples,
        fault_events,
    };
    (result, trace)
}

/// Convenience wrapper returning only the [`SimResult`].
pub fn simulate_worksteal(
    instance: &Instance,
    config: &SimConfig,
    policy: StealPolicy,
    seed: u64,
) -> SimResult {
    run_worksteal(instance, config, policy, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use parflow_dag::{shapes, Job};
    use parflow_time::{Rational, Speed};
    use std::sync::Arc;

    fn inst_seq(arrivals_works: &[(u64, u64)]) -> Instance {
        Instance::new(
            arrivals_works
                .iter()
                .enumerate()
                .map(|(i, &(a, w))| Job::new(i as u32, a, Arc::new(shapes::single_node(w))))
                .collect(),
        )
    }

    #[test]
    fn policy_names_and_k() {
        assert_eq!(StealPolicy::AdmitFirst.name(), "admit-first");
        assert_eq!(StealPolicy::StealKFirst { k: 16 }.name(), "steal-16-first");
        assert_eq!(StealPolicy::AdmitFirst.k(), 0);
        assert_eq!(StealPolicy::StealKFirst { k: 4 }.k(), 4);
    }

    #[test]
    fn single_sequential_job_no_overhead() {
        // One job, one worker: admitted at round 0, executed back to back.
        let inst = inst_seq(&[(0, 7)]);
        let r = simulate_worksteal(&inst, &SimConfig::new(1), StealPolicy::AdmitFirst, 1);
        assert_eq!(r.max_flow(), Rational::from_int(7));
        assert_eq!(r.stats.work_steps, 7);
        assert_eq!(r.stats.admissions, 1);
        assert_eq!(r.stats.steal_attempts, 0);
    }

    #[test]
    fn admit_first_runs_jobs_sequentially_when_queue_full() {
        // 4 unit jobs, 2 workers, all arrive at 0: each worker admits one,
        // then the next; flows 1,1,2,2 in some assignment.
        let inst = inst_seq(&[(0, 1), (0, 1), (0, 1), (0, 1)]);
        let r = simulate_worksteal(&inst, &SimConfig::new(2), StealPolicy::AdmitFirst, 7);
        assert_eq!(r.max_flow(), Rational::from_int(2));
        assert_eq!(r.stats.admissions, 4);
        assert_eq!(r.stats.work_steps, 4);
    }

    #[test]
    fn steal_k_first_delays_admission() {
        // 2 unit jobs, 2 workers, k=3: with nothing to steal, workers burn 3
        // failed steal rounds before admitting.
        let inst = inst_seq(&[(0, 1), (0, 1)]);
        let r = simulate_worksteal(
            &inst,
            &SimConfig::new(2),
            StealPolicy::StealKFirst { k: 3 },
            7,
        );
        // Jobs complete in round 3 (after 3 steal rounds), flow 4 each.
        assert_eq!(r.max_flow(), Rational::from_int(4));
        assert_eq!(r.stats.steal_attempts, 6);
        assert_eq!(r.stats.admissions, 2);
    }

    #[test]
    fn counter_accumulates_over_quiescence() {
        // Second job arrives after a long quiescent gap: the fast-forward
        // counts every skipped round as a failed steal (formerly saturating
        // at u32::MAX), so the job is admitted immediately on arrival.
        let inst = inst_seq(&[(0, 1), (1000, 1)]);
        let r = simulate_worksteal(
            &inst,
            &SimConfig::new(2),
            StealPolicy::StealKFirst { k: 16 },
            3,
        );
        assert_eq!(r.outcomes[1].flow, Rational::from_int(1));
    }

    #[test]
    fn quiescent_gap_past_u32_max_counts_exactly() {
        // Regression for the u32 saturation bug: a quiescent gap longer
        // than u32::MAX rounds must be counted exactly. The old `u32`
        // counter clamped `gap` to u32::MAX; only the obs layer can see
        // the difference, because admission merely compares `>= k`.
        let gap = u32::MAX as u64 + 70;
        let inst = inst_seq(&[(0, 1), (gap, 1)]);
        let mut rec = parflow_obs::AggregatingRecorder::new();
        let (r, _) = run_worksteal_observed(
            &inst,
            &SimConfig::new(2),
            StealPolicy::StealKFirst { k: 16 },
            3,
            &mut rec,
        );
        // Scheduling behaviour is unchanged by the widening.
        assert_eq!(r.outcomes[1].flow, Rational::from_int(1));
        // The max failed-steal streak exceeds what a u32 could represent:
        // some worker idled through (almost) the whole gap.
        let streak = (0..2)
            .map(|p| rec.counter_value("ws.worker.max_failed_streak", Some(p)))
            .max()
            .unwrap();
        assert!(
            streak > u32::MAX as u64,
            "streak {streak} still fits in u32 — counter saturated?"
        );
        // Quiescent rounds are idle, not steal attempts: per-worker
        // attempt counters must agree with the engine aggregate.
        let sum: u64 = (0..2)
            .map(|p| rec.counter_value("ws.worker.steal_attempts", Some(p)))
            .sum();
        assert_eq!(sum, r.stats.steal_attempts);
    }

    #[test]
    fn observed_run_matches_unobserved_and_totals_add_up() {
        // An enabled recorder must not perturb the simulation, and the
        // per-worker counters must partition the engine-level totals.
        let dag = Arc::new(shapes::diamond(6, 3));
        let jobs: Vec<Job> = (0..12)
            .map(|i| Job::new(i, (i as u64) * 2, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(4);
        let policy = StealPolicy::StealKFirst { k: 2 };
        let plain = simulate_worksteal(&inst, &cfg, policy, 42);
        let mut rec = parflow_obs::AggregatingRecorder::new();
        let (observed, _) = run_worksteal_observed(&inst, &cfg, policy, 42, &mut rec);
        assert_eq!(plain.outcomes, observed.outcomes);
        assert_eq!(plain.stats, observed.stats);
        let m = cfg.m;
        let sum = |name: &str| -> u64 { (0..m).map(|p| rec.counter_value(name, Some(p))).sum() };
        assert_eq!(sum("ws.worker.work_steps"), observed.stats.work_steps);
        assert_eq!(
            sum("ws.worker.steal_attempts"),
            observed.stats.steal_attempts
        );
        assert_eq!(
            sum("ws.worker.successful_steals"),
            observed.stats.successful_steals
        );
        assert_eq!(sum("ws.worker.admissions"), observed.stats.admissions);
        assert_eq!(
            rec.counter_value("ws.work_steps", None),
            observed.stats.work_steps
        );
        assert_eq!(
            rec.gauge_value("ws.total_rounds", None),
            Some(observed.total_rounds as f64)
        );
        assert_eq!(rec.samples("ws.flow_ticks").len(), observed.outcomes.len());
    }

    #[test]
    fn parallel_job_gets_stolen() {
        // A wide diamond on 4 workers: thieves should pick up the middles.
        let dag = Arc::new(shapes::diamond(8, 4));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let r = simulate_worksteal(&inst, &SimConfig::new(4), StealPolicy::AdmitFirst, 11);
        assert!(r.stats.successful_steals > 0, "expected successful steals");
        // Flow must beat fully sequential execution (8*4+2 = 34 work):
        // even with steal overhead, 4 workers finish far sooner.
        assert!(r.max_flow() < Rational::from_int(34));
        // And cannot beat span (2 + 4 = 6... source + chunk + sink = 1+4+1).
        assert!(r.max_flow() >= Rational::from_int((1 + 4 + 1) as i128));
        assert_eq!(r.stats.work_steps, 34);
    }

    #[test]
    fn deterministic_for_seed() {
        let dag = Arc::new(shapes::diamond(6, 3));
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::new(i, (i as u64) * 3, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(4);
        let policy = StealPolicy::StealKFirst { k: 2 };
        let a = simulate_worksteal(&inst, &cfg, policy, 99);
        let b = simulate_worksteal(&inst, &cfg, policy, 99);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_seeds_can_differ() {
        let dag = Arc::new(shapes::diamond(16, 2));
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, i as u64, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(8);
        let policy = StealPolicy::StealKFirst { k: 4 };
        let a = simulate_worksteal(&inst, &cfg, policy, 1);
        let b = simulate_worksteal(&inst, &cfg, policy, 2);
        // Work conservation regardless of randomness.
        assert_eq!(a.stats.work_steps, b.stats.work_steps);
        assert_eq!(a.stats.work_steps, inst.total_work());
    }

    #[test]
    fn trace_validates_admit_first() {
        let dag = Arc::new(shapes::diamond(4, 2));
        let jobs: Vec<Job> = (0..8)
            .map(|i| Job::new(i, i as u64 * 2, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let (r, trace) = run_worksteal(
            &inst,
            &SimConfig::new(3).with_trace(),
            StealPolicy::AdmitFirst,
            5,
        );
        let trace = trace.unwrap();
        assert!(trace.validate(&inst).is_ok());
        let (w, s, _, _) = trace.action_counts();
        assert_eq!(w, r.stats.work_steps);
        assert_eq!(s, r.stats.steal_attempts);
    }

    #[test]
    fn trace_validates_steal_k_first_augmented() {
        let dag = Arc::new(shapes::fork_join(3, 2));
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::new(i, i as u64 * 5, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let (_, trace) = run_worksteal(
            &inst,
            &SimConfig::new(4)
                .with_speed(Speed::new(11, 10))
                .with_trace(),
            StealPolicy::StealKFirst { k: 4 },
            5,
        );
        assert!(trace.unwrap().validate(&inst).is_ok());
    }

    #[test]
    fn one_worker_steals_fail() {
        // m = 1: steal attempts always fail; steal-k-first still admits
        // after k failures.
        let inst = inst_seq(&[(0, 2)]);
        let r = simulate_worksteal(
            &inst,
            &SimConfig::new(1),
            StealPolicy::StealKFirst { k: 2 },
            0,
        );
        assert_eq!(r.stats.steal_attempts, 2);
        assert_eq!(r.stats.successful_steals, 0);
        assert_eq!(r.max_flow(), Rational::from_int(4)); // 2 steals + 2 work
    }

    #[test]
    fn work_conservation() {
        let dag = Arc::new(shapes::fork_join(4, 3));
        let jobs: Vec<Job> = (0..12)
            .map(|i| Job::new(i, i as u64 * 7, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        for policy in [
            StealPolicy::AdmitFirst,
            StealPolicy::StealKFirst { k: 1 },
            StealPolicy::StealKFirst { k: 16 },
        ] {
            let r = simulate_worksteal(&inst, &SimConfig::new(4), policy, 42);
            assert_eq!(r.stats.work_steps, inst.total_work(), "{}", policy.name());
            assert_eq!(r.outcomes.len(), inst.len());
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![]);
        let r = simulate_worksteal(&inst, &SimConfig::new(2), StealPolicy::AdmitFirst, 0);
        assert!(r.outcomes.is_empty());
    }

    #[test]
    fn sampling_collects_backlog_snapshots() {
        let dag = Arc::new(shapes::parallel_for(40, 8));
        let jobs: Vec<Job> = (0..30)
            .map(|i| Job::new(i, i as u64, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(2).with_sampling(5);
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 3);
        assert!(!r.samples.is_empty());
        // Sampled rounds are multiples of the interval and increasing.
        let mut prev = None;
        for s in &r.samples {
            assert_eq!(s.round % 5, 0);
            if let Some(p) = prev {
                assert!(s.round > p);
            }
            prev = Some(s.round);
        }
        // Without sampling, no samples.
        let r2 = simulate_worksteal(&inst, &SimConfig::new(2), StealPolicy::AdmitFirst, 3);
        assert!(r2.samples.is_empty());
    }

    #[test]
    fn sampling_covers_quiescent_gaps() {
        // Two jobs separated by a long gap: sample_every multiples inside
        // the fast-forwarded span must still be emitted (with an empty
        // backlog) so sampled series stay evenly spaced across gaps.
        let inst = inst_seq(&[(0, 3), (1000, 3)]);
        let cfg = SimConfig::new(2).with_sampling(100);
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 3);
        let rounds: Vec<u64> = r.samples.iter().map(|s| s.round).collect();
        for k in 0..=10u64 {
            assert!(rounds.contains(&(k * 100)), "missing sample at {}", k * 100);
        }
        let gap = r
            .samples
            .iter()
            .find(|s| s.round == 500)
            .expect("gap sample");
        assert_eq!((gap.queued, gap.live, gap.deque_tasks), (0, 0, 0));
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        // The untraced run may take the event-window fast path; the traced
        // run never does. Results must be identical either way: same
        // outcomes, stats, samples and RNG consumption.
        let dag = Arc::new(shapes::diamond(6, 3));
        let mut jobs: Vec<Job> = (0..12)
            .map(|i| Job::new(i, (i as u64) * 7, dag.clone()))
            .collect();
        // A long sequential tail after a gap exercises wide windows.
        jobs.push(Job::new(12, 300, Arc::new(shapes::single_node(40))));
        let inst = Instance::new(jobs);
        for cfg in [
            SimConfig::new(3),
            SimConfig::new(3).with_free_steals(),
            SimConfig::new(3).with_victim_scan(),
            SimConfig::new(3).with_sampling(7),
            SimConfig::new(1),
        ] {
            for policy in [StealPolicy::AdmitFirst, StealPolicy::StealKFirst { k: 3 }] {
                let fast = simulate_worksteal(&inst, &cfg, policy, 42);
                let (slow, trace) = run_worksteal(&inst, &cfg.clone().with_trace(), policy, 42);
                assert_eq!(fast.outcomes, slow.outcomes, "{}", policy.name());
                assert_eq!(fast.stats, slow.stats, "{}", policy.name());
                assert_eq!(fast.samples, slow.samples, "{}", policy.name());
                assert_eq!(fast.total_rounds, slow.total_rounds, "{}", policy.name());
                trace.unwrap().validate(&inst).unwrap();
            }
        }
    }

    #[test]
    fn free_steals_admit_without_delay() {
        // With free steals, steal-k-first admits in the same round once
        // nothing is stealable: 2 unit jobs on 2 workers finish in round 0.
        let inst = inst_seq(&[(0, 1), (0, 1)]);
        let cfg = SimConfig::new(2).with_free_steals();
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 7);
        assert_eq!(r.max_flow(), Rational::ONE);
        assert_eq!(r.stats.admissions, 2);
        // Steal attempts happened (k per worker) but cost nothing.
        assert!(r.stats.steal_attempts > 0);
    }

    #[test]
    fn free_steals_prefer_existing_jobs() {
        // One wide job admitted plus queued jobs: under steal-k-first with
        // free steals, idle workers help the admitted job instead of
        // admitting, so the wide job finishes near its span.
        let wide = Job::new(0, 0, Arc::new(shapes::diamond(8, 4)));
        let seq: Vec<Job> = (1..4)
            .map(|i| Job::new(i, 0, Arc::new(shapes::single_node(4))))
            .collect();
        let mut jobs = vec![wide];
        jobs.extend(seq);
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(4).with_free_steals();
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 32 }, 3);
        assert_eq!(r.stats.work_steps, inst.total_work());
        assert!(r.stats.successful_steals > 0);
    }

    #[test]
    fn free_steal_trace_validates() {
        let dag = Arc::new(shapes::fork_join(3, 2));
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::new(i, i as u64 * 4, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        for policy in [StealPolicy::AdmitFirst, StealPolicy::StealKFirst { k: 8 }] {
            let (r, trace) = run_worksteal(
                &inst,
                &SimConfig::new(3).with_free_steals().with_trace(),
                policy,
                9,
            );
            let trace = trace.unwrap();
            assert!(trace.validate(&inst).is_ok(), "{}", policy.name());
            let (w, s, _, _) = trace.action_counts();
            assert_eq!(w, r.stats.work_steps);
            // Free steals never appear as round actions.
            assert_eq!(s, 0);
        }
    }

    #[test]
    fn weighted_admission_pops_heaviest() {
        // Three jobs queued at once on one worker: weighted admission runs
        // the heaviest first regardless of arrival order.
        let jobs = vec![
            Job::weighted(0, 0, 1, Arc::new(shapes::single_node(3))),
            Job::weighted(1, 0, 100, Arc::new(shapes::single_node(3))),
            Job::weighted(2, 0, 10, Arc::new(shapes::single_node(3))),
        ];
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(1).with_weighted_admission();
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 3);
        // Heaviest (job 1) completes first, then 10, then 1.
        let by_completion = |jid: u32| r.outcomes[jid as usize].completion_round;
        assert!(by_completion(1) < by_completion(2));
        assert!(by_completion(2) < by_completion(0));
        // FIFO admission would run arrival order instead.
        let r2 = simulate_worksteal(&inst, &SimConfig::new(1), StealPolicy::AdmitFirst, 3);
        let by_completion2 = |jid: u32| r2.outcomes[jid as usize].completion_round;
        assert!(by_completion2(0) < by_completion2(1));
    }

    #[test]
    fn weighted_admission_trace_validates() {
        let mut jobs = Vec::new();
        for i in 0..10u32 {
            jobs.push(Job::weighted(
                i,
                i as u64 * 3,
                1 + (i as u64 * 7) % 13,
                Arc::new(shapes::diamond(3, 2)),
            ));
        }
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(3).with_weighted_admission().with_trace();
        let (r, trace) = run_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 2 }, 11);
        assert!(trace.unwrap().validate(&inst).is_ok());
        assert_eq!(r.stats.work_steps, inst.total_work());
    }

    #[test]
    fn half_steals_transfer_multiple_tasks() {
        // One wide job whose chunks pile up in the owner's deque; a
        // half-steal should move several at once.
        let dag = Arc::new(shapes::diamond(16, 8));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let cfg = SimConfig::new(4).with_half_steals();
        let (r, trace) = run_worksteal(&inst, &cfg.with_trace(), StealPolicy::AdmitFirst, 3);
        assert!(trace.unwrap().validate(&inst).is_ok());
        assert_eq!(r.stats.work_steps, inst.total_work());
        assert!(r.stats.successful_steals > 0);
    }

    #[test]
    fn half_steals_spread_work_faster() {
        // Distributing 32 chunks by single steals takes ≥ 31 successful
        // steals; half-stealing needs O(log) — fewer steal successes for
        // the same schedule length or a shorter flow.
        let dag = Arc::new(shapes::diamond(32, 16));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let one = simulate_worksteal(&inst, &SimConfig::new(8), StealPolicy::AdmitFirst, 9);
        let half = simulate_worksteal(
            &inst,
            &SimConfig::new(8).with_half_steals(),
            StealPolicy::AdmitFirst,
            9,
        );
        assert!(
            half.max_flow() <= one.max_flow(),
            "half {} vs one {}",
            half.max_flow().to_f64(),
            one.max_flow().to_f64()
        );
    }

    #[test]
    fn crash_reinjects_orphans_and_work_completes() {
        use crate::fault::{FaultKind, FaultPlan};
        // One wide job spread over 4 workers; worker 1 dies mid-run. Its
        // deque must be reinjected and every unit still executed.
        let dag = Arc::new(shapes::diamond(24, 2));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let cfg = SimConfig::new(4).with_faults(FaultPlan::none().crash(1, 3));
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 11);
        assert!(r.all_completed());
        assert_eq!(r.stats.work_steps, inst.total_work());
        assert_eq!(r.stats.crashed_workers, 1);
        assert!(r
            .fault_events
            .iter()
            .any(|e| e.kind == FaultKind::Crash && e.worker == Some(1) && e.round == 3));
        // If the dead worker held tasks, a reinjection event follows.
        let reinjected: u64 = r
            .fault_events
            .iter()
            .filter(|e| e.kind == FaultKind::OrphanReinjection)
            .map(|e| e.detail)
            .sum();
        assert_eq!(reinjected, r.stats.reinjected_tasks);
    }

    #[test]
    fn crash_before_start_leaves_worker_out() {
        use crate::fault::FaultPlan;
        // Worker 0 dead from round 0: the other worker does everything.
        let inst = inst_seq(&[(0, 3), (0, 3)]);
        let cfg = SimConfig::new(2).with_faults(FaultPlan::none().crash(0, 0));
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 5);
        assert!(r.all_completed());
        assert_eq!(r.stats.work_steps, 6);
        // Serial execution on the survivor: last job waits for the first.
        assert_eq!(r.max_flow(), Rational::from_int(6));
    }

    #[test]
    fn injected_panic_fails_job_without_hanging() {
        use crate::fault::{FaultPlan, PPM};
        // 100% panic probability: every job fails at its first node
        // completion; the run still terminates and accounts every job.
        let inst = inst_seq(&[(0, 5), (2, 5), (4, 5)]);
        let cfg = SimConfig::new(2).with_faults(FaultPlan::none().with_panic_ppm(PPM));
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 9);
        assert_eq!(r.outcomes.len(), 3);
        assert!(!r.all_completed());
        assert_eq!(r.unfinished().len(), 3);
        assert_eq!(r.stats.injected_panics, 3);
    }

    #[test]
    fn partial_panic_fails_some_jobs_only() {
        use crate::fault::{FaultPlan, PanicSampler};
        let inst = inst_seq(&[(0, 1), (0, 1), (0, 1), (0, 1), (0, 1), (0, 1)]);
        let seed = 21;
        let ppm = 400_000;
        let cfg = SimConfig::new(2).with_faults(FaultPlan::none().with_panic_ppm(ppm));
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, seed);
        // The sampler is keyed by (seed, job, node), so the failed set is
        // exactly what PanicSampler predicts — independent of scheduling.
        let sampler = PanicSampler::new(seed, ppm);
        for o in &r.outcomes {
            let expect_fail = sampler.should_panic(o.job, 0);
            assert_eq!(!o.status.is_completed(), expect_fail, "job {}", o.job);
        }
        assert!(!r.all_completed());
        assert!(r.unfinished().len() < 6, "some jobs must survive");
    }

    #[test]
    fn stall_freezes_worker_but_deque_stays_stealable() {
        use crate::fault::{FaultKind, FaultPlan};
        let dag = Arc::new(shapes::diamond(16, 2));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        // Worker 0 admits, then stalls; thieves must still drain its deque.
        let cfg = SimConfig::new(3).with_faults(FaultPlan::none().stall(0, 2, 20));
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 4);
        assert!(r.all_completed());
        assert_eq!(r.stats.work_steps, inst.total_work());
        assert!(r.stats.faulted_steps > 0);
        let begins = r
            .fault_events
            .iter()
            .filter(|e| e.kind == FaultKind::StallBegin)
            .count();
        let ends = r
            .fault_events
            .iter()
            .filter(|e| e.kind == FaultKind::StallEnd)
            .count();
        assert_eq!(begins, 1);
        assert!(
            ends <= 1,
            "at most one end event (run may finish mid-stall)"
        );
    }

    #[test]
    fn slowdown_halves_throughput_deterministically() {
        use crate::fault::FaultPlan;
        // Single worker at half speed: a 10-unit job takes ~20 rounds.
        let inst = inst_seq(&[(0, 10)]);
        let cfg = SimConfig::new(1).with_faults(FaultPlan::none().slowdown(0, 500_000));
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 1);
        assert!(r.all_completed());
        let flow = r.outcomes[0].flow;
        assert!(
            flow >= Rational::from_int(19) && flow <= Rational::from_int(21),
            "half-speed flow {flow} out of range"
        );
        // Deterministic: same plan, same result.
        let r2 = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 1);
        assert_eq!(r.outcomes, r2.outcomes);
    }

    #[test]
    fn blackhole_starves_thieves() {
        use crate::fault::FaultPlan;
        // All work sits on worker 0, which is blackholed: steals never
        // succeed, yet the owner finishes alone.
        let dag = Arc::new(shapes::diamond(12, 2));
        let inst = Instance::new(vec![Job::new(0, 0, dag)]);
        let cfg = SimConfig::new(3).with_faults(FaultPlan::none().blackhole(0));
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 8);
        assert!(r.all_completed());
        assert_eq!(r.stats.successful_steals, 0);
        assert!(r.stats.steal_attempts > 0);
        // Without the blackhole the same seed sees successful steals.
        let free = simulate_worksteal(&inst, &SimConfig::new(3), StealPolicy::AdmitFirst, 8);
        assert!(free.stats.successful_steals > 0);
    }

    #[test]
    fn crash_during_quiescent_gap_fires_at_its_round() {
        use crate::fault::{FaultKind, FaultPlan};
        // Crash round 50 falls inside the arrival gap [1, 1000): the
        // fast-forward must stop there so the event fires on time.
        let inst = inst_seq(&[(0, 1), (1000, 1)]);
        let cfg = SimConfig::new(2).with_faults(FaultPlan::none().crash(1, 50));
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 2);
        assert!(r.all_completed());
        let crash = r
            .fault_events
            .iter()
            .find(|e| e.kind == FaultKind::Crash)
            .expect("crash fired");
        assert_eq!(crash.round, 50);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_plan_is_rejected_at_engine_start() {
        use crate::fault::FaultPlan;
        let inst = inst_seq(&[(0, 1)]);
        let cfg = SimConfig::new(2).with_faults(FaultPlan::none().crash(5, 0));
        let _ = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 0);
    }

    #[test]
    fn fault_free_plan_matches_no_plan() {
        // An empty FaultPlan must not perturb the rng stream or schedule.
        let dag = Arc::new(shapes::diamond(6, 3));
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::new(i, (i as u64) * 3, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(4);
        let with_plan = cfg.clone().with_faults(crate::fault::FaultPlan::none());
        let policy = StealPolicy::StealKFirst { k: 2 };
        let a = simulate_worksteal(&inst, &cfg, policy, 99);
        let b = simulate_worksteal(&inst, &with_plan, policy, 99);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn free_steals_never_slower_than_unit_steps() {
        // Same instance, same seed: removing steal cost cannot hurt max
        // flow on this simple workload (statistically; fixed seed makes it
        // deterministic).
        let dag = Arc::new(shapes::parallel_for(40, 8));
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::new(i, i as u64 * 10, dag.clone()))
            .collect();
        let inst = Instance::new(jobs);
        let policy = StealPolicy::StealKFirst { k: 16 };
        let unit = simulate_worksteal(&inst, &SimConfig::new(4), policy, 5);
        let free = simulate_worksteal(&inst, &SimConfig::new(4).with_free_steals(), policy, 5);
        assert!(free.max_flow() <= unit.max_flow());
    }
}
