//! The centralized, preemptive, priority-list engine behind FIFO (Section 3)
//! and Biggest-Weight-First (Section 7).
//!
//! At the start of every round the engine walks the active jobs in priority
//! order and hands out processors: the first job gets one processor per
//! ready node (up to `m`), then the next job, and so on until processors or
//! ready nodes run out — exactly the assignment rule the paper gives for
//! FIFO and BWF. Jobs are preempted and re-assigned every round, which is
//! what makes the idealized scheduler expensive in practice and motivates
//! work stealing (Section 4).

use crate::config::SimConfig;
use crate::fault::JobStatus;
use crate::result::{EngineStats, JobOutcome, SimResult};
use crate::trace::{Action, ScheduleTrace};
use parflow_dag::{CursorArena, CursorId, Instance, Job, JobId, NodeId, StepOutcome};
use parflow_obs::{NullRecorder, Recorder};
use parflow_time::Round;

#[cfg(any(test, feature = "reference-engine"))]
use parflow_dag::{DagCursor, UnitOutcome};

/// A total priority order over jobs, fixed at arrival.
///
/// Smaller keys run first. Both of the paper's centralized schedulers are
/// instances: FIFO orders by arrival time and BWF by descending weight.
pub trait JobPriority {
    /// The sort key for `job`; computed once when the job arrives.
    fn key(&self, job: &Job) -> (u64, u64, u32);
    /// Human-readable scheduler name.
    fn name(&self) -> &'static str;
}

/// First-In-First-Out: jobs ordered by arrival time, ties by id.
/// `(1+ε)`-speed `O(1/ε)`-competitive for maximum flow time (Theorem 3.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Fifo;

impl JobPriority for Fifo {
    fn key(&self, job: &Job) -> (u64, u64, u32) {
        (job.arrival, 0, job.id)
    }
    fn name(&self) -> &'static str {
        "FIFO"
    }
}

/// Biggest-Weight-First: jobs ordered by descending weight, ties by arrival
/// then id. `(1+ε)`-speed `O(1/ε²)`-competitive for maximum *weighted* flow
/// time (Theorem 7.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct BiggestWeightFirst;

impl JobPriority for BiggestWeightFirst {
    fn key(&self, job: &Job) -> (u64, u64, u32) {
        (u64::MAX - job.weight, job.arrival, job.id)
    }
    fn name(&self) -> &'static str {
        "BWF"
    }
}

/// Last-In-First-Out: a strawman that prioritizes the newest job. Used in
/// tests and ablations to show that priority order matters (LIFO starves
/// early jobs and its max flow degrades with load).
#[derive(Clone, Copy, Debug, Default)]
pub struct Lifo;

impl JobPriority for Lifo {
    fn key(&self, job: &Job) -> (u64, u64, u32) {
        (u64::MAX - job.arrival, 0, u32::MAX - job.id)
    }
    fn name(&self) -> &'static str {
        "LIFO"
    }
}

/// Shortest-Job-First by total work: a **clairvoyant** strawman (it reads
/// `W_i`, which the paper's non-clairvoyant setting forbids). Useful in
/// ablations: SJF optimizes average flow but starves large jobs, so its
/// *maximum* flow degrades exactly where FIFO shines.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShortestJobFirst;

impl JobPriority for ShortestJobFirst {
    fn key(&self, job: &Job) -> (u64, u64, u32) {
        (job.work(), job.arrival, job.id)
    }
    fn name(&self) -> &'static str {
        "SJF"
    }
}

/// Simulate a centralized priority scheduler on `instance`.
///
/// Returns the per-job outcomes plus, if `config.record_trace`, the full
/// [`ScheduleTrace`].
///
/// The engine steps by **event horizons** rather than single rounds: the
/// engine is deterministic and the assignment rule depends only on the
/// active set and the jobs' ready frontiers, so between two consecutive
/// events (a job arrival or a node completion) every round repeats the
/// same processor assignment. The engine computes that assignment once,
/// derives the span `Δ = min(next arrival, earliest node completion)` and
/// consumes all `Δ` rounds in one bulk update — bit-identical to the
/// round-by-round reference (see `run_priority_reference`), but
/// `O(events)` instead of `O(rounds)` assignment work.
pub fn run_priority<P: JobPriority>(
    instance: &Instance,
    config: &SimConfig,
    policy: &P,
) -> (SimResult, Option<ScheduleTrace>) {
    run_priority_observed(instance, config, policy, &mut NullRecorder)
}

/// [`run_priority`] with a [`Recorder`] attached. With the recorder
/// disabled the run is bit-identical to `run_priority`. With it enabled,
/// `central.*` counters (work/idle steps, event horizons, quiescent jumps),
/// a `central.total_rounds` gauge and per-job `central.flow_ticks` samples
/// are emitted at the end of the run.
pub fn run_priority_observed<P: JobPriority>(
    instance: &Instance,
    config: &SimConfig,
    policy: &P,
    rec: &mut dyn Recorder,
) -> (SimResult, Option<ScheduleTrace>) {
    run_priority_scratch(
        instance,
        config,
        policy,
        rec,
        &mut CentralScratch::default(),
    )
}

/// Reusable storage of the centralized engine, shared across the runs of a
/// [`run_priority_batch`] call: the cursor arena plus every per-run buffer
/// whose capacity is worth keeping warm. A fresh (default) scratch makes
/// `run_priority_scratch` exactly `run_priority_observed`.
#[derive(Default)]
struct CentralScratch {
    arena: CursorArena,
    cursor_ids: Vec<Option<CursorId>>,
    active: Vec<((u64, u64, u32), JobId)>,
    outcomes: Vec<Option<JobOutcome>>,
    started: Vec<Option<Round>>,
    claimed: Vec<(JobId, NodeId)>,
    ready_buf: Vec<NodeId>,
    ready_scratch: Vec<NodeId>,
}

/// [`run_priority_observed`] over caller-provided scratch storage. The
/// scratch is reset on entry, so results are independent of what ran in it
/// before — only buffer capacity carries over.
fn run_priority_scratch<P: JobPriority>(
    instance: &Instance,
    config: &SimConfig,
    policy: &P,
    rec: &mut dyn Recorder,
    scratch: &mut CentralScratch,
) -> (SimResult, Option<ScheduleTrace>) {
    let jobs = instance.jobs();
    let n = jobs.len();
    let m = config.m;
    let speed = config.speed;

    // Per-job cursor state lives in a recycled arena: a slot is allocated
    // at arrival and released at completion, so the number of slots (and
    // their buffer capacity) is bounded by peak concurrent jobs, not `n`.
    let CentralScratch {
        arena,
        cursor_ids,
        active,
        outcomes,
        started,
        claimed,
        ready_buf,
        ready_scratch,
    } = scratch;
    arena.recycle_all();
    cursor_ids.clear();
    cursor_ids.resize(n, None);
    // Active jobs as (key, id), kept sorted ascending by key.
    active.clear();
    outcomes.clear();
    outcomes.resize(n, None);
    started.clear();
    started.resize(n, None);
    let mut stats = EngineStats::default();
    let mut trace = config.record_trace.then(|| ScheduleTrace::new(m, speed));

    let mut next_arrival = 0usize;
    let mut completed = 0usize;
    let mut round: Round = 0;
    let mut last_busy_round: Round = 0;

    // Event-horizon telemetry, kept in locals (not EngineStats, which
    // goldens bit-compare) and flushed once at the end when observing.
    let obs = rec.enabled();
    let mut horizons: u64 = 0;
    let mut quiescent_jumps: u64 = 0;

    // Every round with an active job executes at least one unit, so this
    // bound can only be exceeded by an engine bug.
    let safety_cap: Round = speed.first_round_at_or_after(instance.last_arrival())
        + instance.total_work()
        + n as Round
        + 16;

    while completed < n {
        assert!(round <= safety_cap, "centralized engine exceeded round cap");

        // Activate arrivals visible at the start of this round.
        while next_arrival < n && speed.arrived_by_round(jobs[next_arrival].arrival, round) {
            let job = &jobs[next_arrival];
            let key = policy.key(job);
            let pos = active.partition_point(|&(k, _)| k < key);
            active.insert(pos, (key, job.id));
            cursor_ids[job.id as usize] = Some(arena.alloc(&job.dag));
            next_arrival += 1;
        }

        if active.is_empty() {
            // Quiescent: fast-forward to the next arrival (run-length
            // encoded as one idle span when tracing).
            debug_assert!(next_arrival < n, "no active jobs but none left to arrive");
            let target = speed.first_round_at_or_after(jobs[next_arrival].arrival);
            debug_assert!(target > round);
            let gap = target - round;
            stats.idle_steps += gap * m as u64;
            if obs {
                quiescent_jumps += 1;
            }
            if let Some(t) = trace.as_mut() {
                t.push_idle_rounds(gap);
            }
            round = target;
            continue;
        }

        // Assignment phase: walk jobs in priority order, claim ready nodes.
        claimed.clear();
        let mut avail = m;
        for &(_, jid) in active.iter() {
            if avail == 0 {
                break;
            }
            let cursor = arena.get_mut(cursor_ids[jid as usize].expect("active job has cursor")); // lint: allow(panicking) invariant: every active job owns an arena cursor until completion
            ready_buf.clear();
            ready_buf.extend_from_slice(cursor.ready_nodes());
            // Deterministic choice of the "arbitrary set of ready nodes".
            ready_buf.sort_unstable();
            for &v in ready_buf.iter().take(avail) {
                cursor.claim(v).expect("ready node claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                claimed.push((jid, v));
            }
            avail -= ready_buf.len().min(avail);
        }
        debug_assert!(!claimed.is_empty(), "active jobs must yield ready nodes");

        // Event horizon: the assignment above repeats verbatim until a
        // claimed node completes or a new job arrives, whichever is first.
        let mut delta: Round = claimed
            .iter()
            .map(|&(jid, v)| {
                arena
                    .get(cursor_ids[jid as usize].expect("cursor")) // lint: allow(panicking) invariant: active jobs always own a cursor
                    .remaining_work(v)
                    .expect("claimed node in range") // lint: allow(panicking) invariant: claimed nodes index this job DAG
            })
            .min()
            .expect("claimed non-empty"); // lint: allow(panicking) claim set verified non-empty above
        if next_arrival < n {
            // ≥ 1: everything due by `round` was activated above.
            delta = delta.min(speed.first_round_at_or_after(jobs[next_arrival].arrival) - round);
        }
        debug_assert!(delta >= 1);
        let last = round + delta - 1;

        // Execution phase: `delta` units on every claimed node. Nodes
        // whose remaining work equals `delta` complete during the final
        // round of the span, exactly where the reference engine completes
        // them; everything else is released for the next assignment.
        for &(jid, v) in claimed.iter() {
            let job = &jobs[jid as usize];
            started[jid as usize].get_or_insert(round);
            let cursor = arena.get_mut(cursor_ids[jid as usize].expect("cursor")); // lint: allow(panicking) invariant: active jobs always own a cursor
            ready_scratch.clear();
            match cursor
                .execute_units(&job.dag, v, delta, ready_scratch)
                .expect("claimed node executes") // lint: allow(panicking) invariant: execute targets were claimed this round
            {
                StepOutcome::InProgress => {
                    cursor.release(v).expect("in-progress node releases"); // lint: allow(panicking) invariant: release follows the successful claim above
                }
                StepOutcome::NodeCompleted { job_completed } => {
                    if job_completed {
                        // `job_completed` can only fire on the job's last
                        // claimed node this horizon (is_complete needs all
                        // nodes done), so no later `claimed` entry touches
                        // this slot — safe to recycle now.
                        arena.release(cursor_ids[jid as usize].take().expect("cursor id")); // lint: allow(panicking) invariant: completion releases exactly the cursor admission installed
                        let key = policy.key(job);
                        let pos = active
                            .iter()
                            .position(|&(k, j)| k == key && j == jid)
                            .expect("completed job was active"); // lint: allow(panicking) invariant: a completing job sits in the active list exactly once
                        active.remove(pos);
                        outcomes[jid as usize] = Some(JobOutcome {
                            job: jid,
                            arrival: job.arrival,
                            weight: job.weight,
                            start_round: started[jid as usize].expect("job executed"), // lint: allow(panicking) invariant: start_round is recorded before any execution
                            completion_round: last,
                            completion: speed.round_end(last),
                            flow: speed.flow_time(job.arrival, last),
                            status: JobStatus::Completed,
                        });
                        completed += 1;
                    }
                }
            }
        }

        stats.work_steps += delta * claimed.len() as u64;
        stats.idle_steps += delta * (m - claimed.len()) as u64;
        if obs {
            horizons += 1;
        }
        last_busy_round = last;

        if let Some(t) = trace.as_mut() {
            let mut row: Vec<Action> = claimed
                .iter()
                .map(|&(job, node)| Action::Work { job, node })
                .collect();
            row.resize(m, Action::Idle);
            for _ in 1..delta {
                t.push_row(row.clone());
            }
            t.push_row(row);
        }

        round += delta;
    }

    let outcomes: Vec<JobOutcome> = outcomes
        .drain(..)
        .map(|o| o.expect("all jobs completed")) // lint: allow(panicking) invariant: the engine loop exits only after every job completes
        .collect();
    if obs {
        rec.counter("central.work_steps", stats.work_steps);
        rec.counter("central.idle_steps", stats.idle_steps);
        rec.counter("central.event_horizons", horizons);
        rec.counter("central.quiescent_jumps", quiescent_jumps);
        rec.gauge("central.total_rounds", (last_busy_round + 1) as f64);
        for o in &outcomes {
            rec.sample("central.flow_ticks", o.flow.to_f64());
        }
    }
    let result = SimResult {
        m,
        speed,
        total_rounds: last_busy_round + 1,
        outcomes,
        stats,
        samples: Vec::new(),
        fault_events: Vec::new(),
    };
    (result, trace)
}

/// Run one centralized policy under many configs on the same instance,
/// reusing a single cursor arena and all assignment scratch buffers across
/// the runs (the batched counterpart of [`crate::run_batched`] for the
/// centralized engine).
///
/// Each entry of the result is bit-identical to
/// `run_priority(instance, &configs[i], policy)`: the scratch is reset
/// between runs, only buffer capacity carries over. Useful for speed /
/// machine-count sweeps where rebuilding the arena per point dominated.
pub fn run_priority_batch<P: JobPriority>(
    instance: &Instance,
    configs: &[SimConfig],
    policy: &P,
) -> Vec<(SimResult, Option<ScheduleTrace>)> {
    let mut scratch = CentralScratch::default();
    configs
        .iter()
        .map(|cfg| run_priority_scratch(instance, cfg, policy, &mut NullRecorder, &mut scratch))
        .collect()
}

/// The original round-by-round engine, kept verbatim as the behavioural
/// reference for the event-horizon fast path in [`run_priority`].
///
/// Compiled only for tests and under the `reference-engine` feature (used
/// by the cross-crate differential suite); production callers always get
/// the fast engine.
#[cfg(any(test, feature = "reference-engine"))]
pub fn run_priority_reference<P: JobPriority>(
    instance: &Instance,
    config: &SimConfig,
    policy: &P,
) -> (SimResult, Option<ScheduleTrace>) {
    let jobs = instance.jobs();
    let n = jobs.len();
    let m = config.m;
    let speed = config.speed;

    let mut cursors: Vec<Option<DagCursor>> = vec![None; n];
    let mut active: Vec<((u64, u64, u32), JobId)> = Vec::new();
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n];
    let mut started: Vec<Option<Round>> = vec![None; n];
    let mut stats = EngineStats::default();
    let mut trace = config.record_trace.then(|| ScheduleTrace::new(m, speed));

    let mut next_arrival = 0usize;
    let mut completed = 0usize;
    let mut round: Round = 0;
    let mut last_busy_round: Round = 0;

    let safety_cap: Round = speed.first_round_at_or_after(instance.last_arrival())
        + instance.total_work()
        + n as Round
        + 16;

    let mut claimed: Vec<(JobId, NodeId)> = Vec::new();
    let mut ready_buf: Vec<NodeId> = Vec::new();

    while completed < n {
        assert!(round <= safety_cap, "centralized engine exceeded round cap");

        while next_arrival < n && speed.arrived_by_round(jobs[next_arrival].arrival, round) {
            let job = &jobs[next_arrival];
            let key = policy.key(job);
            let pos = active.partition_point(|&(k, _)| k < key);
            active.insert(pos, (key, job.id));
            cursors[job.id as usize] = Some(DagCursor::new(&job.dag));
            next_arrival += 1;
        }

        if active.is_empty() {
            debug_assert!(next_arrival < n, "no active jobs but none left to arrive");
            let target = speed.first_round_at_or_after(jobs[next_arrival].arrival);
            debug_assert!(target > round);
            let gap = target - round;
            stats.idle_steps += gap * m as u64;
            if let Some(t) = trace.as_mut() {
                t.push_idle_rounds(gap);
            }
            round = target;
            continue;
        }

        claimed.clear();
        let mut avail = m;
        for &(_, jid) in active.iter() {
            if avail == 0 {
                break;
            }
            let cursor = cursors[jid as usize]
                .as_mut()
                .expect("active job has cursor"); // lint: allow(panicking) invariant: every active job owns an arena cursor until completion
            ready_buf.clear();
            ready_buf.extend_from_slice(cursor.ready_nodes());
            ready_buf.sort_unstable();
            for &v in ready_buf.iter().take(avail) {
                cursor.claim(v).expect("ready node claimable"); // lint: allow(panicking) invariant: nodes entering the ready set are unclaimed
                claimed.push((jid, v));
            }
            avail -= ready_buf.len().min(avail);
        }
        debug_assert!(!claimed.is_empty(), "active jobs must yield ready nodes");

        for &(jid, v) in claimed.iter() {
            let job = &jobs[jid as usize];
            started[jid as usize].get_or_insert(round);
            let cursor = cursors[jid as usize].as_mut().expect("cursor"); // lint: allow(panicking) invariant: active jobs always own a cursor
            match cursor
                .execute_unit(&job.dag, v)
                .expect("claimed node executes") // lint: allow(panicking) invariant: execute targets were claimed this round
            {
                UnitOutcome::InProgress => {
                    cursor.release(v).expect("in-progress node releases"); // lint: allow(panicking) invariant: release follows the successful claim above
                }
                UnitOutcome::NodeCompleted { job_completed, .. } => {
                    if job_completed {
                        let key = policy.key(job);
                        let pos = active
                            .iter()
                            .position(|&(k, j)| k == key && j == jid)
                            .expect("completed job was active"); // lint: allow(panicking) invariant: a completing job sits in the active list exactly once
                        active.remove(pos);
                        outcomes[jid as usize] = Some(JobOutcome {
                            job: jid,
                            arrival: job.arrival,
                            weight: job.weight,
                            start_round: started[jid as usize].expect("job executed"), // lint: allow(panicking) invariant: start_round is recorded before any execution
                            completion_round: round,
                            completion: speed.round_end(round),
                            flow: speed.flow_time(job.arrival, round),
                            status: JobStatus::Completed,
                        });
                        completed += 1;
                    }
                }
            }
        }

        stats.work_steps += claimed.len() as u64;
        stats.idle_steps += (m - claimed.len()) as u64;
        last_busy_round = round;

        if let Some(t) = trace.as_mut() {
            let mut row: Vec<Action> = claimed
                .iter()
                .map(|&(job, node)| Action::Work { job, node })
                .collect();
            row.resize(m, Action::Idle);
            t.push_row(row);
        }

        round += 1;
    }

    let outcomes: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("all jobs completed")) // lint: allow(panicking) invariant: the engine loop exits only after every job completes
        .collect();
    let result = SimResult {
        m,
        speed,
        total_rounds: last_busy_round + 1,
        outcomes,
        stats,
        samples: Vec::new(),
        fault_events: Vec::new(),
    };
    (result, trace)
}

/// Convenience: simulate FIFO.
pub fn simulate_fifo(instance: &Instance, config: &SimConfig) -> SimResult {
    run_priority(instance, config, &Fifo).0
}

/// Convenience: simulate Biggest-Weight-First.
pub fn simulate_bwf(instance: &Instance, config: &SimConfig) -> SimResult {
    run_priority(instance, config, &BiggestWeightFirst).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use parflow_dag::shapes;
    use parflow_time::{Rational, Speed};
    use std::sync::Arc;

    fn seq_jobs(arrivals_works: &[(u64, u64)]) -> Instance {
        let jobs = arrivals_works
            .iter()
            .enumerate()
            .map(|(i, &(a, w))| {
                parflow_dag::Job::new(i as u32, a, Arc::new(shapes::single_node(w)))
            })
            .collect();
        Instance::new(jobs)
    }

    #[test]
    fn single_job_single_machine() {
        let inst = seq_jobs(&[(0, 5)]);
        let r = simulate_fifo(&inst, &SimConfig::new(1));
        assert_eq!(r.max_flow(), Rational::from_int(5));
        assert_eq!(r.stats.work_steps, 5);
        assert_eq!(r.total_rounds, 5);
    }

    #[test]
    fn fifo_two_sequential_jobs_one_machine() {
        // J0: arrive 0, work 3. J1: arrive 1, work 2.
        // FIFO: J0 in [0,3), J1 in [3,5): flows 3 and 4.
        let inst = seq_jobs(&[(0, 3), (1, 2)]);
        let r = simulate_fifo(&inst, &SimConfig::new(1));
        assert_eq!(r.outcomes[0].flow, Rational::from_int(3));
        assert_eq!(r.outcomes[1].flow, Rational::from_int(4));
    }

    #[test]
    fn lifo_starves_early_job() {
        // J0: arrive 0, work 10. J1: arrive 1, work 1. LIFO runs J1 first
        // once it arrives.
        let inst = seq_jobs(&[(0, 10), (1, 1)]);
        let (r, _) = run_priority(&inst, &SimConfig::new(1), &Lifo);
        // J0 runs round 0; J1 arrives (higher priority) runs round 1; J0
        // resumes rounds 2..11.
        assert_eq!(r.outcomes[1].flow, Rational::from_int(1));
        assert_eq!(r.outcomes[0].flow, Rational::from_int(11));
    }

    #[test]
    fn parallel_job_uses_all_processors() {
        // Diamond with width 4 on 4 processors: span 1 + 1 + 1 rounds... the
        // middles run concurrently: source round 0, middles rounds 1..=w,
        // sink after.
        let dag = Arc::new(shapes::diamond(4, 1));
        let inst = Instance::new(vec![parflow_dag::Job::new(0, 0, dag)]);
        let r = simulate_fifo(&inst, &SimConfig::new(4));
        // rounds: 0 source, 1 all four middles, 2 sink → flow 3 = span.
        assert_eq!(r.max_flow(), Rational::from_int(3));
        assert_eq!(r.stats.work_steps, 6);
    }

    #[test]
    fn parallel_job_serializes_on_one_processor() {
        let dag = Arc::new(shapes::diamond(4, 1));
        let inst = Instance::new(vec![parflow_dag::Job::new(0, 0, dag)]);
        let r = simulate_fifo(&inst, &SimConfig::new(1));
        assert_eq!(r.max_flow(), Rational::from_int(6)); // = work
    }

    #[test]
    fn speed_augmentation_shrinks_flow() {
        let inst = seq_jobs(&[(0, 10)]);
        let r1 = simulate_fifo(&inst, &SimConfig::new(1));
        let r2 = simulate_fifo(&inst, &SimConfig::new(1).with_speed(Speed::integer(2)));
        assert_eq!(r1.max_flow(), Rational::from_int(10));
        assert_eq!(r2.max_flow(), Rational::from_int(5));
    }

    #[test]
    fn fractional_speed_flow_is_rational() {
        // work 3 at speed 3/2: rounds 0,1,2 end at 2/3, 4/3, 2.
        let inst = seq_jobs(&[(0, 3)]);
        let r = simulate_fifo(&inst, &SimConfig::new(1).with_speed(Speed::new(3, 2)));
        assert_eq!(r.max_flow(), Rational::from_int(2));
        let inst2 = seq_jobs(&[(0, 2)]);
        let r2 = simulate_fifo(&inst2, &SimConfig::new(1).with_speed(Speed::new(3, 2)));
        assert_eq!(r2.max_flow(), Rational::new(4, 3));
    }

    #[test]
    fn arrival_gap_fast_forward() {
        let inst = seq_jobs(&[(0, 1), (1000, 1)]);
        let r = simulate_fifo(&inst, &SimConfig::new(2));
        assert_eq!(r.outcomes[0].flow, Rational::ONE);
        assert_eq!(r.outcomes[1].flow, Rational::ONE);
        // Idle accounting: gap rounds are all-idle + 1 busy proc in each of
        // the 2 busy rounds.
        assert_eq!(r.stats.work_steps, 2);
    }

    #[test]
    fn bwf_prioritizes_heavy_job() {
        // Heavy job arrives later but preempts.
        let light = parflow_dag::Job::weighted(0, 0, 1, Arc::new(shapes::single_node(10)));
        let heavy = parflow_dag::Job::weighted(1, 2, 100, Arc::new(shapes::single_node(3)));
        let inst = Instance::new(vec![light, heavy]);
        let r = simulate_bwf(&inst, &SimConfig::new(1));
        // heavy: arrives 2, runs rounds 2..5 → flow 3.
        // light: rounds 0,1 then 5..13 → completes round 12, flow 13.
        let heavy_out = &r.outcomes[1];
        assert_eq!(heavy_out.flow, Rational::from_int(3));
        assert_eq!(r.outcomes[0].flow, Rational::from_int(13));
        assert_eq!(r.max_weighted_flow(), Rational::from_int(300));
    }

    #[test]
    fn fifo_trace_validates() {
        let mut rng_jobs = Vec::new();
        for i in 0..5u32 {
            rng_jobs.push(parflow_dag::Job::new(
                i,
                (i as u64) * 2,
                Arc::new(shapes::diamond(3, 2)),
            ));
        }
        let inst = Instance::new(rng_jobs);
        let (r, trace) = run_priority(&inst, &SimConfig::new(3).with_trace(), &Fifo);
        let trace = trace.unwrap();
        assert!(trace.validate(&inst).is_ok());
        let (w, _, _, _) = trace.action_counts();
        assert_eq!(w, r.stats.work_steps);
        assert_eq!(w, inst.total_work());
    }

    #[test]
    fn trace_with_augmented_speed_validates() {
        let inst = seq_jobs(&[(0, 4), (3, 5), (7, 2)]);
        let (_, trace) = run_priority(
            &inst,
            &SimConfig::new(2)
                .with_speed(Speed::new(11, 10))
                .with_trace(),
            &Fifo,
        );
        assert!(trace.unwrap().validate(&inst).is_ok());
    }

    #[test]
    fn names() {
        assert_eq!(Fifo.name(), "FIFO");
        assert_eq!(BiggestWeightFirst.name(), "BWF");
        assert_eq!(Lifo.name(), "LIFO");
        assert_eq!(ShortestJobFirst.name(), "SJF");
    }

    #[test]
    fn sjf_prefers_short_jobs() {
        // Long job arrives first; stream of short jobs preempts it under
        // SJF, starving the long one.
        let mut jobs = vec![parflow_dag::Job::new(
            0,
            0,
            Arc::new(shapes::single_node(50)),
        )];
        for i in 1..=10u32 {
            jobs.push(parflow_dag::Job::new(
                i,
                (i as u64) * 2,
                Arc::new(shapes::single_node(2)),
            ));
        }
        let inst = Instance::new(jobs);
        let cfg = SimConfig::new(1);
        let (sjf, _) = run_priority(&inst, &cfg, &ShortestJobFirst);
        let (fifo, _) = run_priority(&inst, &cfg, &Fifo);
        // SJF's max flow (the starved long job) exceeds FIFO's.
        assert!(sjf.max_flow() > fifo.max_flow());
        // But SJF's mean flow is no worse.
        assert!(sjf.mean_flow() <= fifo.mean_flow() + 1e-9);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![]);
        let r = simulate_fifo(&inst, &SimConfig::new(2));
        assert!(r.outcomes.is_empty());
        assert_eq!(r.max_flow(), Rational::ZERO);
    }

    #[test]
    fn event_horizon_matches_reference() {
        // Mixed sequential/parallel jobs with arrival gaps, run at unit,
        // integer and fractional speeds: the bulk-stepping engine must be
        // bit-identical to the round-by-round reference — outcomes, stats,
        // round counts and the full trace.
        let mut jobs = vec![
            parflow_dag::Job::new(0, 0, Arc::new(shapes::single_node(17))),
            parflow_dag::Job::new(1, 3, Arc::new(shapes::diamond(5, 3))),
            parflow_dag::Job::weighted(2, 4, 9, Arc::new(shapes::fork_join(2, 4))),
            parflow_dag::Job::new(3, 40, Arc::new(shapes::single_node(2))),
        ];
        for i in 4..10u32 {
            jobs.push(parflow_dag::Job::new(
                i,
                (i as u64) * 5,
                Arc::new(shapes::chain(3, 2)),
            ));
        }
        let inst = Instance::new(jobs);
        for speed in [Speed::ONE, Speed::integer(2), Speed::new(11, 10)] {
            for m in [1usize, 2, 4] {
                let cfg = SimConfig::new(m).with_speed(speed).with_trace();
                let (fast, ft) = run_priority(&inst, &cfg, &Fifo);
                let (slow, st) = run_priority_reference(&inst, &cfg, &Fifo);
                assert_eq!(fast.outcomes, slow.outcomes, "m={m} s={speed}");
                assert_eq!(fast.stats, slow.stats, "m={m} s={speed}");
                assert_eq!(fast.total_rounds, slow.total_rounds, "m={m} s={speed}");
                assert_eq!(ft.unwrap().spans, st.unwrap().spans, "m={m} s={speed}");

                let (fast_b, _) = run_priority(&inst, &cfg, &BiggestWeightFirst);
                let (slow_b, _) = run_priority_reference(&inst, &cfg, &BiggestWeightFirst);
                assert_eq!(fast_b.outcomes, slow_b.outcomes, "bwf m={m} s={speed}");
                assert_eq!(fast_b.stats, slow_b.stats, "bwf m={m} s={speed}");
            }
        }
    }

    #[test]
    fn observed_run_matches_unobserved() {
        let inst = seq_jobs(&[(0, 4), (3, 5), (7, 2), (100, 1)]);
        let cfg = SimConfig::new(2);
        let (plain, _) = run_priority(&inst, &cfg, &Fifo);
        let mut rec = parflow_obs::AggregatingRecorder::new();
        let (observed, _) = run_priority_observed(&inst, &cfg, &Fifo, &mut rec);
        assert_eq!(plain.outcomes, observed.outcomes);
        assert_eq!(plain.stats, observed.stats);
        assert_eq!(
            rec.counter_value("central.work_steps", None),
            observed.stats.work_steps
        );
        assert_eq!(
            rec.counter_value("central.idle_steps", None),
            observed.stats.idle_steps
        );
        // The 100-tick gap forces at least one quiescent jump, and every
        // run with work has at least one event horizon.
        assert!(rec.counter_value("central.quiescent_jumps", None) >= 1);
        assert!(rec.counter_value("central.event_horizons", None) >= 1);
        assert_eq!(rec.samples("central.flow_ticks").len(), 4);
    }

    #[test]
    fn fifo_completion_rounds_monotone_for_sequential_jobs() {
        // With identical sequential jobs FIFO completes in arrival order.
        let inst = seq_jobs(&[(0, 4), (1, 4), (2, 4), (3, 4)]);
        let r = simulate_fifo(&inst, &SimConfig::new(2));
        let mut prev = 0;
        for o in &r.outcomes {
            assert!(o.completion_round >= prev);
            prev = o.completion_round;
        }
    }
}
