//! # parflow-obs
//!
//! A structured observability layer for the parflow engines: spans,
//! counters, gauges and sample streams, funnelled through a pluggable
//! [`Recorder`] trait.
//!
//! ## Design
//!
//! * **Zero cost when disabled.** Engines hoist `rec.enabled()` into a
//!   local `bool` before their hot loops; with the [`NullRecorder`] every
//!   instrumentation site is a predictable dead branch, no allocation
//!   happens, and — critically for the simulator — the RNG stream and all
//!   golden outputs stay byte-identical.
//! * **One funnel method.** A recorder implements [`Recorder::record`] over
//!   the [`Event`] taxonomy; the convenience methods (`counter`, `gauge`,
//!   `sample`, `span_begin`/`span_end`) are default trait methods, so
//!   `&mut dyn Recorder` stays object-safe and cheap to thread through
//!   engine entry points.
//! * **Deterministic reports.** The [`AggregatingRecorder`] stores counters
//!   and gauges in `BTreeMap`s and renders [`ObsReport`] JSON with a fixed
//!   key order, so two observed runs of a deterministic engine produce
//!   byte-identical counter sections (wall-clock phase timings are the only
//!   run-dependent part, and they are kept in a separate section).
//! * **Hand-rolled JSON.** The offline build stubs out `serde_json`'s
//!   serializer (see `vendor/offline-stubs/README.md`), so [`ObsReport`]
//!   emits its fixed schema directly — same approach as the bench layer's
//!   `BenchReport`.
//!
//! ## Event taxonomy
//!
//! | Event | Meaning | Aggregation |
//! |-------|---------|-------------|
//! | `Counter { name, index, delta }` | monotone count (optionally per entity, e.g. per worker) | summed |
//! | `Gauge { name, index, value }` | last-write-wins scalar | overwritten |
//! | `Sample { name, value }` | one observation of a distribution | collected, summarized as a histogram |
//! | `SpanBegin` / `SpanEnd { name }` | phase boundaries | wall-clock duration per phase |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parflow_metrics::{try_percentile_sorted, Histogram};
use std::collections::BTreeMap;
use std::time::Instant;

/// One structured observation. Engines emit these through a [`Recorder`];
/// the borrow keeps emission allocation-free.
#[derive(Clone, Copy, Debug)]
pub enum Event<'a> {
    /// A monotone counter increment; `index` scopes it to an entity
    /// (e.g. a worker).
    Counter {
        /// Metric name, dot-separated by convention (`"ws.steal_attempts"`).
        name: &'a str,
        /// Entity index (per-worker metrics), `None` for engine-level.
        index: Option<usize>,
        /// Amount to add.
        delta: u64,
    },
    /// A last-write-wins scalar.
    Gauge {
        /// Metric name.
        name: &'a str,
        /// Entity index, `None` for engine-level.
        index: Option<usize>,
        /// New value.
        value: f64,
    },
    /// One observation of a distribution (summarized as a histogram).
    Sample {
        /// Distribution name.
        name: &'a str,
        /// Observed value.
        value: f64,
    },
    /// A phase starts (wall-clock timing; spans may nest, matched by name).
    SpanBegin {
        /// Phase name.
        name: &'a str,
    },
    /// A phase ends.
    SpanEnd {
        /// Phase name (must match an open [`Event::SpanBegin`]).
        name: &'a str,
    },
}

/// Sink for [`Event`]s. Implementations must be cheap to call; engines
/// additionally guard hot-loop sites on [`Recorder::enabled`].
pub trait Recorder {
    /// Whether instrumentation should run at all. Engines hoist this out
    /// of their hot loops; `false` promises every `record` is a no-op.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn record(&mut self, event: Event<'_>);

    /// Add `delta` to the engine-level counter `name`.
    fn counter(&mut self, name: &str, delta: u64) {
        self.record(Event::Counter {
            name,
            index: None,
            delta,
        });
    }

    /// Add `delta` to counter `name` of entity `index` (e.g. a worker).
    fn counter_at(&mut self, name: &str, index: usize, delta: u64) {
        self.record(Event::Counter {
            name,
            index: Some(index),
            delta,
        });
    }

    /// Set the engine-level gauge `name`.
    fn gauge(&mut self, name: &str, value: f64) {
        self.record(Event::Gauge {
            name,
            index: None,
            value,
        });
    }

    /// Set gauge `name` of entity `index`.
    fn gauge_at(&mut self, name: &str, index: usize, value: f64) {
        self.record(Event::Gauge {
            name,
            index: Some(index),
            value,
        });
    }

    /// Record one observation of distribution `name`.
    fn sample(&mut self, name: &str, value: f64) {
        self.record(Event::Sample { name, value });
    }

    /// Open phase `name`.
    fn span_begin(&mut self, name: &str) {
        self.record(Event::SpanBegin { name });
    }

    /// Close phase `name`.
    fn span_end(&mut self, name: &str) {
        self.record(Event::SpanEnd { name });
    }
}

/// The disabled recorder: `enabled()` is `false` and every event is
/// dropped. Engines run bit-identically to their uninstrumented form.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event<'_>) {}
}

/// Key of an aggregated metric: name plus optional entity index.
/// `BTreeMap` ordering (name, then `None` before indices) fixes report
/// order deterministically.
type MetricId = (String, Option<usize>);

fn metric_label(name: &str, index: Option<usize>) -> String {
    match index {
        Some(i) => format!("{name}[{i}]"),
        None => name.to_string(),
    }
}

/// Inverse of [`metric_label`]: `"name[3]"` → `("name", Some(3))`. A label
/// whose bracket suffix does not parse is treated as a plain name.
fn split_label(label: &str) -> MetricId {
    if let Some(open) = label.rfind('[') {
        if let Some(idx) = label
            .strip_suffix(']')
            .and_then(|l| l[open + 1..].parse::<usize>().ok())
        {
            return (label[..open].to_string(), Some(idx));
        }
    }
    (label.to_string(), None)
}

/// In-memory aggregation: counters summed, gauges last-write-wins, samples
/// collected verbatim, spans timed against a wall clock.
#[derive(Debug)]
pub struct AggregatingRecorder {
    counters: BTreeMap<MetricId, u64>,
    gauges: BTreeMap<MetricId, f64>,
    samples: BTreeMap<String, Vec<f64>>,
    /// Completed phases in completion order: `(name, wall_seconds)`.
    phases: Vec<(String, f64)>,
    /// Open span stack.
    open: Vec<(String, Instant)>,
}

impl AggregatingRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        AggregatingRecorder {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            samples: BTreeMap::new(),
            phases: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Current value of counter `name` at `index` (0 when never written).
    pub fn counter_value(&self, name: &str, index: Option<usize>) -> u64 {
        self.counters
            .get(&(name.to_string(), index))
            .copied()
            .unwrap_or(0)
    }

    /// Current gauge value, if set.
    pub fn gauge_value(&self, name: &str, index: Option<usize>) -> Option<f64> {
        self.gauges.get(&(name.to_string(), index)).copied()
    }

    /// Samples collected for distribution `name`.
    pub fn samples(&self, name: &str) -> &[f64] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Completed phases as `(name, wall_seconds)`, in completion order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Fold another report's counters (summed) and gauges (last-write-wins,
    /// in report order) into this recorder. Used by the serve coordinator
    /// to merge per-worker live telemetry; histogram summaries cannot be
    /// re-expanded into samples and are deliberately not merged — merge raw
    /// samples instead where distribution fidelity matters.
    pub fn absorb_scalars(&mut self, report: &ObsReport) {
        for (label, v) in &report.counters {
            let (name, idx) = split_label(label);
            let slot = self.counters.entry((name, idx)).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (label, v) in &report.gauges {
            let (name, idx) = split_label(label);
            self.gauges.insert((name, idx), *v);
        }
    }

    /// Summarize everything recorded so far into a machine-readable report.
    pub fn report(&self) -> ObsReport {
        ObsReport {
            schema: OBS_SCHEMA,
            counters: self
                .counters
                .iter()
                .map(|((name, idx), &v)| (metric_label(name, *idx), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|((name, idx), &v)| (metric_label(name, *idx), v))
                .collect(),
            histograms: self
                .samples
                .iter()
                .map(|(name, xs)| HistogramSummary::from_samples(name, xs))
                .collect(),
            phases: self.phases.clone(),
        }
    }
}

impl Default for AggregatingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for AggregatingRecorder {
    fn record(&mut self, event: Event<'_>) {
        match event {
            Event::Counter { name, index, delta } => {
                let slot = self.counters.entry((name.to_string(), index)).or_insert(0);
                *slot = slot.saturating_add(delta);
            }
            Event::Gauge { name, index, value } => {
                self.gauges.insert((name.to_string(), index), value);
            }
            Event::Sample { name, value } => {
                self.samples
                    .entry(name.to_string())
                    .or_default()
                    .push(value);
            }
            Event::SpanBegin { name } => {
                self.open.push((name.to_string(), Instant::now()));
            }
            Event::SpanEnd { name } => {
                // Match the innermost open span with this name; a stray end
                // is ignored rather than panicking inside instrumentation.
                if let Some(pos) = self.open.iter().rposition(|(n, _)| n == name) {
                    let (n, t0) = self.open.remove(pos);
                    self.phases.push((n, t0.elapsed().as_secs_f64()));
                }
            }
        }
    }
}

/// An [`AggregatingRecorder`] bound to an output path: [`JsonRecorder::flush`]
/// writes the aggregated [`ObsReport`] as JSON.
#[derive(Debug)]
pub struct JsonRecorder {
    inner: AggregatingRecorder,
    path: std::path::PathBuf,
}

impl JsonRecorder {
    /// Record into memory; JSON goes to `path` on [`flush`](Self::flush).
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        JsonRecorder {
            inner: AggregatingRecorder::new(),
            path: path.into(),
        }
    }

    /// The aggregation backing this recorder.
    pub fn aggregate(&self) -> &AggregatingRecorder {
        &self.inner
    }

    /// Write the current report to the bound path.
    pub fn flush(&self) -> std::io::Result<()> {
        std::fs::write(&self.path, self.inner.report().to_json())
    }
}

impl Recorder for JsonRecorder {
    fn record(&mut self, event: Event<'_>) {
        self.inner.record(event);
    }
}

/// Report format version.
pub const OBS_SCHEMA: u32 = 1;

/// Number of uniform bins in a [`HistogramSummary`].
pub const SUMMARY_BINS: usize = 16;

/// Distribution summary: count, moments, percentiles and fixed-bin counts.
/// Built on [`parflow_metrics::Histogram`], so NaN samples are counted
/// separately instead of polluting bin 0.
#[derive(Clone, Debug)]
pub struct HistogramSummary {
    /// Distribution name.
    pub name: String,
    /// Finite samples summarized.
    pub count: u64,
    /// NaN samples (excluded from every other field).
    pub nan: u64,
    /// Minimum finite sample.
    pub min: f64,
    /// Maximum finite sample.
    pub max: f64,
    /// Mean of finite samples.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// [`SUMMARY_BINS`] uniform bin counts over `[min, max]`.
    pub bins: Vec<u64>,
}

impl HistogramSummary {
    /// Summarize a raw sample stream.
    pub fn from_samples(name: &str, xs: &[f64]) -> Self {
        let mut finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        finite.sort_by(f64::total_cmp);
        let nan = xs.iter().filter(|x| x.is_nan()).count() as u64;
        if finite.is_empty() {
            return HistogramSummary {
                name: name.to_string(),
                count: 0,
                nan,
                min: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
                p50: f64::NAN,
                p95: f64::NAN,
                p99: f64::NAN,
                bins: vec![0; SUMMARY_BINS],
            };
        }
        let min = finite[0];
        let max = *finite.last().expect("non-empty");
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        // Half-open bins need hi > lo; nudge hi so the max lands inside.
        let hi = if max > min {
            max + (max - min) * 1e-9
        } else {
            min + 1.0
        };
        let mut h = Histogram::new(min, hi, SUMMARY_BINS);
        h.extend(finite.iter().copied());
        // Degrade, never panic: an all-non-finite sample set takes the
        // early return above, but a percentile failure here must still
        // surface as NaN (rendered `null` in the JSON report), not abort
        // the run — empty cells are normal once a sweep pruner skips
        // configs.
        let pct = |q: f64| try_percentile_sorted(&finite, q).unwrap_or(f64::NAN);
        HistogramSummary {
            name: name.to_string(),
            count: finite.len() as u64,
            nan,
            min,
            max,
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            bins: h.counts().to_vec(),
        }
    }
}

/// The machine-readable run report behind `--obs-json`: counters, gauges,
/// distribution summaries and per-phase wall times.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Format version ([`OBS_SCHEMA`]).
    pub schema: u32,
    /// `(label, value)` counters, sorted by label (`name` or `name[i]`).
    pub counters: Vec<(String, u64)>,
    /// `(label, value)` gauges, sorted by label.
    pub gauges: Vec<(String, f64)>,
    /// One summary per sampled distribution, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// `(name, wall_seconds)` per completed phase, in completion order.
    /// The only run-dependent section for a deterministic engine.
    pub phases: Vec<(String, f64)>,
}

/// JSON number or `null` for non-finite values (JSON has no NaN/inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    // Metric names are ASCII identifiers by convention; escape the two
    // characters that could break a JSON string anyway.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl ObsReport {
    /// Serialize to pretty JSON with a trailing newline.
    ///
    /// Hand-rolled for the same reason as `parflow_bench::throughput::to_json`:
    /// the offline `serde_json` stub cannot serialize, and the schema is
    /// fixed. Key order is deterministic (sorted labels; phases in
    /// completion order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"schema\": {},\n", self.schema));

        out.push_str("  \"counters\": {");
        for (i, (label, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            out.push_str(&format!("{sep}    \"{}\": {v}", json_escape(label)));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"gauges\": {");
        for (i, (label, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            out.push_str(&format!(
                "{sep}    \"{}\": {}",
                json_escape(label),
                json_f64(*v)
            ));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let bins: Vec<String> = h.bins.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "{sep}    {{\n      \"name\": \"{}\",\n      \"count\": {},\n      \
                 \"nan\": {},\n      \"min\": {},\n      \"max\": {},\n      \
                 \"mean\": {},\n      \"p50\": {},\n      \"p95\": {},\n      \
                 \"p99\": {},\n      \"bins\": [{}]\n    }}",
                json_escape(&h.name),
                h.count,
                h.nan,
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.mean),
                json_f64(h.p50),
                json_f64(h.p95),
                json_f64(h.p99),
                bins.join(", ")
            ));
        }
        out.push_str(if self.histograms.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"phases\": [");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            out.push_str(&format!(
                "{sep}    {{ \"name\": \"{}\", \"wall_seconds\": {} }}",
                json_escape(name),
                json_f64(*secs)
            ));
        }
        out.push_str(if self.phases.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });

        out.push_str("}\n");
        out
    }

    /// A 64-bit FNV-1a digest of the serialized report, as 16 lowercase
    /// hex digits. Two reports digest equal iff their JSON is
    /// byte-identical — the determinism check the serve CI smoke and the
    /// chaos tests pin (same seed + same input ⇒ same digest, any worker
    /// count). Dependency-free by design; this is a fingerprint for
    /// regression detection, not a cryptographic commitment.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_json().as_bytes()))
    }
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.counter("x", 5);
        r.sample("y", 1.0);
        r.span_begin("p");
        r.span_end("p");
    }

    #[test]
    fn counters_sum_and_scope_by_index() {
        let mut r = AggregatingRecorder::new();
        r.counter("ws.steals", 3);
        r.counter("ws.steals", 4);
        r.counter_at("ws.steals", 1, 10);
        assert_eq!(r.counter_value("ws.steals", None), 7);
        assert_eq!(r.counter_value("ws.steals", Some(1)), 10);
        assert_eq!(r.counter_value("ws.steals", Some(0)), 0);
    }

    #[test]
    fn counters_exceed_u32_range() {
        // The whole point of the u64 event model: no silent saturation.
        let mut r = AggregatingRecorder::new();
        r.counter("gap", u32::MAX as u64);
        r.counter("gap", 2);
        assert_eq!(r.counter_value("gap", None), u32::MAX as u64 + 2);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = AggregatingRecorder::new();
        r.gauge("rounds", 10.0);
        r.gauge("rounds", 20.0);
        r.gauge_at("rate", 2, 0.5);
        assert_eq!(r.gauge_value("rounds", None), Some(20.0));
        assert_eq!(r.gauge_value("rate", Some(2)), Some(0.5));
        assert_eq!(r.gauge_value("rate", None), None);
    }

    #[test]
    fn spans_time_phases_in_completion_order() {
        let mut r = AggregatingRecorder::new();
        r.span_begin("outer");
        r.span_begin("inner");
        r.span_end("inner");
        r.span_end("outer");
        r.span_end("stray"); // ignored
        let phases = r.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "inner");
        assert_eq!(phases[1].0, "outer");
        assert!(phases.iter().all(|&(_, s)| s >= 0.0));
    }

    #[test]
    fn histogram_summary_handles_nan_and_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).chain([f64::NAN]).collect();
        let h = HistogramSummary::from_samples("d", &xs);
        assert_eq!(h.count, 100);
        assert_eq!(h.nan, 1);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.bins.iter().sum::<u64>(), 100);
        assert_eq!(h.bins.len(), SUMMARY_BINS);
    }

    #[test]
    fn histogram_summary_all_nan_or_empty() {
        let h = HistogramSummary::from_samples("d", &[f64::NAN, f64::NAN]);
        assert_eq!(h.count, 0);
        assert_eq!(h.nan, 2);
        assert!(h.min.is_nan());
        let e = HistogramSummary::from_samples("e", &[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.nan, 0);
    }

    #[test]
    fn histogram_summary_constant_samples() {
        let h = HistogramSummary::from_samples("c", &[3.0; 7]);
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 3.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.bins[0], 7);
    }

    #[test]
    fn report_json_is_deterministic_and_wellformed() {
        let build = || {
            let mut r = AggregatingRecorder::new();
            r.counter_at("ws.worker.steals", 1, 7);
            r.counter_at("ws.worker.steals", 0, 3);
            r.counter("ws.rounds", 100);
            r.gauge("speed", 1.5);
            for i in 0..10 {
                r.sample("flow", i as f64);
            }
            r.report()
        };
        let (a, b) = (build(), build());
        let (ja, jb) = (a.to_json(), b.to_json());
        assert_eq!(ja, jb, "deterministic inputs must serialize identically");
        for key in [
            "\"schema\": 1",
            "\"ws.worker.steals[0]\": 3",
            "\"ws.worker.steals[1]\": 7",
            "\"ws.rounds\": 100",
            "\"flow\"",
            "\"phases\": []",
        ] {
            assert!(ja.contains(key), "missing {key} in:\n{ja}");
        }
        // Labels sorted: engine-level before per-index, index 0 before 1.
        let pos = |s: &str| ja.find(s).unwrap();
        assert!(pos("ws.rounds") < pos("ws.worker.steals[0]"));
        assert!(pos("ws.worker.steals[0]") < pos("ws.worker.steals[1]"));
    }

    #[test]
    fn json_null_for_nonfinite() {
        let mut r = AggregatingRecorder::new();
        r.sample("d", f64::NAN);
        r.gauge("g", f64::INFINITY);
        let j = r.report().to_json();
        assert!(j.contains("\"g\": null"), "{j}");
        assert!(j.contains("\"nan\": 1"), "{j}");
        assert!(!j.contains("NaN"), "JSON must not contain NaN literals");
    }

    /// Regression for the obs/lib.rs:412 panic family: the percentile
    /// epilogue did `try_percentile_sorted(..).expect("non-empty")`, so a
    /// distribution whose samples all filter out as non-finite (an empty
    /// or fully-shed sweep cell) panicked while building the report. It
    /// must degrade to `null` fields in the JSON instead.
    #[test]
    fn all_nonfinite_samples_degrade_to_null_report_fields() {
        let h = HistogramSummary::from_samples("dead", &[f64::NAN, f64::INFINITY, f64::NAN]);
        assert_eq!(h.count, 0);
        assert_eq!(h.nan, 2, "nan counts NaN samples; infinities only drop");
        assert!(h.p50.is_nan() && h.p95.is_nan() && h.p99.is_nan());

        let mut r = AggregatingRecorder::new();
        r.sample("dead", f64::NAN);
        r.sample("dead", f64::INFINITY);
        let j = r.report().to_json();
        assert!(j.contains("\"name\": \"dead\""), "{j}");
        assert!(j.contains("\"p50\": null"), "{j}");
        assert!(j.contains("\"p95\": null"), "{j}");
        assert!(j.contains("\"p99\": null"), "{j}");
        assert!(j.contains("\"count\": 0"), "{j}");
        assert!(!j.contains("NaN"), "JSON must not contain NaN literals");
    }

    #[test]
    fn json_recorder_flushes_to_path() {
        let path = std::env::temp_dir().join("parflow_obs_test.json");
        let mut r = JsonRecorder::new(&path);
        r.counter("x", 1);
        r.flush().unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 1"));
        assert_eq!(r.aggregate().counter_value("x", None), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn split_label_round_trips_metric_label() {
        for (name, idx) in [
            ("ws.steals", None),
            ("ws.steals", Some(0)),
            ("serve.shed", Some(17)),
            ("a[b", None), // bracket inside a plain name survives
        ] {
            let label = metric_label(name, idx);
            assert_eq!(split_label(&label), (name.to_string(), idx));
        }
        // Unparsable bracket suffixes degrade to plain names.
        assert_eq!(split_label("x[y]"), ("x[y]".to_string(), None));
        assert_eq!(split_label("x[3"), ("x[3".to_string(), None));
        assert_eq!(split_label("x]"), ("x]".to_string(), None));
    }

    #[test]
    fn absorb_scalars_sums_counters_and_overwrites_gauges() {
        let mut worker = AggregatingRecorder::new();
        worker.counter("serve.completed", 5);
        worker.counter_at("serve.orders", 2, 3);
        worker.gauge("serve.depth", 4.0);
        worker.sample("flow", 1.0); // histograms deliberately not merged
        let report = worker.report();

        let mut merged = AggregatingRecorder::new();
        merged.counter("serve.completed", 1);
        merged.gauge("serve.depth", 9.0);
        merged.absorb_scalars(&report);
        merged.absorb_scalars(&report);

        assert_eq!(merged.counter_value("serve.completed", None), 11);
        assert_eq!(merged.counter_value("serve.orders", Some(2)), 6);
        assert_eq!(merged.gauge_value("serve.depth", None), Some(4.0));
        assert!(merged.samples("flow").is_empty());
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let build = |v: u64| {
            let mut r = AggregatingRecorder::new();
            r.counter("jobs", v);
            r.gauge("speed", 1.5);
            r.report()
        };
        let (a, b, c) = (build(7), build(7), build(8));
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest().len(), 16);
        assert!(a.digest().chars().all(|ch| ch.is_ascii_hexdigit()));
        // Pin the FNV-1a implementation itself.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
