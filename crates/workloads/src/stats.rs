//! Descriptive statistics of generated instances, used by the CLI and the
//! experiment reports to characterize workloads before scheduling them.

use parflow_dag::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of one instance's shape: work, parallelism and arrival pattern.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Number of jobs.
    pub n: usize,
    /// Total work (units).
    pub total_work: u64,
    /// Mean job work (units).
    pub mean_work: f64,
    /// Maximum job work (units).
    pub max_work: u64,
    /// Mean job span (units).
    pub mean_span: f64,
    /// Maximum job span (units).
    pub max_span: u64,
    /// Mean job parallelism `W/P`.
    pub mean_parallelism: f64,
    /// Mean inter-arrival gap (ticks).
    pub mean_gap: f64,
    /// Coefficient of variation of inter-arrival gaps (1 ≈ Poisson,
    /// 0 = periodic, ≫ 1 = bursty).
    pub gap_cv: f64,
}

impl InstanceStats {
    /// Compute statistics; returns `None` for empty instances.
    pub fn of(instance: &Instance) -> Option<InstanceStats> {
        if instance.is_empty() {
            return None;
        }
        let jobs = instance.jobs();
        let n = jobs.len();
        let total_work = instance.total_work();
        let mean_work = total_work as f64 / n as f64;
        let mean_span = jobs.iter().map(|j| j.span() as f64).sum::<f64>() / n as f64;
        let mean_parallelism = jobs.iter().map(|j| j.dag.parallelism()).sum::<f64>() / n as f64;

        let gaps: Vec<f64> = jobs
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival) as f64)
            .collect();
        let (mean_gap, gap_cv) = if gaps.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            if mean <= 0.0 {
                (mean, 0.0)
            } else {
                let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
                (mean, var.sqrt() / mean)
            }
        };

        Some(InstanceStats {
            n,
            total_work,
            mean_work,
            max_work: instance.max_work(),
            mean_span,
            max_span: instance.max_span(),
            mean_parallelism,
            mean_gap,
            gap_cv,
        })
    }
}

impl fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "n = {}, total work = {} units ({:.1} avg, {} max)",
            self.n, self.total_work, self.mean_work, self.max_work
        )?;
        writeln!(
            f,
            "span: {:.1} avg, {} max; parallelism: {:.1} avg",
            self.mean_span, self.max_span, self.mean_parallelism
        )?;
        write!(
            f,
            "arrivals: mean gap {:.2} ticks, CV {:.2}",
            self.mean_gap, self.gap_cv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{DistKind, ShapeKind, WorkloadSpec};

    #[test]
    fn empty_is_none() {
        assert!(InstanceStats::of(&Instance::new(vec![])).is_none());
    }

    #[test]
    fn poisson_gap_cv_near_one() {
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 20_000, 3).generate();
        let s = InstanceStats::of(&inst).unwrap();
        assert_eq!(s.n, 20_000);
        // Exponential gaps have CV 1 (quantization adds noise).
        assert!((0.85..1.15).contains(&s.gap_cv), "gap CV {}", s.gap_cv);
        // 1000 QPS at 10_000 ticks/s → mean gap ≈ 10.
        assert!((9.0..11.0).contains(&s.mean_gap), "mean gap {}", s.mean_gap);
    }

    #[test]
    fn periodic_gap_cv_zero() {
        let spec = WorkloadSpec {
            dist: DistKind::Constant(10),
            shape: ShapeKind::Sequential,
            qps: None,
            period_ticks: 50,
            n_jobs: 100,
            seed: 0,
        };
        let s = InstanceStats::of(&spec.generate()).unwrap();
        assert_eq!(s.gap_cv, 0.0);
        assert_eq!(s.mean_gap, 50.0);
        assert_eq!(s.mean_work, 10.0);
        assert_eq!(s.max_work, 10);
        // Sequential jobs: parallelism exactly 1.
        assert!((s.mean_parallelism - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_for_parallelism_above_one() {
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 2_000, 5).generate();
        let s = InstanceStats::of(&inst).unwrap();
        assert!(s.mean_parallelism > 2.0);
        assert!(s.mean_span < s.mean_work);
    }

    #[test]
    fn display_renders() {
        let inst = WorkloadSpec::paper_fig2(DistKind::Finance, 900.0, 100, 1).generate();
        let s = InstanceStats::of(&inst).unwrap();
        let text = s.to_string();
        assert!(text.contains("total work"));
        assert!(text.contains("parallelism"));
    }

    #[test]
    fn single_job_has_no_gaps() {
        let spec = WorkloadSpec {
            dist: DistKind::Constant(5),
            shape: ShapeKind::Sequential,
            qps: None,
            period_ticks: 10,
            n_jobs: 1,
            seed: 0,
        };
        let s = InstanceStats::of(&spec.generate()).unwrap();
        assert_eq!(s.mean_gap, 0.0);
        assert_eq!(s.gap_cv, 0.0);
    }
}
