//! # parflow-workloads
//!
//! Workload generation for the paper's experiments (Section 6):
//!
//! * [`dist`] — job work distributions: the digitized **Bing** web-search
//!   and **finance** option-pricing histograms of Figure 3, the synthetic
//!   **log-normal**, plus uniform/constant/Pareto for tests and ablations;
//! * [`arrivals`] — Poisson (the paper's model), periodic and bursty
//!   arrival processes;
//! * [`gen`] — [`WorkloadSpec`]: distribution × shape × QPS × n → a
//!   reproducible [`parflow_dag::Instance`], with utilization calibration;
//! * [`lowerbound`] — the Section 5 adversarial instance;
//! * [`trace_io`] — JSON persistence of instances.
//!
//! Units: 1 work unit = 1 tick = 0.1 ms ([`TICKS_PER_SECOND`] = 10 000).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod dist;
pub mod gen;
pub mod lowerbound;
pub mod stats;
pub mod trace_io;

pub use arrivals::{
    take_arrivals, ArrivalProcess, ArrivalSource, BurstArrivals, BurstStream, PeriodicArrivals,
    PeriodicStream, PoissonArrivals, PoissonStream,
};
pub use dist::{
    bing, finance, ConstantDist, HistogramDist, LogNormalDist, ParetoDist, UniformDist,
    WorkDistribution,
};
pub use gen::{
    qps_for_utilization, DistKind, JobSource, ShapeKind, StreamJob, WorkloadSpec, TICKS_PER_SECOND,
};
pub use lowerbound::{lemma_m_for_n, lower_bound_instance};
pub use stats::InstanceStats;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_instances_are_valid(seed in any::<u64>(), n in 1usize..200,
                                         qps in 100.0f64..5000.0) {
            let spec = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n, seed);
            let inst = spec.generate();
            prop_assert_eq!(inst.len(), n);
            // Arrival-sorted, dense ids, valid DAGs.
            let mut prev = 0;
            for (i, j) in inst.jobs().iter().enumerate() {
                prop_assert_eq!(j.id as usize, i);
                prop_assert!(j.arrival >= prev);
                prev = j.arrival;
                prop_assert!(j.dag.validate().is_ok());
                prop_assert!(j.work() >= 1);
            }
        }

        #[test]
        fn all_dists_sample_positive(seed in any::<u64>()) {
            use rand::{rngs::SmallRng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..64 {
                prop_assert!(bing().sample(&mut rng) > 0);
                prop_assert!(finance().sample(&mut rng) > 0);
                prop_assert!(LogNormalDist::paper().sample(&mut rng) > 0);
            }
        }

        #[test]
        fn utilization_scales_linearly_with_qps(qps in 100.0f64..2000.0) {
            let u1 = WorkloadSpec::paper_fig2(DistKind::Finance, qps, 10, 0)
                .expected_utilization(16);
            let u2 = WorkloadSpec::paper_fig2(DistKind::Finance, 2.0 * qps, 10, 0)
                .expected_utilization(16);
            prop_assert!((u2 - 2.0 * u1).abs() < 1e-9);
        }

        #[test]
        fn lower_bound_instance_valid(n in 1usize..64, m in 10usize..200) {
            let inst = lower_bound_instance(n, m);
            prop_assert_eq!(inst.len(), n);
            for j in inst.jobs() {
                prop_assert_eq!(j.span(), 2);
                prop_assert_eq!(j.work() as usize, m / 10 + 1);
            }
        }
    }
}
