//! Work distributions: how much total work a request (job) carries.
//!
//! The simulator measures work in **units of 0.1 ms** (see
//! [`crate::TICKS_PER_SECOND`]): a unit-speed processor executes one unit
//! per tick, so a 10 ms request is 100 units of work.

use parflow_time::Work;
use rand::Rng;

/// A distribution over job total work (in work units).
pub trait WorkDistribution {
    /// Draw one job's total work.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Work;
    /// Expected work in units (exact for histograms, analytic otherwise).
    fn mean(&self) -> f64;
    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// A discrete histogram distribution: `(work, weight)` bins. Weights need
/// not sum to 1; they are normalized internally. This is the representation
/// used for the digitized Bing and finance distributions of Figure 3.
#[derive(Clone, Debug)]
pub struct HistogramDist {
    name: &'static str,
    bins: Vec<(Work, f64)>,
    /// Cumulative weights for inverse-CDF sampling.
    cumulative: Vec<f64>,
    total_weight: f64,
}

impl HistogramDist {
    /// Build a histogram from `(work, weight)` bins. Panics if empty, if a
    /// bin has non-positive weight, or zero work.
    pub fn new(name: &'static str, bins: Vec<(Work, f64)>) -> Self {
        assert!(!bins.is_empty(), "histogram needs at least one bin");
        let mut cumulative = Vec::with_capacity(bins.len());
        let mut acc = 0.0;
        for &(w, p) in &bins {
            assert!(w > 0, "histogram bin with zero work");
            assert!(
                p > 0.0 && p.is_finite(),
                "histogram bin weight must be positive"
            );
            acc += p;
            cumulative.push(acc);
        }
        HistogramDist {
            name,
            bins,
            cumulative,
            total_weight: acc,
        }
    }

    /// The bins `(work, probability)` with probabilities normalized to 1.
    pub fn probabilities(&self) -> Vec<(Work, f64)> {
        self.bins
            .iter()
            .map(|&(w, p)| (w, p / self.total_weight))
            .collect()
    }
}

impl WorkDistribution for HistogramDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Work {
        let x = rng.gen_range(0.0..self.total_weight);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        self.bins[idx.min(self.bins.len() - 1)].0
    }

    fn mean(&self) -> f64 {
        self.bins.iter().map(|&(w, p)| w as f64 * p).sum::<f64>() / self.total_weight
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// The Bing web-search request work distribution, digitized from the
/// paper's Figure 3(a) (source: Kim et al., WSDM 2015 \[21\]).
///
/// Support 5–205 ms; heavily right-skewed with ≈60 % of requests at the
/// 5 ms mode and a long tail out to 205 ms. Mean ≈ 10.6 ms, which at m=16
/// and QPS ∈ {800, 1000, 1200} gives ≈ {53 %, 66 %, 80 %} utilization — the
/// paper's low/medium/high load levels.
pub fn bing() -> HistogramDist {
    // (work in 0.1ms units, relative weight)
    HistogramDist::new(
        "bing",
        vec![
            (50, 0.62),    // 5 ms
            (100, 0.19),   // 10 ms
            (150, 0.07),   // 15 ms
            (200, 0.035),  // 20 ms
            (250, 0.02),   // 25 ms
            (350, 0.015),  // 35 ms
            (450, 0.010),  // 45 ms
            (550, 0.008),  // 55 ms
            (650, 0.006),  // 65 ms
            (750, 0.004),  // 75 ms
            (850, 0.003),  // 85 ms
            (950, 0.0025), // 95 ms
            (1050, 0.002), // 105 ms
            (1250, 0.0012),
            (1450, 0.0008),
            (1650, 0.0005),
            (1850, 0.0003),
            (2050, 0.0002), // 205 ms
        ],
    )
}

/// The option-pricing finance-server work distribution, digitized from the
/// paper's Figure 3(b) (source: Ren et al., ICAC 2013 \[26\]).
///
/// Support 4–52 ms with an interior mode around 8–12 ms (≈45 % of the mass)
/// and a light tail. Mean ≈ 10.8 ms.
pub fn finance() -> HistogramDist {
    HistogramDist::new(
        "finance",
        vec![
            (40, 0.15),  // 4 ms
            (80, 0.35),  // 8 ms
            (120, 0.30), // 12 ms
            (160, 0.08), // 16 ms
            (200, 0.04), // 20 ms
            (240, 0.02), // 24 ms
            (280, 0.012),
            (320, 0.008),
            (360, 0.006),
            (400, 0.004),
            (440, 0.002),
            (480, 0.0012),
            (520, 0.0008), // 52 ms
        ],
    )
}

/// A log-normal work distribution (the paper's synthetic workload).
///
/// Parameterized by the underlying normal's `mu`/`sigma`; the work (in
/// units) is `round(exp(N(mu, sigma)))`, clamped to `[min, max]`.
/// Implemented with a Box–Muller transform so we need no extra
/// dependencies; sampling consumes exactly two uniforms per draw.
#[derive(Clone, Copy, Debug)]
pub struct LogNormalDist {
    /// Mean of the underlying normal (of ln-work-in-units).
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
    /// Minimum work (clamp).
    pub min: Work,
    /// Maximum work (clamp).
    pub max: Work,
}

impl LogNormalDist {
    /// The paper-scale log-normal: mean ≈ 10 ms (100 units) with a heavy
    /// tail (`σ = 1`), clamped to [0.5 ms, 1 s].
    pub fn paper() -> Self {
        // mean = exp(mu + sigma²/2) = 100 units → mu = ln(100) − 0.5.
        LogNormalDist {
            mu: 100.0_f64.ln() - 0.5,
            sigma: 1.0,
            min: 5,
            max: 10_000,
        }
    }
}

impl WorkDistribution for LogNormalDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Work {
        // Box–Muller: two uniforms → one standard normal.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let w = (self.mu + self.sigma * z).exp().round();
        (w as u64).clamp(self.min.max(1), self.max)
    }

    fn mean(&self) -> f64 {
        // Analytic mean of the (unclamped) log-normal.
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn name(&self) -> &'static str {
        "log-normal"
    }
}

/// Uniform work distribution over `[lo, hi]` (testing / ablations).
#[derive(Clone, Copy, Debug)]
pub struct UniformDist {
    /// Inclusive lower bound.
    pub lo: Work,
    /// Inclusive upper bound.
    pub hi: Work,
}

impl WorkDistribution for UniformDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Work {
        rng.gen_range(self.lo..=self.hi)
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Constant work (testing / adversarial instances).
#[derive(Clone, Copy, Debug)]
pub struct ConstantDist(
    /// The constant work value.
    pub Work,
);

impl WorkDistribution for ConstantDist {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Work {
        self.0
    }

    fn mean(&self) -> f64 {
        self.0 as f64
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// A bounded Pareto distribution (extension beyond the paper: an even
/// heavier tail than log-normal, for robustness experiments).
#[derive(Clone, Copy, Debug)]
pub struct ParetoDist {
    /// Scale (minimum work).
    pub xm: f64,
    /// Shape α (smaller = heavier tail). Must be > 1 for a finite mean.
    pub alpha: f64,
    /// Clamp maximum.
    pub max: Work,
}

impl WorkDistribution for ParetoDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Work {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x = self.xm / u.powf(1.0 / self.alpha);
        (x.round() as u64).clamp(1, self.max)
    }

    fn mean(&self) -> f64 {
        assert!(self.alpha > 1.0, "Pareto mean undefined for alpha <= 1");
        self.alpha * self.xm / (self.alpha - 1.0)
    }

    fn name(&self) -> &'static str {
        "pareto"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical_mean<D: WorkDistribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn histogram_sampling_matches_mean() {
        let d = bing();
        let emp = empirical_mean(&d, 200_000, 1);
        let analytic = d.mean();
        assert!(
            (emp - analytic).abs() / analytic < 0.03,
            "empirical {emp} vs analytic {analytic}"
        );
    }

    #[test]
    fn bing_mean_near_10ms() {
        // ≈ 10.6 ms = 106 units; allow ±15 %.
        let m = bing().mean();
        assert!((90.0..125.0).contains(&m), "bing mean {m}");
    }

    #[test]
    fn finance_mean_near_10ms() {
        let m = finance().mean();
        assert!((90.0..125.0).contains(&m), "finance mean {m}");
    }

    #[test]
    fn finance_support_bounds() {
        let d = finance();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let w = d.sample(&mut rng);
            assert!((40..=520).contains(&w));
        }
    }

    #[test]
    fn bing_support_bounds_and_mode() {
        let d = bing();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut at_mode = 0;
        let n = 100_000;
        for _ in 0..n {
            let w = d.sample(&mut rng);
            assert!((50..=2050).contains(&w));
            if w == 50 {
                at_mode += 1;
            }
        }
        let frac = at_mode as f64 / n as f64;
        assert!((0.58..0.67).contains(&frac), "mode mass {frac}");
    }

    #[test]
    fn histogram_probabilities_normalized() {
        let p = bing().probabilities();
        let total: f64 = p.iter().map(|&(_, q)| q).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn empty_histogram_panics() {
        let _ = HistogramDist::new("x", vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_weight_panics() {
        let _ = HistogramDist::new("x", vec![(1, 0.0)]);
    }

    #[test]
    fn lognormal_mean_close_to_analytic() {
        let d = LogNormalDist::paper();
        let emp = empirical_mean(&d, 400_000, 7);
        // Clamping trims the extreme tail, so allow 10 %.
        assert!(
            (emp - d.mean()).abs() / d.mean() < 0.10,
            "empirical {emp} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn lognormal_respects_clamps() {
        let d = LogNormalDist {
            mu: 0.0,
            sigma: 3.0,
            min: 10,
            max: 20,
        };
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let w = d.sample(&mut rng);
            assert!((10..=20).contains(&w));
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = UniformDist { lo: 5, hi: 15 };
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let w = d.sample(&mut rng);
            assert!((5..=15).contains(&w));
        }
        assert!((empirical_mean(&d, 100_000, 3) - 10.0).abs() < 0.2);
    }

    #[test]
    fn constant_is_constant() {
        let d = ConstantDist(42);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 42);
        assert_eq!(d.mean(), 42.0);
    }

    #[test]
    fn pareto_tail_heavier_than_uniform() {
        let d = ParetoDist {
            xm: 50.0,
            alpha: 1.5,
            max: 100_000,
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let samples: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let over_10x = samples.iter().filter(|&&w| w > 500).count() as f64 / 1e5;
        // P(X > 10·xm) = 10^{-α} ≈ 0.0316.
        assert!((0.02..0.05).contains(&over_10x), "tail mass {over_10x}");
        assert!(samples.iter().all(|&w| w >= 50));
    }

    #[test]
    fn deterministic_sampling() {
        let d = bing();
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(123);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(123);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
