//! Workload specification and instance generation.

use crate::arrivals::{take_arrivals, ArrivalSource, PeriodicArrivals, PoissonArrivals};
use crate::dist::{bing, finance, LogNormalDist, WorkDistribution};
use parflow_dag::{shapes, Instance, Job, JobDag};
use parflow_time::Work;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Tick resolution: 1 tick = 0.1 ms, so 10 000 ticks per second. A job of
/// `w` work units takes `w/10` ms on one unit-speed processor.
pub const TICKS_PER_SECOND: f64 = 10_000.0;

/// Which work distribution to draw job sizes from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DistKind {
    /// Bing web search (Figure 3a).
    Bing,
    /// Finance option pricing (Figure 3b).
    Finance,
    /// Log-normal synthetic (Section 6).
    LogNormal,
    /// Uniform over an inclusive range (testing).
    Uniform {
        /// Inclusive lower bound (work units).
        lo: Work,
        /// Inclusive upper bound (work units).
        hi: Work,
    },
    /// Constant work (testing / adversarial).
    Constant(
        /// The work value (units).
        Work,
    ),
}

impl DistKind {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Work {
        match *self {
            DistKind::Bing => bing().sample(rng),
            DistKind::Finance => finance().sample(rng),
            DistKind::LogNormal => LogNormalDist::paper().sample(rng),
            DistKind::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            DistKind::Constant(w) => w,
        }
    }

    /// Expected work in units.
    pub fn mean(&self) -> f64 {
        match *self {
            DistKind::Bing => bing().mean(),
            DistKind::Finance => finance().mean(),
            DistKind::LogNormal => LogNormalDist::paper().mean(),
            DistKind::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            DistKind::Constant(w) => w as f64,
        }
    }

    /// Name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DistKind::Bing => "bing",
            DistKind::Finance => "finance",
            DistKind::LogNormal => "log-normal",
            DistKind::Uniform { .. } => "uniform",
            DistKind::Constant(_) => "constant",
        }
    }
}

/// How each job's work is structured as a DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShapeKind {
    /// Parallel-for with the given grain size: a job of `w` units becomes
    /// `ceil(w/grain)` chunks between a source and a sink — the paper's
    /// job structure ("parallelized using parallel for loops").
    ParallelFor {
        /// Units of work per chunk.
        grain: Work,
    },
    /// Fully sequential single node.
    Sequential,
    /// Recursive binary fork-join with ~`w/leaf` leaves of `leaf` units.
    ForkJoin {
        /// Units of work per leaf.
        leaf: Work,
    },
}

impl ShapeKind {
    /// Materialize a DAG carrying (approximately, exactly for
    /// `Sequential`/`ParallelFor`) `work` units.
    pub fn build(&self, work: Work) -> JobDag {
        match *self {
            ShapeKind::Sequential => shapes::single_node(work),
            ShapeKind::ParallelFor { grain } => {
                let grain = grain.max(1);
                let chunks = work.div_ceil(grain).max(1) as usize;
                shapes::parallel_for(work, chunks)
            }
            ShapeKind::ForkJoin { leaf } => {
                let leaf = leaf.max(1);
                let leaves = (work / leaf).max(1);
                let depth = (64 - leaves.leading_zeros() - 1).min(12);
                shapes::fork_join(depth, leaf)
            }
        }
    }
}

/// A complete workload specification; `generate` turns it into an
/// [`Instance`], deterministically for a given seed.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Work distribution.
    pub dist: DistKind,
    /// Job structure.
    pub shape: ShapeKind,
    /// Arrival rate in queries per second (Poisson); `None` for periodic
    /// arrivals with `period_ticks`.
    pub qps: Option<f64>,
    /// Fixed period in ticks when `qps` is `None`.
    pub period_ticks: u64,
    /// Number of jobs `n`.
    pub n_jobs: usize,
    /// RNG seed (workload generation only; engines take their own seeds).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's Figure 2 setup: given distribution and QPS, parallel-for
    /// jobs with a 1 ms grain (10 units).
    ///
    /// ```
    /// use parflow_workloads::{DistKind, WorkloadSpec};
    /// let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 100, 42).generate();
    /// assert_eq!(inst.len(), 100);
    /// assert!(inst.jobs().iter().all(|j| j.dag.validate().is_ok()));
    /// ```
    pub fn paper_fig2(dist: DistKind, qps: f64, n_jobs: usize, seed: u64) -> Self {
        WorkloadSpec {
            dist,
            shape: ShapeKind::ParallelFor { grain: 10 },
            qps: Some(qps),
            period_ticks: 0,
            n_jobs,
            seed,
        }
    }

    /// Generate the instance.
    ///
    /// Implemented over the streaming [`ArrivalSource`] view; the draw
    /// order (all arrivals, then one work sample per job) is unchanged, so
    /// generated instances are byte-identical to the pre-stream layout.
    pub fn generate(&self) -> Instance {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let arrivals = match self.qps {
            Some(qps) => take_arrivals(
                &mut PoissonArrivals::from_qps(qps, TICKS_PER_SECOND).stream(&mut rng),
                self.n_jobs,
            ),
            None => take_arrivals(
                &mut PeriodicArrivals {
                    gap: self.period_ticks,
                }
                .stream(),
                self.n_jobs,
            ),
        };
        let jobs = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let work = self.dist.sample(&mut rng);
                let dag = Arc::new(self.shape.build(work));
                Job::new(i as u32, arrival, dag)
            })
            .collect();
        Instance::new(jobs)
    }

    /// Predicted machine utilization at `m` processors:
    /// `QPS · E[W] / (ticks-per-second · m)`. The DAG adds 2 units
    /// (source + sink) per parallel-for job, included here.
    pub fn expected_utilization(&self, m: usize) -> f64 {
        let overhead = match self.shape {
            ShapeKind::ParallelFor { .. } => 2.0,
            _ => 0.0,
        };
        let rate = match self.qps {
            Some(qps) => qps,
            None => TICKS_PER_SECOND / self.period_ticks as f64,
        };
        rate * (self.dist.mean() + overhead) / (TICKS_PER_SECOND * m as f64)
    }
}

/// One job pulled from a [`JobSource`] stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamJob {
    /// Zero-based position in the stream (doubles as a submission id).
    pub index: u64,
    /// Arrival time in ticks (non-decreasing across the stream).
    pub arrival: parflow_time::Ticks,
    /// Work in units (ticks of service on one unit-speed processor).
    pub work: Work,
}

/// An endless, seeded stream of jobs for the streaming admission service
/// and soak drivers: jobs are produced one at a time, so a sustained-QPS
/// run never materializes an [`Instance`].
///
/// The arrival and work streams draw from two *independent* RNG streams
/// derived from the spec seed, so interleaved pulling cannot perturb
/// either sequence. This is a deliberately different stream layout from
/// [`WorkloadSpec::generate`] (which draws all arrivals before any work
/// samples, and stays byte-compatible with the finite goldens): use
/// `generate` for finite golden-compared instances and `JobSource` for
/// endless serving. Replay is exact: re-creating a `JobSource` from the
/// same spec yields the same stream, any prefix length.
pub struct JobSource {
    dist: DistKind,
    arrivals: Box<dyn ArrivalSource + Send>,
    work_rng: SmallRng,
    produced: u64,
}

/// Seed salt separating the work-sample stream from the arrival stream.
const WORK_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

impl JobSource {
    /// Pull the next job off the stream.
    pub fn next_job(&mut self) -> StreamJob {
        let index = self.produced;
        self.produced += 1;
        StreamJob {
            index,
            arrival: self.arrivals.next_arrival(),
            work: self.dist.sample(&mut self.work_rng),
        }
    }

    /// Jobs produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Name of the underlying arrival process.
    pub fn arrival_name(&self) -> &'static str {
        self.arrivals.source_name()
    }
}

impl std::fmt::Debug for JobSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSource")
            .field("dist", &self.dist)
            .field("arrivals", &self.arrivals.source_name())
            .field("produced", &self.produced)
            .finish()
    }
}

impl WorkloadSpec {
    /// The endless streaming view of this spec (see [`JobSource`]).
    pub fn job_source(&self) -> JobSource {
        let arrivals: Box<dyn ArrivalSource + Send> = match self.qps {
            Some(qps) => Box::new(
                PoissonArrivals::from_qps(qps, TICKS_PER_SECOND)
                    .stream(SmallRng::seed_from_u64(self.seed)),
            ),
            None => Box::new(
                PeriodicArrivals {
                    gap: self.period_ticks,
                }
                .stream(),
            ),
        };
        JobSource {
            dist: self.dist,
            arrivals,
            work_rng: SmallRng::seed_from_u64(self.seed ^ WORK_STREAM_SALT),
            produced: 0,
        }
    }
}

/// The QPS at which `dist` reaches a target utilization on `m` processors.
pub fn qps_for_utilization(dist: DistKind, m: usize, target: f64) -> f64 {
    assert!(target > 0.0);
    target * TICKS_PER_SECOND * m as f64 / dist.mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let spec = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 200, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.work(), y.work());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 200, 1).generate();
        let b = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 200, 2).generate();
        let same = a
            .jobs()
            .iter()
            .zip(b.jobs())
            .filter(|(x, y)| x.arrival == y.arrival)
            .count();
        assert!(same < a.len(), "seeds should change arrivals");
    }

    #[test]
    fn utilization_prediction_close_to_realized() {
        let spec = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 20_000, 7);
        let inst = spec.generate();
        let predicted = spec.expected_utilization(16);
        let realized = inst.utilization(16).unwrap().to_f64();
        assert!(
            (predicted - realized).abs() / predicted < 0.05,
            "predicted {predicted} vs realized {realized}"
        );
    }

    #[test]
    fn fig2_loads_are_paper_like() {
        // QPS 800 / 1000 / 1200 on m=16 must give ≈ 53 / 66 / 80 %.
        for (qps, lo, hi) in [
            (800.0, 0.45, 0.60),
            (1000.0, 0.58, 0.73),
            (1200.0, 0.70, 0.88),
        ] {
            let u = WorkloadSpec::paper_fig2(DistKind::Bing, qps, 10, 0).expected_utilization(16);
            assert!((lo..hi).contains(&u), "qps {qps} → util {u}");
        }
    }

    #[test]
    fn parallel_for_shape_has_grain_chunks() {
        let dag = ShapeKind::ParallelFor { grain: 10 }.build(95);
        // 95 units → 10 chunks + source + sink.
        assert_eq!(dag.num_nodes(), 12);
        assert_eq!(dag.total_work(), 97);
    }

    #[test]
    fn sequential_shape() {
        let dag = ShapeKind::Sequential.build(55);
        assert_eq!(dag.num_nodes(), 1);
        assert_eq!(dag.total_work(), 55);
    }

    #[test]
    fn fork_join_shape_reasonable() {
        let dag = ShapeKind::ForkJoin { leaf: 10 }.build(160);
        // 16 leaves → depth 4.
        assert_eq!(dag.span(), 10 + 2 * 4);
        assert!(dag.total_work() >= 160);
    }

    #[test]
    fn qps_for_utilization_roundtrip() {
        let qps = qps_for_utilization(DistKind::Constant(100), 16, 0.5);
        // 0.5 · 10_000 · 16 / 100 = 800.
        assert!((qps - 800.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_spec() {
        let spec = WorkloadSpec {
            dist: DistKind::Constant(5),
            shape: ShapeKind::Sequential,
            qps: None,
            period_ticks: 100,
            n_jobs: 5,
            seed: 0,
        };
        let inst = spec.generate();
        let arrivals: Vec<_> = inst.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![0, 100, 200, 300, 400]);
        assert!(inst.jobs().iter().all(|j| j.work() == 5));
    }

    #[test]
    fn job_source_replays_and_streams_endlessly() {
        let spec = WorkloadSpec::paper_fig2(DistKind::Bing, 1500.0, 10, 77);
        let mut a = spec.job_source();
        let mut b = spec.job_source();
        let mut prev = 0;
        for i in 0..5_000u64 {
            let (x, y) = (a.next_job(), b.next_job());
            assert_eq!(x, y, "same spec must replay the same stream");
            assert_eq!(x.index, i);
            assert!(x.arrival >= prev, "arrivals must be non-decreasing");
            assert!(x.work >= 1);
            prev = x.arrival;
        }
        assert_eq!(a.produced(), 5_000);
        assert_eq!(a.arrival_name(), "poisson");
    }

    #[test]
    fn job_source_periodic_mode() {
        let spec = WorkloadSpec {
            dist: DistKind::Constant(7),
            shape: ShapeKind::Sequential,
            qps: None,
            period_ticks: 50,
            n_jobs: 0, // ignored by the stream: it is endless
            seed: 3,
        };
        let mut s = spec.job_source();
        assert_eq!(s.arrival_name(), "periodic");
        for i in 0..10u64 {
            let j = s.next_job();
            assert_eq!(j.arrival, i * 50);
            assert_eq!(j.work, 7);
        }
    }

    #[test]
    fn spec_serde_roundtrip() {
        if serde_json::from_str::<i32>("1").is_err() {
            eprintln!("skipping: serde_json is stubbed in this offline build");
            return;
        }
        let spec = WorkloadSpec::paper_fig2(DistKind::Finance, 900.0, 1000, 3);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_jobs, 1000);
        assert_eq!(back.dist, DistKind::Finance);
        let a = spec.generate();
        let b = back.generate();
        assert_eq!(a.total_work(), b.total_work());
    }
}
