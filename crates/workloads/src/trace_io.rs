//! Persisting workload instances to JSON so experiments can be regenerated
//! from identical inputs.

use parflow_dag::Instance;
use std::fs;
use std::io;
use std::path::Path;

/// Serialize an instance to a JSON file.
pub fn save_instance<P: AsRef<Path>>(instance: &Instance, path: P) -> io::Result<()> {
    let json = serde_json::to_string(instance)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Load an instance from a JSON file, re-validating every job's DAG.
pub fn load_instance<P: AsRef<Path>>(path: P) -> io::Result<Instance> {
    let json = fs::read_to_string(path)?;
    let instance: Instance =
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    for job in instance.jobs() {
        job.dag
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    }
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{DistKind, WorkloadSpec};

    /// True when a real `serde_json` is linked (the offline build stubs it
    /// out; see vendor/offline-stubs/README.md). Tests that must *produce*
    /// valid JSON need the real thing; corrupted-input tests only assert
    /// `is_err()` and therefore run in both modes.
    fn serde_available() -> bool {
        serde_json::from_str::<i32>("1").is_ok()
    }

    #[test]
    fn roundtrip() {
        if !serde_available() {
            eprintln!("skipping: serde_json is stubbed in this offline build");
            return;
        }
        let inst = WorkloadSpec::paper_fig2(DistKind::Finance, 900.0, 50, 5).generate();
        let dir = std::env::temp_dir().join("parflow_trace_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        save_instance(&inst, &path).unwrap();
        let back = load_instance(&path).unwrap();
        assert_eq!(back.len(), inst.len());
        assert_eq!(back.total_work(), inst.total_work());
        for (a, b) in inst.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.dag.total_work(), b.dag.total_work());
            assert_eq!(a.dag.span(), b.dag.span());
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_instance("/nonexistent/definitely/missing.json").is_err());
    }

    #[test]
    fn load_garbage_errors() {
        let dir = std::env::temp_dir().join("parflow_trace_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        fs::write(&path, "not json at all").unwrap();
        assert!(load_instance(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    /// Write `content` to a scratch file, load it, and assert the load
    /// returns an error (never panics).
    fn assert_load_errs(name: &str, content: &str) {
        let dir = std::env::temp_dir().join("parflow_trace_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::write(&path, content).unwrap();
        let res = load_instance(&path);
        assert!(res.is_err(), "{name}: expected error, got {res:?}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_truncated_json_errors() {
        // A prefix of a structurally plausible file, cut mid-object — the
        // kind of corruption a killed writer leaves behind.
        assert_load_errs(
            "truncated_hand.json",
            r#"{"jobs":[{"id":0,"arrival":0,"wei"#,
        );
    }

    #[test]
    fn load_truncated_real_file_errors() {
        if !serde_available() {
            eprintln!("skipping: serde_json is stubbed in this offline build");
            return;
        }
        // Save a genuine instance, then chop the file in half.
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 800.0, 20, 3).generate();
        let dir = std::env::temp_dir().join("parflow_trace_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated_real.json");
        save_instance(&inst, &path).unwrap();
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(load_instance(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_wrong_schema_errors() {
        // Valid JSON, wrong shape: every case must surface as an error.
        assert_load_errs("schema_array.json", "[1, 2, 3]");
        assert_load_errs("schema_scalar.json", r#"{"jobs": 3}"#);
        assert_load_errs("schema_renamed.json", r#"{"instance": []}"#);
        assert_load_errs(
            "schema_job_shape.json",
            r#"{"jobs":[{"id":"zero","arrival":0,"weight":1,"dag":null}]}"#,
        );
    }

    #[test]
    fn load_invalid_dag_errors() {
        // Schema-valid but semantically broken: node 0's successor index 5
        // is out of range, so `JobDag::validate` must reject the file even
        // though deserialization itself succeeds.
        assert_load_errs(
            "bad_dag.json",
            r#"{"jobs":[{"id":0,"arrival":0,"weight":1,"dag":{
                "nodes":[{"work":1,"succs":[5],"pred_count":0}],
                "topo_order":[0],"total_work":1,"span":1}}]}"#,
        );
    }
}
