//! Persisting workload instances to JSON so experiments can be regenerated
//! from identical inputs.

use parflow_dag::Instance;
use std::fs;
use std::io;
use std::path::Path;

/// Serialize an instance to a JSON file.
pub fn save_instance<P: AsRef<Path>>(instance: &Instance, path: P) -> io::Result<()> {
    let json = serde_json::to_string(instance)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Load an instance from a JSON file, re-validating every job's DAG.
pub fn load_instance<P: AsRef<Path>>(path: P) -> io::Result<Instance> {
    let json = fs::read_to_string(path)?;
    let instance: Instance = serde_json::from_str(&json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    for job in instance.jobs() {
        job.dag
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    }
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{DistKind, WorkloadSpec};

    #[test]
    fn roundtrip() {
        let inst = WorkloadSpec::paper_fig2(DistKind::Finance, 900.0, 50, 5).generate();
        let dir = std::env::temp_dir().join("parflow_trace_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        save_instance(&inst, &path).unwrap();
        let back = load_instance(&path).unwrap();
        assert_eq!(back.len(), inst.len());
        assert_eq!(back.total_work(), inst.total_work());
        for (a, b) in inst.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.dag.total_work(), b.dag.total_work());
            assert_eq!(a.dag.span(), b.dag.span());
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_instance("/nonexistent/definitely/missing.json").is_err());
    }

    #[test]
    fn load_garbage_errors() {
        let dir = std::env::temp_dir().join("parflow_trace_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        fs::write(&path, "not json at all").unwrap();
        assert!(load_instance(&path).is_err());
        fs::remove_file(&path).unwrap();
    }
}
