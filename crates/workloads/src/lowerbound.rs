//! The Section 5 adversarial instance for the work-stealing lower bound.

use parflow_dag::{shapes, Instance, Job};
use std::sync::Arc;

/// Build the Lemma 5.1 instance: `n` identical tiny jobs, each one unit-work
/// root enabling `m/10` independent unit tasks, released every `2m` time
/// steps so lifetimes never overlap in any non-idling schedule.
///
/// With `m = log n` processors, randomized work stealing executes at least
/// one job fully sequentially in expectation (each steal attempt misses the
/// single loaded deque with probability `≥ 1/2e` per processor-step), giving
/// maximum flow `≈ m/10 = Ω(log n)` while OPT finishes every job in 2 steps.
pub fn lower_bound_instance(n: usize, m: usize) -> Instance {
    let dag = Arc::new(shapes::adversarial_tiny(m));
    let gap = 2 * m as u64;
    let jobs = (0..n)
        .map(|i| Job::new(i as u32, i as u64 * gap, dag.clone()))
        .collect();
    Instance::new(jobs)
}

/// The number of machines the lemma pairs with `n` jobs: `m = log2(n)`,
/// clamped to at least 10 so the gadget has at least one child task.
pub fn lemma_m_for_n(n: usize) -> usize {
    (usize::BITS - n.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_structure() {
        let inst = lower_bound_instance(4, 40);
        assert_eq!(inst.len(), 4);
        let arrivals: Vec<_> = inst.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![0, 80, 160, 240]);
        for j in inst.jobs() {
            assert_eq!(j.work(), 5); // m/10 + 1
            assert_eq!(j.span(), 2);
        }
    }

    #[test]
    fn jobs_never_overlap_in_nonidling_schedule() {
        // Work m/10+1 ≤ gap 2m for any m ≥ 1, so even sequential execution
        // finishes before the next arrival.
        for m in [10, 20, 100] {
            let inst = lower_bound_instance(3, m);
            let work = inst.jobs()[0].work();
            assert!(work <= 2 * m as u64);
        }
    }

    #[test]
    fn lemma_m() {
        assert_eq!(lemma_m_for_n(1024), 11);
        assert_eq!(lemma_m_for_n(1 << 20), 21);
    }
}
