//! O(1)-memory flow statistics for streaming runs.
//!
//! [`FlowStats::from_flows`](crate::FlowStats::from_flows) needs the whole
//! flow vector — O(n) memory plus a sort — which is exactly what the
//! streaming simulation core exists to avoid. [`StreamingFlowStats`] folds
//! flows in one at a time: the maximum (the paper's objective) and the
//! mean stay **exact**; p50/p95/p99/p999 come from the fixed-bin
//! [`Histogram`], accurate to one bin width. Live memory is the histogram's
//! bin vector, independent of the number of samples.

use crate::flow::FlowStats;
use crate::histogram::Histogram;
use parflow_time::Rational;

/// Running flow-time statistics over a stream of samples.
///
/// Feed flows with [`record`](Self::record) (exact rationals) or
/// [`record_f64`](Self::record_f64) (projected samples). Non-finite
/// projections are tallied out-of-band like [`FlowStats::nan`], so one
/// poisoned flow cannot skew a 10M-job summary.
#[derive(Clone, Debug)]
pub struct StreamingFlowStats {
    count: u64,
    nan: u64,
    max: Rational,
    min: f64,
    sum: f64,
    hist: Histogram,
}

impl StreamingFlowStats {
    /// Statistics with `bins` uniform percentile bins over `[lo, hi)`
    /// (same clamping semantics as [`Histogram::new`]: out-of-range flows
    /// land in the edge bins, so tail percentiles saturate at `hi`).
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        StreamingFlowStats {
            count: 0,
            nan: 0,
            max: Rational::ZERO,
            min: f64::INFINITY,
            sum: 0.0,
            hist: Histogram::new(lo, hi, bins),
        }
    }

    /// Fold in one exact flow. The maximum is updated on the rational
    /// (bit-exact); the `f64` projection feeds mean and percentiles.
    pub fn record(&mut self, flow: Rational) {
        let x = flow.to_f64();
        if !x.is_finite() {
            self.nan += 1;
            return;
        }
        if self.count == 0 || self.max < flow {
            self.max = flow;
        }
        self.min = self.min.min(x);
        self.count += 1;
        self.sum += x;
        self.hist.add(x);
    }

    /// Fold in a projected sample (no exact rational available). The exact
    /// maximum is tracked through `Rational::from_int` of the ceiling, so
    /// prefer [`record`](Self::record) when the rational exists.
    pub fn record_f64(&mut self, x: f64) {
        if !x.is_finite() {
            self.nan += 1;
            return;
        }
        let approx = Rational::from_int(x.ceil() as i128);
        if self.count == 0 || self.max < approx {
            self.max = approx;
        }
        self.min = self.min.min(x);
        self.count += 1;
        self.sum += x;
        self.hist.add(x);
    }

    /// Finite samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite samples excluded.
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Exact maximum over recorded flows ([`Rational::ZERO`] when empty).
    pub fn max(&self) -> Rational {
        self.max
    }

    /// Exact running mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum of the `f64` projections (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Approximate quantile from the histogram (one-bin-width accuracy);
    /// `None` when empty or `q ∉ (0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }

    /// The percentile histogram itself (for rendering).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Snapshot as a [`FlowStats`]: max and mean exact, percentiles
    /// histogram-approximate. `None` when no finite samples were recorded
    /// — mirroring [`FlowStats::from_flows`].
    pub fn finish(&self) -> Option<FlowStats> {
        if self.count == 0 {
            return None;
        }
        let pct = |q: f64| self.hist.quantile(q).unwrap_or(f64::NAN);
        Some(FlowStats {
            count: self.count as usize,
            nan: self.nan as usize,
            max: self.max,
            mean: self.sum / self.count as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            p999: pct(0.999),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_max_and_mean_match_batch() {
        let flows: Vec<Rational> = [3, 7, 1, 9, 9, 2]
            .iter()
            .map(|&x| Rational::from_int(x))
            .collect();
        let batch = FlowStats::from_flows(&flows).unwrap();
        let mut s = StreamingFlowStats::new(0.0, 16.0, 64);
        for &f in &flows {
            s.record(f);
        }
        let snap = s.finish().unwrap();
        assert_eq!(snap.max, batch.max);
        assert!((snap.mean - batch.mean).abs() < 1e-12);
        assert_eq!(snap.count, batch.count);
        assert_eq!(s.min(), Some(1.0));
    }

    #[test]
    fn quantiles_within_one_bin() {
        let mut s = StreamingFlowStats::new(0.0, 100.0, 100);
        for i in 1..=100 {
            s.record(Rational::from_int(i));
        }
        // Bin width 1: nearest-rank p50 of 1..=100 is 50, upper edge ≤ 51.
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 50.0).abs() <= 1.0, "p50 = {p50}");
        let p99 = s.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 = {p99}");
    }

    #[test]
    fn nan_kept_out_of_band() {
        let mut s = StreamingFlowStats::new(0.0, 10.0, 4);
        s.record_f64(f64::NAN);
        s.record_f64(3.0);
        assert_eq!(s.nan(), 1);
        assert_eq!(s.count(), 1);
        assert_eq!(s.finish().unwrap().nan, 1);
    }

    #[test]
    fn empty_is_none() {
        let s = StreamingFlowStats::new(0.0, 10.0, 4);
        assert!(s.finish().is_none());
        assert!(s.mean().is_none());
        assert!(s.quantile(0.5).is_none());
        assert_eq!(s.max(), Rational::ZERO);
    }
}
