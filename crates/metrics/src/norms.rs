//! ℓ_k norms of flow time and maximum stretch — the objectives the paper's
//! conclusion and Section 7 remarks point at.
//!
//! * The **ℓ_k norm** `(Σ_i F_i^k)^{1/k}` interpolates between average flow
//!   time (k = 1, scaled) and maximum flow time (k → ∞). The paper asks
//!   whether strong online guarantees exist for these in the DAG model —
//!   the `norms` experiment measures how the schedulers trade them off.
//! * **Maximum stretch** scales each flow by the job's size. For DAG jobs
//!   the paper notes two natural interpretations — scale by total work
//!   `W_i` or by critical-path length `P_i` — and observes both are
//!   captured by maximum weighted flow time (with weights `1/W_i` or
//!   `1/P_i`), so BWF handles either.

use parflow_time::Rational;

/// The ℓ_k norm of a set of flows, `(Σ F_i^k)^{1/k}`, in `f64`.
/// `k = 0` is rejected; `k = u32::MAX` is treated as ℓ_∞ (the max).
///
/// ```
/// use parflow_metrics::lk_norm;
/// use parflow_time::Rational;
/// let flows = vec![Rational::from_int(3), Rational::from_int(4)];
/// assert!((lk_norm(&flows, 2) - 5.0).abs() < 1e-9);      // 3-4-5
/// assert_eq!(lk_norm(&flows, u32::MAX), 4.0);            // l_inf = max
/// ```
pub fn lk_norm(flows: &[Rational], k: u32) -> f64 {
    assert!(k >= 1, "lk norm needs k >= 1");
    if flows.is_empty() {
        return 0.0;
    }
    if k == u32::MAX {
        return flows
            .iter()
            .map(|f| f.to_f64())
            .fold(f64::NEG_INFINITY, f64::max);
    }
    // Normalize by the max to avoid overflow for large k, then rescale.
    let max = flows
        .iter()
        .map(|f| f.to_f64())
        .fold(f64::NEG_INFINITY, f64::max);
    if max <= 0.0 {
        return 0.0;
    }
    let sum: f64 = flows
        .iter()
        .map(|f| (f.to_f64() / max).powi(k as i32))
        .sum();
    max * sum.powf(1.0 / k as f64)
}

/// Per-job stretch values `F_i / size_i` (both exact rationals in, `f64`
/// out) where `sizes[i]` is the chosen size measure (`W_i` or `P_i`).
pub fn stretches(flows: &[Rational], sizes: &[u64]) -> Vec<f64> {
    assert_eq!(flows.len(), sizes.len(), "flows/sizes length mismatch");
    flows
        .iter()
        .zip(sizes)
        .map(|(f, &s)| {
            assert!(s > 0, "job size must be positive");
            f.to_f64() / s as f64
        })
        .collect()
}

/// Maximum stretch `max_i F_i / size_i`.
pub fn max_stretch(flows: &[Rational], sizes: &[u64]) -> f64 {
    stretches(flows, sizes).into_iter().fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn l1_is_sum() {
        let flows = vec![r(1), r(2), r(3)];
        assert!((lk_norm(&flows, 1) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn l2_known_value() {
        let flows = vec![r(3), r(4)];
        assert!((lk_norm(&flows, 2) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn linf_is_max() {
        let flows = vec![r(3), r(10), r(4)];
        assert_eq!(lk_norm(&flows, u32::MAX), 10.0);
    }

    #[test]
    fn norms_decrease_in_k() {
        let flows: Vec<Rational> = (1..=20).map(r).collect();
        let l1 = lk_norm(&flows, 1);
        let l2 = lk_norm(&flows, 2);
        let l4 = lk_norm(&flows, 4);
        let linf = lk_norm(&flows, u32::MAX);
        assert!(l1 >= l2 && l2 >= l4 && l4 >= linf);
        // and ℓ_k → ℓ_∞ from above
        let l64 = lk_norm(&flows, 64);
        assert!(l64 >= linf && l64 < linf * 1.1);
    }

    #[test]
    fn large_k_no_overflow() {
        let flows = vec![r(1_000_000); 1000];
        let v = lk_norm(&flows, 1000);
        assert!(v.is_finite());
        assert!((v / 1_000_000.0 - 1.0).abs() < 0.01);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(lk_norm(&[], 2), 0.0);
        assert_eq!(max_stretch(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn k_zero_panics() {
        lk_norm(&[r(1)], 0);
    }

    #[test]
    fn stretch_basics() {
        let flows = vec![r(10), r(6)];
        let sizes = vec![5u64, 2];
        let s = stretches(&flows, &sizes);
        assert_eq!(s, vec![2.0, 3.0]);
        assert_eq!(max_stretch(&flows, &sizes), 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn stretch_length_mismatch_panics() {
        stretches(&[r(1)], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stretch_zero_size_panics() {
        max_stretch(&[r(1)], &[0]);
    }
}
