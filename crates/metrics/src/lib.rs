//! # parflow-metrics
//!
//! Reporting utilities for parflow experiments: flow-time statistics
//! ([`FlowStats`]), competitive-ratio helpers, fixed-bin histograms with
//! ASCII rendering (Figure 3), and aligned tables for experiment output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod histogram;
mod norms;
mod streaming;
mod table;

pub use flow::{percentile_sorted, ratio_to_bound, try_percentile_sorted, FlowStats, SampleStats};
pub use histogram::Histogram;
pub use norms::{lk_norm, max_stretch, stretches};
pub use streaming::StreamingFlowStats;
pub use table::Table;

#[cfg(test)]
mod proptests {
    use super::*;
    use parflow_time::Rational;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn stats_max_dominates_percentiles(
            flows in proptest::collection::vec(1i128..10_000, 1..200)
        ) {
            let flows: Vec<Rational> = flows.into_iter().map(Rational::from_int).collect();
            let s = FlowStats::from_flows(&flows).unwrap();
            let mx = s.max.to_f64();
            prop_assert!(s.p50 <= s.p95 + 1e-9);
            prop_assert!(s.p95 <= s.p99 + 1e-9);
            prop_assert!(s.p99 <= s.p999 + 1e-9);
            prop_assert!(s.p999 <= mx + 1e-9);
            prop_assert!(s.mean <= mx + 1e-9);
        }

        #[test]
        fn histogram_mass_conserved(xs in proptest::collection::vec(-5.0f64..15.0, 1..300)) {
            let mut h = Histogram::new(0.0, 10.0, 7);
            h.extend(xs.iter().copied());
            prop_assert_eq!(h.total() as usize, xs.len());
            let sum: u64 = h.counts().iter().sum();
            prop_assert_eq!(sum as usize, xs.len());
            let p: f64 = h.probabilities().iter().map(|&(_, q)| q).sum();
            prop_assert!((p - 1.0).abs() < 1e-9);
        }

        #[test]
        fn percentile_monotone(xs in proptest::collection::vec(0.0f64..100.0, 1..100),
                               q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(percentile_sorted(&sorted, lo) <= percentile_sorted(&sorted, hi));
        }
    }
}
