//! Aligned ASCII tables for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table: headers plus string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the width differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space padding and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{c:<w$}{sep}", w = widths[i]);
            }
        };
        write_row(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{}{}", "-".repeat(*w), sep);
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (no quoting — experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // All rows align on the second column.
        let col2 = lines[0].find("value").unwrap();
        assert_eq!(lines[2].rfind('1').unwrap(), col2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
