//! Fixed-bin histograms with ASCII rendering (used to regenerate Figure 3).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A histogram over `f64` samples with uniform bins on `[lo, hi)`; samples
/// outside the range are clamped into the edge bins. NaN samples are
/// counted separately (they are not data, but silently dropping them hides
/// upstream bugs) and excluded from `total` and every probability.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// NaN samples seen by [`Histogram::add`]. `serde(default)` keeps
    /// pre-existing serialized histograms loadable.
    #[serde(default)]
    nan: u64,
}

impl Histogram {
    /// Create a histogram with `bins` uniform bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            nan: 0,
        }
    }

    /// Add one sample. NaN goes to the separate [`nan`](Self::nan) tally:
    /// the old behaviour silently binned it into bin 0 (`NaN as i64` casts
    /// to 0), inflating the lowest bin with garbage.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Add many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Total non-NaN samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// NaN samples rejected by [`Histogram::add`]; never part of
    /// [`total`](Self::total) or any bin.
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile by nearest rank over the bins: the upper edge
    /// of the bin holding the rank-`⌈q·total⌉` sample. Accurate to one bin
    /// width for in-range samples (out-of-range samples were clamped into
    /// the edge bins, so tail quantiles saturate at `hi`). `None` when the
    /// histogram is empty or `q ∉ (0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(self.lo + width * (i as f64 + 1.0));
            }
        }
        Some(self.hi)
    }

    /// `(bin_center, probability)` pairs.
    pub fn probabilities(&self) -> Vec<(f64, f64)> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                let p = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, p)
            })
            .collect()
    }

    /// Render as ASCII bars, one row per bin: `center | ###### p`.
    /// `width` is the number of characters of the longest bar.
    pub fn render(&self, width: usize) -> String {
        let probs = self.probabilities();
        let pmax = probs.iter().map(|&(_, p)| p).fold(0.0_f64, f64::max);
        let mut out = String::new();
        for (center, p) in probs {
            let bar_len = if pmax > 0.0 {
                ((p / pmax) * width as f64).round() as usize
            } else {
                0
            };
            let _ = writeln!(
                out,
                "{center:>10.1} | {:<w$} {p:.4}",
                "#".repeat(bar_len),
                w = width
            );
        }
        if self.nan > 0 {
            let _ = writeln!(out, "{:>10} | {} sample(s) excluded", "NaN", self.nan);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5); // bin 0
        h.add(9.5); // bin 9
        h.add(5.0); // bin 5
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.1, 0.3, 0.6, 0.9, 0.95]);
        let total: f64 = h.probabilities().iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centers() {
        let h = Histogram::new(0.0, 10.0, 2);
        let p = h.probabilities();
        assert_eq!(p[0].0, 2.5);
        assert_eq!(p[1].0, 7.5);
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.extend([0.5, 0.5, 0.5, 1.5]);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2);
        // The fuller bin renders the longer bar.
        let lines: Vec<&str> = s.lines().collect();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(hashes(lines[0]) > hashes(lines[1]));
    }

    #[test]
    fn empty_render_no_bars() {
        let h = Histogram::new(0.0, 1.0, 3);
        let s = h.render(10);
        assert!(!s.contains('#'));
    }

    #[test]
    fn nan_counted_separately_not_bin_zero() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(f64::NAN);
        h.add(0.5);
        h.add(f64::NAN);
        // NaN neither lands in bin 0 nor counts toward the total.
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.total(), 1);
        assert_eq!(h.nan(), 2);
        // Probabilities still sum to 1 over the real samples.
        let mass: f64 = h.probabilities().iter().map(|&(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nan_surfaced_in_render() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        let s = h.render(10);
        assert!(s.contains("NaN"), "render must surface NaN count: {s}");
        assert!(s.contains("1 sample(s) excluded"));
        // A clean histogram stays clean.
        let clean = Histogram::new(0.0, 1.0, 2).render(10);
        assert!(!clean.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn bad_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
