//! Flow-time statistics.

use parflow_time::Rational;
use serde::{Deserialize, Serialize};

/// Summary statistics over a set of flow times.
///
/// Percentiles use the nearest-rank method on the sorted sample; the
/// maximum is kept exact (rational), everything else is `f64` because it is
/// reporting-only. Samples whose `f64` projection is non-finite (a NaN
/// flow from a faulted or shed run, an overflow to infinity) are counted
/// in [`FlowStats::nan`] and excluded from every other field.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowStats {
    /// Finite sample size (excludes [`FlowStats::nan`]).
    pub count: usize,
    /// Samples excluded as non-finite, kept out-of-band like the
    /// histogram's NaN bin so one bad flow cannot poison a whole cell.
    #[serde(default)]
    pub nan: usize,
    /// Exact maximum flow (the paper's objective).
    pub max: Rational,
    /// Mean flow.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl FlowStats {
    /// Compute statistics from exact flows. Returns `None` only when no
    /// finite samples remain (empty input, or every flow projects to a
    /// non-finite `f64`); a partially-poisoned sample set degrades to
    /// statistics over its finite part with the rest counted in `nan`.
    pub fn from_flows(flows: &[Rational]) -> Option<FlowStats> {
        let max = flows.iter().copied().max()?;
        let vals: Vec<f64> = flows.iter().map(|f| f.to_f64()).collect();
        Self::from_projected(max, &vals)
    }

    /// Core of [`FlowStats::from_flows`] over the `f64` projections, with
    /// the exact maximum supplied separately. Public so reporting paths
    /// that only hold `f64` flows (faulted/shed runs, sweep cells) share
    /// the same degradation: non-finite samples are counted in `nan` and
    /// excluded, the sort is total-order, and the result is `None` only
    /// when no finite samples remain.
    pub fn from_projected(max: Rational, samples: &[f64]) -> Option<FlowStats> {
        let mut vals: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        let nan = samples.len() - vals.len();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(f64::total_cmp);
        // lint: allow(float-determinism) sums a freshly sorted Vec in index order; the order is pinned by the sort above
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let pct = |q: f64| try_percentile_sorted(&vals, q).unwrap_or(f64::NAN);
        Some(FlowStats {
            count: vals.len(),
            nan,
            max,
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            p999: pct(0.999),
        })
    }

    /// Max flow in milliseconds given the tick resolution (ticks/second).
    pub fn max_ms(&self, ticks_per_second: f64) -> f64 {
        self.max.to_f64() * 1000.0 / ticks_per_second
    }
}

/// Order statistics over raw `f64` samples with non-finite values counted
/// out-of-band — the non-panicking aggregation path for sweep cells and
/// any other reporting surface whose inputs are not validated.
///
/// `from_samples` never panics: NaN and ±∞ samples are excluded and
/// counted in [`SampleStats::nonfinite`], and the constructor returns
/// `None` only when no finite samples remain. An all-NaN or empty cell is
/// a *normal* outcome (a pruned config, a fully-shed run), not a bug.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Finite samples summarized.
    pub count: usize,
    /// Samples excluded as NaN or ±∞.
    pub nonfinite: usize,
    /// Minimum finite sample.
    pub min: f64,
    /// Maximum finite sample.
    pub max: f64,
    /// Mean of finite samples.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl SampleStats {
    /// Summarize a raw sample slice. `None` iff no finite samples remain.
    pub fn from_samples(xs: &[f64]) -> Option<SampleStats> {
        let mut vals: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        let nonfinite = xs.len() - vals.len();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(f64::total_cmp);
        // lint: allow(float-determinism) sums a freshly sorted Vec in index order; the order is pinned by the sort above
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let pct = |q: f64| try_percentile_sorted(&vals, q).unwrap_or(f64::NAN);
        Some(SampleStats {
            count: vals.len(),
            nonfinite,
            min: vals[0],
            max: vals[vals.len() - 1],
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted slice; `None` when the
/// slice is empty or `q` falls outside `[0, 1]` (NaN included).
///
/// Prefer this over [`percentile_sorted`] anywhere the inputs are not
/// already validated — reporting paths should degrade, not panic.
pub fn try_percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Nearest-rank percentile of an ascending-sorted slice; `q` in `[0, 1]`.
///
/// # Panics
///
/// On an empty slice or out-of-range `q`; use [`try_percentile_sorted`]
/// for a non-panicking variant.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    try_percentile_sorted(sorted, q).expect("validated above")
}

/// The competitive-style ratio `alg / lower_bound`, `None` when the bound is
/// zero (empty instance).
pub fn ratio_to_bound(alg: Rational, lower_bound: Rational) -> Option<f64> {
    if lower_bound.is_zero() {
        return None;
    }
    Some((alg / lower_bound).to_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn empty_is_none() {
        assert!(FlowStats::from_flows(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = FlowStats::from_flows(&[r(7)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, r(7));
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p999, 7.0);
    }

    #[test]
    fn known_percentiles() {
        let flows: Vec<Rational> = (1..=100).map(r).collect();
        let s = FlowStats::from_flows(&flows).unwrap();
        assert_eq!(s.max, r(100));
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_ok() {
        let flows = vec![r(5), r(1), r(9), r(3)];
        let s = FlowStats::from_flows(&flows).unwrap();
        assert_eq!(s.max, r(9));
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn max_ms_conversion() {
        let s = FlowStats::from_flows(&[r(250)]).unwrap();
        // 250 ticks at 10_000 ticks/s = 25 ms.
        assert!((s.max_ms(10_000.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_bounds() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 1.0), 3.0);
        assert_eq!(percentile_sorted(&v, 0.34), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_bad_quantile_panics() {
        percentile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn try_percentile_degrades_instead_of_panicking() {
        assert_eq!(try_percentile_sorted(&[], 0.5), None);
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(try_percentile_sorted(&v, -0.1), None);
        assert_eq!(try_percentile_sorted(&v, 1.1), None);
        assert_eq!(try_percentile_sorted(&v, f64::NAN), None);
        assert_eq!(try_percentile_sorted(&v, 0.0), Some(1.0));
        assert_eq!(try_percentile_sorted(&v, 0.5), Some(2.0));
        assert_eq!(try_percentile_sorted(&v, 1.0), Some(3.0));
    }

    /// Regression for the flow.rs:37 panic family: the sort used
    /// `partial_cmp(..).expect("flows are finite")`, so a single NaN flow
    /// from a faulted/shed run panicked the whole driver mid-sweep.
    /// `from_projected` is the same code path `from_flows` runs; a NaN
    /// sample must degrade (counted out-of-band), never panic.
    #[test]
    fn nan_flow_degrades_instead_of_panicking() {
        let s = FlowStats::from_projected(r(3), &[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.nan, 1);
        assert_eq!(s.max, r(3));
        assert_eq!(s.p50, 1.0);
        assert_eq!(s.p999, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        // No finite samples at all: None, not a panic.
        assert!(FlowStats::from_projected(r(1), &[f64::NAN, f64::INFINITY]).is_none());
        // from_flows is unchanged for exact inputs (which are always finite).
        let via_rational = FlowStats::from_flows(&[r(1), r(3)]).unwrap();
        assert_eq!(via_rational.nan, 0);
        assert_eq!(via_rational.count, 2);
    }

    #[test]
    fn sample_stats_nan_out_of_band() {
        let s = SampleStats::from_samples(&[f64::NAN, 2.0, 1.0, f64::INFINITY, 4.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.nonfinite, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert!((s.mean - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sample_stats_empty_and_all_nan_are_none() {
        assert!(SampleStats::from_samples(&[]).is_none());
        assert!(SampleStats::from_samples(&[f64::NAN, f64::NAN]).is_none());
        assert!(SampleStats::from_samples(&[f64::NEG_INFINITY]).is_none());
    }

    #[test]
    fn ratio() {
        assert_eq!(ratio_to_bound(r(10), r(4)), Some(2.5));
        assert_eq!(ratio_to_bound(r(10), Rational::ZERO), None);
        assert_eq!(
            ratio_to_bound(Rational::new(3, 2), Rational::new(1, 2)),
            Some(3.0)
        );
    }
}
