//! Jobs: a DAG plus online metadata (arrival time, weight).

use crate::graph::JobDag;
use parflow_time::{Rational, Ticks, Work};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a job within one problem instance (dense, 0-based).
pub type JobId = u32;

/// Priority weight of a job. The unweighted objective uses `w_i = 1` for all
/// jobs; weights are *not* assumed correlated with work (Section 7).
pub type Weight = u64;

/// One job of an online scheduling instance.
///
/// The scheduler learns of the job at `arrival` (its release time `r_i`) and
/// — being non-clairvoyant — sees only the weight and, progressively, the
/// ready nodes. The DAG is shared via `Arc` because adversarial and trace
/// workloads release many structurally identical jobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Job {
    /// Dense job id (also the index in the instance's job vector).
    pub id: JobId,
    /// Release time `r_i` in wall-clock ticks.
    pub arrival: Ticks,
    /// Priority weight `w_i` (1 for unweighted instances).
    pub weight: Weight,
    /// The job's internal structure.
    pub dag: Arc<JobDag>,
}

impl Job {
    /// Create an unweighted job.
    pub fn new(id: JobId, arrival: Ticks, dag: Arc<JobDag>) -> Self {
        Job {
            id,
            arrival,
            weight: 1,
            dag,
        }
    }

    /// Create a weighted job.
    pub fn weighted(id: JobId, arrival: Ticks, weight: Weight, dag: Arc<JobDag>) -> Self {
        assert!(weight > 0, "job weight must be positive");
        Job {
            id,
            arrival,
            weight,
            dag,
        }
    }

    /// Total work `W_i`.
    #[inline]
    pub fn work(&self) -> Work {
        self.dag.total_work()
    }

    /// Critical-path length `P_i`.
    #[inline]
    pub fn span(&self) -> Work {
        self.dag.span()
    }
}

/// A complete online problem instance: jobs sorted by arrival time.
///
/// Construction sorts (stably) by arrival and re-assigns dense ids in
/// arrival order, so `jobs[i].id == i` and arrivals are non-decreasing —
/// every scheduler in this workspace relies on both.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Instance {
    jobs: Vec<Job>,
}

impl Instance {
    /// Build an instance from jobs in any order; sorts by `(arrival, id)`
    /// and renumbers ids to be dense in arrival order.
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| (j.arrival, j.id));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i as JobId;
        }
        Instance { jobs }
    }

    /// The jobs, sorted by arrival, with dense ids.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the instance has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total work over all jobs.
    pub fn total_work(&self) -> Work {
        self.jobs.iter().map(|j| j.work()).sum()
    }

    /// Largest single-job work.
    pub fn max_work(&self) -> Work {
        self.jobs.iter().map(|j| j.work()).max().unwrap_or(0)
    }

    /// Largest critical-path length.
    pub fn max_span(&self) -> Work {
        self.jobs.iter().map(|j| j.span()).max().unwrap_or(0)
    }

    /// Last arrival time.
    pub fn last_arrival(&self) -> Ticks {
        self.jobs.last().map(|j| j.arrival).unwrap_or(0)
    }

    /// Machine utilization `ρ = total work / (m · horizon)` where the
    /// horizon is the last arrival time (the usual open-system load measure
    /// used to pick QPS levels in Section 6). Returns `None` for instances
    /// whose arrivals are all at time 0.
    pub fn utilization(&self, m: usize) -> Option<Rational> {
        let horizon = self.last_arrival();
        if horizon == 0 {
            return None;
        }
        Some(Rational::new(
            self.total_work() as i128,
            (m as i128) * (horizon as i128),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn dag(work: Work) -> Arc<JobDag> {
        Arc::new(DagBuilder::new().node(work).build().unwrap())
    }

    #[test]
    fn job_metrics_delegate_to_dag() {
        let j = Job::new(0, 5, dag(7));
        assert_eq!(j.work(), 7);
        assert_eq!(j.span(), 7);
        assert_eq!(j.weight, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let _ = Job::weighted(0, 0, 0, dag(1));
    }

    #[test]
    fn instance_sorts_and_renumbers() {
        let jobs = vec![
            Job::new(10, 30, dag(1)),
            Job::new(11, 10, dag(2)),
            Job::new(12, 20, dag(3)),
        ];
        let inst = Instance::new(jobs);
        let arrivals: Vec<_> = inst.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![10, 20, 30]);
        let ids: Vec<_> = inst.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(inst.total_work(), 6);
        assert_eq!(inst.max_work(), 3);
        assert_eq!(inst.last_arrival(), 30);
    }

    #[test]
    fn instance_sort_is_stable_on_ties() {
        let jobs = vec![
            Job::new(0, 5, dag(1)),
            Job::new(1, 5, dag(2)),
            Job::new(2, 5, dag(3)),
        ];
        let inst = Instance::new(jobs);
        let works: Vec<_> = inst.jobs().iter().map(|j| j.work()).collect();
        assert_eq!(works, vec![1, 2, 3]);
    }

    #[test]
    fn utilization() {
        // 2 jobs of 10 work each, last arrival 10, m = 2 → ρ = 20/(2·10) = 1.
        let jobs = vec![Job::new(0, 0, dag(10)), Job::new(1, 10, dag(10))];
        let inst = Instance::new(jobs);
        assert_eq!(inst.utilization(2), Some(Rational::ONE));
        // All arrivals at 0 → undefined.
        let inst0 = Instance::new(vec![Job::new(0, 0, dag(10))]);
        assert_eq!(inst0.utilization(2), None);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![]);
        assert!(inst.is_empty());
        assert_eq!(inst.total_work(), 0);
        assert_eq!(inst.max_span(), 0);
    }
}
