//! The Section 5 lower-bound gadget.

use crate::builder::DagBuilder;
use crate::graph::JobDag;

/// The adversarial "tiny job" from the work-stealing lower bound
/// (Lemma 5.1): one unit-work root that is the predecessor of `m/10`
/// independent unit-work tasks.
///
/// Total work is `m/10 + 1`; span is 2. A 1-speed scheduler with ≥ m/10
/// processors completes the job in 2 time steps, but randomized work
/// stealing executes it entirely sequentially with probability roughly
/// `(1/2e)^{m/10}` — releasing `n = 2^m` such jobs far apart makes the
/// expected maximum flow time `Ω(m) = Ω(log n)` while OPT stays 2.
///
/// `m` is the number of processors; at least 10 so the gadget has ≥ 1 child.
pub fn adversarial_tiny(m: usize) -> JobDag {
    let children = (m / 10).max(1);
    let mut b = DagBuilder::new();
    let root = b.add_node(1);
    for _ in 0..children {
        let c = b.add_node(1);
        b.add_edge(root, c).expect("valid");
    }
    b.build().expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_lemma() {
        let d = adversarial_tiny(40);
        assert_eq!(d.num_nodes(), 5); // root + 4 children
        assert_eq!(d.total_work(), 5); // m/10 + 1
        assert_eq!(d.span(), 2);
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks().len(), 4);
    }

    #[test]
    fn small_m_still_has_one_child() {
        let d = adversarial_tiny(4);
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.span(), 2);
    }

    #[test]
    fn work_formula() {
        for m in [10, 20, 50, 100, 160] {
            let d = adversarial_tiny(m);
            assert_eq!(d.total_work() as usize, m / 10 + 1);
            assert_eq!(d.span(), 2);
            assert!(d.validate().is_ok());
        }
    }
}
