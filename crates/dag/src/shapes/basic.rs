//! Basic DAG shapes: single node, chain, diamond, parallel-for.

use crate::builder::DagBuilder;
use crate::graph::JobDag;
use parflow_time::Work;

/// A job consisting of a single sequential node of `work` units.
pub fn single_node(work: Work) -> JobDag {
    assert!(work > 0, "work must be positive");
    DagBuilder::new()
        .node(work)
        .build()
        .expect("valid by construction")
}

/// A fully sequential chain of `len` nodes, each of `node_work` units.
/// Work = span = `len · node_work`.
pub fn chain(len: usize, node_work: Work) -> JobDag {
    assert!(len > 0 && node_work > 0, "chain needs len > 0 and work > 0");
    let mut b = DagBuilder::new();
    let mut prev = b.add_node(node_work);
    for _ in 1..len {
        let next = b.add_node(node_work);
        b.add_edge(prev, next).expect("valid indices");
        prev = next;
    }
    b.build().expect("valid by construction")
}

/// A diamond: source → `width` parallel middle nodes → sink.
/// Source/sink have 1 unit each, middles have `mid_work` units.
pub fn diamond(width: usize, mid_work: Work) -> JobDag {
    assert!(width > 0 && mid_work > 0);
    let mut b = DagBuilder::new();
    let s = b.add_node(1);
    let mids: Vec<_> = (0..width).map(|_| b.add_node(mid_work)).collect();
    let t = b.add_node(1);
    for &m in &mids {
        b.add_edge(s, m).expect("valid");
        b.add_edge(m, t).expect("valid");
    }
    b.build().expect("valid by construction")
}

/// A parallel-for job: a 1-unit source spawning `chunks` independent chunk
/// nodes that together carry `body_work` units (split as evenly as
/// possible), joined by a 1-unit sink.
///
/// This models the paper's empirical jobs (Section 6). If `body_work <
/// chunks`, only `body_work` chunks are created (each of 1 unit) so no node
/// has zero work.
///
/// Total work = `body_work + 2`; span = `ceil(body_work / chunks) + 2`.
///
/// ```
/// let dag = parflow_dag::shapes::parallel_for(64, 8);
/// assert_eq!(dag.total_work(), 66);
/// assert_eq!(dag.span(), 8 + 2);
/// assert_eq!(dag.num_nodes(), 10);
/// ```
pub fn parallel_for(body_work: Work, chunks: usize) -> JobDag {
    assert!(body_work > 0 && chunks > 0);
    let chunks = (chunks as u64).min(body_work) as usize;
    let base = body_work / chunks as u64;
    let extra = (body_work % chunks as u64) as usize;
    let mut b = DagBuilder::new();
    let s = b.add_node(1);
    let t_work = 1;
    let mut chunk_ids = Vec::with_capacity(chunks);
    for i in 0..chunks {
        let w = base + if i < extra { 1 } else { 0 };
        chunk_ids.push(b.add_node(w));
    }
    let t = b.add_node(t_work);
    for &c in &chunk_ids {
        b.add_edge(s, c).expect("valid");
        b.add_edge(c, t).expect("valid");
    }
    b.build().expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single() {
        let d = single_node(9);
        assert_eq!(d.num_nodes(), 1);
        assert_eq!(d.total_work(), 9);
        assert_eq!(d.span(), 9);
    }

    #[test]
    fn chain_metrics() {
        let d = chain(5, 3);
        assert_eq!(d.num_nodes(), 5);
        assert_eq!(d.total_work(), 15);
        assert_eq!(d.span(), 15);
        assert_eq!(d.sources().len(), 1);
        assert_eq!(d.sinks().len(), 1);
    }

    #[test]
    fn diamond_metrics() {
        let d = diamond(4, 6);
        assert_eq!(d.num_nodes(), 6);
        assert_eq!(d.total_work(), 4 * 6 + 2);
        assert_eq!(d.span(), 6 + 2);
    }

    #[test]
    fn parallel_for_even_split() {
        let d = parallel_for(12, 4);
        assert_eq!(d.num_nodes(), 6);
        assert_eq!(d.total_work(), 14);
        assert_eq!(d.span(), 3 + 2);
    }

    #[test]
    fn parallel_for_uneven_split() {
        let d = parallel_for(13, 4); // chunks of 4,3,3,3
        assert_eq!(d.total_work(), 15);
        assert_eq!(d.span(), 4 + 2);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn parallel_for_caps_chunks_at_work() {
        let d = parallel_for(2, 10); // only 2 chunks of 1 unit each
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.total_work(), 4);
        assert_eq!(d.span(), 3);
    }

    #[test]
    fn parallel_for_single_chunk_is_chainlike() {
        let d = parallel_for(10, 1);
        assert_eq!(d.num_nodes(), 3);
        assert_eq!(d.span(), 12);
        assert_eq!(d.total_work(), 12);
    }

    #[test]
    fn all_shapes_validate() {
        for d in [
            single_node(1),
            chain(10, 2),
            diamond(7, 3),
            parallel_for(100, 16),
        ] {
            assert!(d.validate().is_ok());
        }
    }
}
