//! Random layered DAGs for property tests and robustness experiments.

use crate::builder::DagBuilder;
use crate::graph::JobDag;
use parflow_time::Work;
use rand::Rng;

/// Parameters for [`layered_random`].
#[derive(Clone, Copy, Debug)]
pub struct LayeredParams {
    /// Number of layers (≥ 1).
    pub layers: usize,
    /// Maximum nodes per layer (each layer gets 1..=max, random).
    pub max_width: usize,
    /// Node work drawn uniformly from `1..=max_node_work`.
    pub max_node_work: Work,
    /// Probability of each cross-layer edge beyond the mandatory one,
    /// in percent (0..=100).
    pub extra_edge_pct: u8,
}

impl Default for LayeredParams {
    fn default() -> Self {
        LayeredParams {
            layers: 4,
            max_width: 6,
            max_node_work: 10,
            extra_edge_pct: 30,
        }
    }
}

/// Generate a random layered DAG: nodes are grouped in layers; every node in
/// layer `k > 0` has at least one predecessor in layer `k-1` (so the DAG is
/// "deep" and unfolds gradually) plus random extra edges from the previous
/// layer. Edges only go from layer `k-1` to layer `k`, so acyclicity is
/// structural.
pub fn layered_random<R: Rng + ?Sized>(rng: &mut R, params: LayeredParams) -> JobDag {
    assert!(params.layers >= 1 && params.max_width >= 1 && params.max_node_work >= 1);
    assert!(params.extra_edge_pct <= 100);
    let mut b = DagBuilder::new();
    let mut prev_layer: Vec<u32> = Vec::new();
    for layer in 0..params.layers {
        let width = rng.gen_range(1..=params.max_width);
        let mut this_layer = Vec::with_capacity(width);
        for _ in 0..width {
            let w = rng.gen_range(1..=params.max_node_work);
            let id = b.add_node(w);
            if layer > 0 {
                // Mandatory predecessor keeps the DAG connected layer-to-layer.
                let p = prev_layer[rng.gen_range(0..prev_layer.len())];
                b.add_edge(p, id).expect("valid");
                for &q in &prev_layer {
                    if q != p && rng.gen_range(0..100u8) < params.extra_edge_pct {
                        b.add_edge(q, id).expect("valid");
                    }
                }
            }
            this_layer.push(id);
        }
        prev_layer = this_layer;
    }
    b.build().expect("layered construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_valid_dags() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let d = layered_random(&mut rng, LayeredParams::default());
            assert!(d.validate().is_ok());
            assert!(d.total_work() >= d.span());
            assert!(d.span() >= 1);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let p = LayeredParams {
            layers: 5,
            max_width: 4,
            max_node_work: 8,
            extra_edge_pct: 50,
        };
        let d1 = layered_random(&mut SmallRng::seed_from_u64(7), p);
        let d2 = layered_random(&mut SmallRng::seed_from_u64(7), p);
        assert_eq!(d1, d2);
    }

    #[test]
    fn single_layer_has_no_edges() {
        let p = LayeredParams {
            layers: 1,
            max_width: 5,
            max_node_work: 3,
            extra_edge_pct: 100,
        };
        let d = layered_random(&mut SmallRng::seed_from_u64(3), p);
        assert_eq!(d.sources().len(), d.num_nodes());
    }

    #[test]
    fn span_grows_with_layers() {
        // With ≥1 unit per layer and mandatory chaining, span ≥ layers.
        let p = LayeredParams {
            layers: 10,
            max_width: 3,
            max_node_work: 5,
            extra_edge_pct: 0,
        };
        let d = layered_random(&mut SmallRng::seed_from_u64(11), p);
        assert!(d.span() >= 10);
    }
}
