//! Dataflow-style DAG shapes: map-reduce and software pipelines.
//!
//! These extend the paper's parallel-for jobs with the other two DAG
//! families common in server workloads: scatter/gather query plans
//! (map-reduce) and stage-parallel stream operators (pipelines). Both
//! stress schedulers differently from parallel-for — map-reduce has a
//! parallelism *phase change* at the shuffle barrier; pipelines have bounded
//! width but long chains.

use crate::builder::DagBuilder;
use crate::graph::JobDag;
use parflow_time::Work;

/// A two-phase map-reduce job:
/// 1-unit source → `mappers` map nodes (`map_work` each) → `reducers`
/// reduce nodes (`reduce_work` each, each depending on **all** mappers — the
/// shuffle barrier) → 1-unit sink.
///
/// Work = `2 + mappers·map_work + reducers·reduce_work`;
/// span = `2 + map_work + reduce_work`.
pub fn map_reduce(mappers: usize, map_work: Work, reducers: usize, reduce_work: Work) -> JobDag {
    assert!(mappers > 0 && reducers > 0 && map_work > 0 && reduce_work > 0);
    let mut b = DagBuilder::new();
    let source = b.add_node(1);
    let maps: Vec<_> = (0..mappers).map(|_| b.add_node(map_work)).collect();
    let reds: Vec<_> = (0..reducers).map(|_| b.add_node(reduce_work)).collect();
    let sink = b.add_node(1);
    for &m in &maps {
        b.add_edge(source, m).expect("valid");
        for &r in &reds {
            b.add_edge(m, r).expect("valid");
        }
    }
    for &r in &reds {
        b.add_edge(r, sink).expect("valid");
    }
    b.build().expect("valid by construction")
}

/// A software pipeline of `stages × items`: node `(s, i)` depends on
/// `(s−1, i)` (same item, previous stage) and `(s, i−1)` (previous item,
/// same stage — stages process items in order). All nodes carry
/// `node_work` units.
///
/// Work = `stages · items · node_work`;
/// span = `(stages + items − 1) · node_work` (the monotone staircase).
pub fn pipeline(stages: usize, items: usize, node_work: Work) -> JobDag {
    assert!(stages > 0 && items > 0 && node_work > 0);
    let mut b = DagBuilder::new();
    let mut ids = vec![vec![0u32; items]; stages];
    for (s, row) in ids.iter_mut().enumerate() {
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = b.add_node(node_work);
            let _ = (s, i);
        }
    }
    for s in 0..stages {
        for i in 0..items {
            if s > 0 {
                b.add_edge(ids[s - 1][i], ids[s][i]).expect("valid");
            }
            if i > 0 {
                b.add_edge(ids[s][i - 1], ids[s][i]).expect("valid");
            }
        }
    }
    b.build().expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_reduce_metrics() {
        let d = map_reduce(4, 10, 2, 5);
        assert_eq!(d.num_nodes(), 1 + 4 + 2 + 1);
        assert_eq!(d.total_work(), 2 + 40 + 10);
        assert_eq!(d.span(), 2 + 10 + 5);
        assert!(d.validate().is_ok());
        assert_eq!(d.sources().len(), 1);
        assert_eq!(d.sinks().len(), 1);
    }

    #[test]
    fn map_reduce_shuffle_is_full_bipartite() {
        let d = map_reduce(3, 1, 2, 1);
        // Each mapper (nodes 1..=3) has edges to both reducers (4, 5).
        for m in 1..=3u32 {
            assert_eq!(d.succs(m).len(), 2);
        }
        // Reducers have pred_count = 3.
        assert_eq!(d.pred_count(4), 3);
        assert_eq!(d.pred_count(5), 3);
    }

    #[test]
    fn pipeline_metrics() {
        let d = pipeline(3, 5, 2);
        assert_eq!(d.num_nodes(), 15);
        assert_eq!(d.total_work(), 30);
        assert_eq!(d.span(), (3 + 5 - 1) * 2);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn pipeline_single_stage_is_chain() {
        let d = pipeline(1, 4, 3);
        assert_eq!(d.span(), d.total_work());
    }

    #[test]
    fn pipeline_single_item_is_chain() {
        let d = pipeline(4, 1, 3);
        assert_eq!(d.span(), d.total_work());
    }

    #[test]
    fn pipeline_max_parallelism_is_bounded() {
        // Parallelism of a (stages × items) pipeline ≤ min(stages, items).
        let d = pipeline(3, 10, 1);
        assert!(d.parallelism() <= 3.0 + 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_mappers_panics() {
        let _ = map_reduce(0, 1, 1, 1);
    }
}
