//! Recursive binary fork-join (divide-and-conquer) DAGs.

use crate::builder::DagBuilder;
use crate::graph::{JobDag, NodeId};
use parflow_time::Work;

/// A Cilk-style recursive fork-join computation of the given `depth`.
///
/// At each internal level a 1-unit *fork* strand spawns two subtrees and a
/// 1-unit *join* strand awaits them. At depth 0 a single leaf of `leaf_work`
/// units runs. The DAG therefore has `2^depth` leaves,
/// work `= 2^depth · leaf_work + 2·(2^depth − 1)` and
/// span `= leaf_work + 2·depth`.
///
/// ```
/// let dag = parflow_dag::shapes::fork_join(3, 5);
/// assert_eq!(dag.total_work(), 8 * 5 + 2 * 7);
/// assert_eq!(dag.span(), 5 + 6);
/// ```
pub fn fork_join(depth: u32, leaf_work: Work) -> JobDag {
    assert!(leaf_work > 0, "leaf work must be positive");
    assert!(
        depth <= 24,
        "fork-join depth {depth} would exceed 16M nodes"
    );
    let mut b = DagBuilder::new();
    build_rec(&mut b, depth, leaf_work);
    b.build().expect("valid by construction")
}

/// Recursively emit the subtree; returns (entry, exit) node ids.
fn build_rec(b: &mut DagBuilder, depth: u32, leaf_work: Work) -> (NodeId, NodeId) {
    if depth == 0 {
        let leaf = b.add_node(leaf_work);
        return (leaf, leaf);
    }
    let fork = b.add_node(1);
    let join = b.add_node(1);
    let (l_in, l_out) = build_rec(b, depth - 1, leaf_work);
    let (r_in, r_out) = build_rec(b, depth - 1, leaf_work);
    b.add_edge(fork, l_in).expect("valid");
    b.add_edge(fork, r_in).expect("valid");
    b.add_edge(l_out, join).expect("valid");
    b.add_edge(r_out, join).expect("valid");
    (fork, join)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_zero_is_single_leaf() {
        let d = fork_join(0, 7);
        assert_eq!(d.num_nodes(), 1);
        assert_eq!(d.total_work(), 7);
        assert_eq!(d.span(), 7);
    }

    #[test]
    fn depth_one() {
        // fork + join + 2 leaves
        let d = fork_join(1, 5);
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.total_work(), 2 * 5 + 2);
        assert_eq!(d.span(), 5 + 2);
    }

    #[test]
    fn formulas_hold_for_depths() {
        for depth in 0..8u32 {
            for leaf in [1u64, 3, 10] {
                let d = fork_join(depth, leaf);
                let leaves = 1u64 << depth;
                assert_eq!(d.total_work(), leaves * leaf + 2 * (leaves - 1));
                assert_eq!(d.span(), leaf + 2 * depth as u64);
                assert_eq!(d.num_nodes() as u64, leaves + 2 * (leaves - 1));
                assert!(d.validate().is_ok());
            }
        }
    }

    #[test]
    fn single_source_single_sink() {
        let d = fork_join(4, 2);
        assert_eq!(d.sources().len(), 1);
        assert_eq!(d.sinks().len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_leaf_work_panics() {
        let _ = fork_join(2, 0);
    }
}
