//! Generators for the DAG shapes used across the paper's experiments.
//!
//! * [`single_node`], [`chain`], [`diamond`] — degenerate/basic shapes for
//!   tests and adversarial constructions;
//! * [`parallel_for`] — the shape the paper's empirical jobs use ("each job
//!   contains CPU-intensive computation and is parallelized using parallel
//!   for loops", Section 6);
//! * [`fork_join`] — recursive binary spawn trees (Cilk-style divide and
//!   conquer);
//! * [`layered_random`] — random layered DAGs for property tests and
//!   robustness experiments;
//! * [`series_parallel_random`] — random nested fork-join (series-parallel)
//!   DAGs, the structural class spawn/sync programs generate;
//! * [`map_reduce`] / [`pipeline`] — dataflow shapes (scatter-gather with a
//!   shuffle barrier; stage-parallel stream operators);
//! * [`adversarial_tiny`] — the Section 5 lower-bound gadget (one root
//!   enabling `m/10` independent unit tasks).

mod adversarial;
mod basic;
mod dataflow;
mod forkjoin;
mod layered;
mod series_parallel;

pub use adversarial::adversarial_tiny;
pub use basic::{chain, diamond, parallel_for, single_node};
pub use dataflow::{map_reduce, pipeline};
pub use forkjoin::fork_join;
pub use layered::{layered_random, LayeredParams};
pub use series_parallel::{series_parallel_random, SpParams};
