//! Checked construction of [`JobDag`] values.

use crate::error::DagError;
use crate::graph::{JobDag, NodeId};
use parflow_time::Work;

/// Incrementally assembles a [`JobDag`], validating on [`DagBuilder::build`].
///
/// ```
/// use parflow_dag::DagBuilder;
///
/// let mut b = DagBuilder::new();
/// let fork = b.add_node(1);
/// let left = b.add_node(10);
/// let right = b.add_node(10);
/// let join = b.add_node(1);
/// b.add_edge(fork, left).unwrap();
/// b.add_edge(fork, right).unwrap();
/// b.add_edge(left, join).unwrap();
/// b.add_edge(right, join).unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.total_work(), 22);
/// assert_eq!(dag.span(), 12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DagBuilder {
    works: Vec<Work>,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with `work` units of processing time; returns its id.
    pub fn add_node(&mut self, work: Work) -> NodeId {
        let id = self.works.len() as NodeId;
        self.works.push(work);
        id
    }

    /// Fluent variant of [`DagBuilder::add_node`] for one-liners.
    pub fn node(mut self, work: Work) -> Self {
        self.add_node(work);
        self
    }

    /// Add a precedence edge `from -> to`. Fails fast on self-loops and
    /// references to undeclared nodes; duplicate detection happens in
    /// [`DagBuilder::build`] (so callers can bulk-insert).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), DagError> {
        let n = self.works.len() as NodeId;
        if from >= n {
            return Err(DagError::UnknownNode { node: from });
        }
        if to >= n {
            return Err(DagError::UnknownNode { node: to });
        }
        if from == to {
            return Err(DagError::SelfLoop { node: from });
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.works.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.works.is_empty()
    }

    /// Validate and produce the immutable [`JobDag`].
    pub fn build(self) -> Result<JobDag, DagError> {
        if self.works.is_empty() {
            return Err(DagError::Empty);
        }
        for (i, &w) in self.works.iter().enumerate() {
            if w == 0 {
                return Err(DagError::ZeroWork { node: i as u32 });
            }
        }
        let n = self.works.len();
        assert!(
            self.edges.len() <= u32::MAX as usize,
            "DAG edge count exceeds u32 offset range"
        );
        let mut edge_set = std::collections::BTreeSet::new();
        let mut succ_counts = vec![0u32; n];
        let mut pred_counts = vec![0u32; n];
        for &(from, to) in &self.edges {
            if !edge_set.insert((from, to)) {
                return Err(DagError::DuplicateEdge { from, to });
            }
            succ_counts[from as usize] += 1;
            pred_counts[to as usize] += 1;
        }
        // CSR adjacency: prefix-sum the successor counts into offsets, then
        // scatter edges into the slab. Iterating `edges` in declaration
        // order keeps each node's successor list in edge-insertion order,
        // which engine determinism (newly-ready push order) relies on.
        let mut succ_offsets = Vec::with_capacity(n + 1);
        succ_offsets.push(0u32);
        for i in 0..n {
            succ_offsets.push(succ_offsets[i] + succ_counts[i]);
        }
        let mut fill: Vec<u32> = succ_offsets[..n].to_vec();
        let mut succs = vec![0 as NodeId; self.edges.len()];
        for &(from, to) in &self.edges {
            let slot = fill[from as usize];
            succs[slot as usize] = to;
            fill[from as usize] = slot + 1;
        }
        // Kahn's algorithm: compute a topological order and detect cycles.
        let mut indeg = pred_counts.clone();
        let mut queue: std::collections::VecDeque<NodeId> = (0..n as NodeId)
            .filter(|&i| indeg[i as usize] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            let lo = succ_offsets[v as usize] as usize;
            let hi = succ_offsets[v as usize + 1] as usize;
            for &u in &succs[lo..hi] {
                indeg[u as usize] -= 1;
                if indeg[u as usize] == 0 {
                    queue.push_back(u);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }
        Ok(JobDag::from_validated(
            self.works,
            pred_counts,
            succ_offsets,
            succs,
            topo,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fails() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn zero_work_fails() {
        let mut b = DagBuilder::new();
        b.add_node(1);
        b.add_node(0);
        assert_eq!(b.build().unwrap_err(), DagError::ZeroWork { node: 1 });
    }

    #[test]
    fn unknown_node_edge_fails() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1);
        assert_eq!(
            b.add_edge(a, 7).unwrap_err(),
            DagError::UnknownNode { node: 7 }
        );
        assert_eq!(
            b.add_edge(9, a).unwrap_err(),
            DagError::UnknownNode { node: 9 }
        );
    }

    #[test]
    fn self_loop_fails() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1);
        assert_eq!(
            b.add_edge(a, a).unwrap_err(),
            DagError::SelfLoop { node: a }
        );
    }

    #[test]
    fn duplicate_edge_fails() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(1);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, c).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            DagError::DuplicateEdge { from: a, to: c }
        );
    }

    #[test]
    fn two_cycle_fails() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(1);
        b.add_edge(a, c).unwrap();
        b.add_edge(c, a).unwrap();
        assert_eq!(b.build().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn longer_cycle_fails() {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..5).map(|_| b.add_node(1)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.add_edge(ids[4], ids[1]).unwrap();
        assert_eq!(b.build().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn build_preserves_counts() {
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        let m1 = b.add_node(2);
        let m2 = b.add_node(2);
        let t = b.add_node(1);
        b.add_edge(s, m1).unwrap();
        b.add_edge(s, m2).unwrap();
        b.add_edge(m1, t).unwrap();
        b.add_edge(m2, t).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.pred_count(0), 0);
        assert_eq!(dag.pred_count(3), 2);
        assert_eq!(dag.succs(0), &[1, 2]);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn len_and_is_empty() {
        let mut b = DagBuilder::new();
        assert!(b.is_empty());
        b.add_node(1);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
