//! Error types for DAG construction and execution.

use std::fmt;

/// Errors raised while building or validating a [`crate::JobDag`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The DAG has no nodes; a job must contain at least one node.
    Empty,
    /// A node was declared with zero processing time. The paper's model
    /// requires every node to have positive work (`p_v > 0`).
    ZeroWork {
        /// Offending node index.
        node: u32,
    },
    /// An edge references a node index that was never declared.
    UnknownNode {
        /// Offending node index.
        node: u32,
    },
    /// An edge from a node to itself.
    SelfLoop {
        /// Offending node index.
        node: u32,
    },
    /// The same directed edge was added twice.
    DuplicateEdge {
        /// Edge source.
        from: u32,
        /// Edge target.
        to: u32,
    },
    /// The edge set contains a directed cycle, so the graph is not a DAG.
    Cycle,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "DAG must contain at least one node"),
            DagError::ZeroWork { node } => {
                write!(f, "node {node} has zero work; every node needs p_v > 0")
            }
            DagError::UnknownNode { node } => {
                write!(f, "edge references undeclared node {node}")
            }
            DagError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            DagError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            DagError::Cycle => write!(f, "edge set contains a directed cycle"),
        }
    }
}

impl std::error::Error for DagError {}

/// Errors raised by [`crate::DagCursor`] when a scheduler violates the
/// execution protocol (claiming a non-ready node, executing an unclaimed
/// node, …). These indicate scheduler bugs, so the cursor methods that can
/// fail return `Result` and tests assert on the exact variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Tried to claim a node that is not in the Ready state.
    NotReady {
        /// Offending node index.
        node: u32,
    },
    /// Tried to execute or release a node that is not currently claimed.
    NotClaimed {
        /// Offending node index.
        node: u32,
    },
    /// Node index out of range for this job's DAG.
    OutOfRange {
        /// Offending node index.
        node: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NotReady { node } => write!(f, "node {node} is not ready"),
            ExecError::NotClaimed { node } => write!(f, "node {node} is not claimed"),
            ExecError::OutOfRange { node } => write!(f, "node {node} out of range"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DagError::Empty.to_string().contains("at least one node"));
        assert!(DagError::ZeroWork { node: 3 }
            .to_string()
            .contains("node 3"));
        assert!(DagError::UnknownNode { node: 9 }.to_string().contains('9'));
        assert!(DagError::SelfLoop { node: 1 }
            .to_string()
            .contains("self-loop"));
        assert!(DagError::DuplicateEdge { from: 1, to: 2 }
            .to_string()
            .contains("1 -> 2"));
        assert!(DagError::Cycle.to_string().contains("cycle"));
        assert!(ExecError::NotReady { node: 0 }
            .to_string()
            .contains("ready"));
        assert!(ExecError::NotClaimed { node: 0 }
            .to_string()
            .contains("claimed"));
        assert!(ExecError::OutOfRange { node: 0 }
            .to_string()
            .contains("range"));
    }
}
