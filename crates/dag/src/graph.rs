//! The static DAG structure of a dynamic multithreaded job.

use crate::error::DagError;
use parflow_time::Work;
use serde::{Deserialize, Serialize};

/// Index of a node within one job's DAG.
pub type NodeId = u32;

/// One node (task) of a job DAG: a strand of sequential work of length
/// `work` units that becomes ready when all its predecessors complete.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Processing time `p_v` in work units (always ≥ 1).
    pub work: Work,
    /// Successor node indices (edges `v -> u`).
    pub succs: Vec<NodeId>,
    /// Number of predecessor edges into this node.
    pub pred_count: u32,
}

/// An immutable, validated DAG describing one job's internal structure.
///
/// Invariants (enforced by [`crate::DagBuilder`]):
/// * at least one node, every node has `work ≥ 1`;
/// * the edge relation is acyclic with no self-loops or duplicates;
/// * `topo_order` is a topological order of all nodes.
///
/// Schedulers never read this directly — they see jobs only through
/// [`crate::DagCursor`], which reveals ready nodes as the DAG unfolds
/// (non-clairvoyance). The full structure is used by workload generators,
/// the trace validator, and for computing `W_i` (work) and `P_i` (span).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobDag {
    pub(crate) nodes: Vec<Node>,
    pub(crate) topo_order: Vec<NodeId>,
    total_work: Work,
    span: Work,
}

impl JobDag {
    /// Internal constructor used by the builder after validation.
    pub(crate) fn from_validated(nodes: Vec<Node>, topo_order: Vec<NodeId>) -> Self {
        let total_work: Work = nodes.iter().map(|n| n.work).sum();
        let span = Self::compute_span(&nodes, &topo_order);
        JobDag {
            nodes,
            topo_order,
            total_work,
            span,
        }
    }

    /// Longest weighted path through the DAG (the critical-path length
    /// `P_i`), computed by DP over the topological order.
    fn compute_span(nodes: &[Node], topo: &[NodeId]) -> Work {
        let mut finish: Vec<Work> = vec![0; nodes.len()];
        let mut best = 0;
        for &v in topo {
            let v = v as usize;
            let f = finish[v] + nodes[v].work;
            best = best.max(f);
            for &u in &nodes[v].succs {
                let u = u as usize;
                finish[u] = finish[u].max(f);
            }
        }
        best
    }

    /// Number of nodes in the DAG.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total work `W_i`: the job's running time on one processor.
    #[inline]
    pub fn total_work(&self) -> Work {
        self.total_work
    }

    /// Critical-path length `P_i`: the job's running time on infinitely many
    /// processors. Lower bound on the job's execution time for any scheduler.
    #[inline]
    pub fn span(&self) -> Work {
        self.span
    }

    /// Average parallelism `W_i / P_i` (reported as `f64`).
    #[inline]
    pub fn parallelism(&self) -> f64 {
        self.total_work as f64 / self.span as f64
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Iterate over all nodes with their ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (i as NodeId, n))
    }

    /// Node indices with no predecessors (the initially ready nodes).
    pub fn sources(&self) -> Vec<NodeId> {
        self.iter_nodes()
            .filter(|(_, n)| n.pred_count == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Node indices with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.iter_nodes()
            .filter(|(_, n)| n.succs.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// A topological order over all nodes (stable across runs).
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo_order
    }

    /// Exhaustively re-checks the structural invariants. `JobDag` values
    /// built through [`crate::DagBuilder`] always pass; this exists so tests
    /// and the trace validator can independently verify deserialized DAGs.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.nodes.is_empty() {
            return Err(DagError::Empty);
        }
        let n = self.nodes.len() as u32;
        let mut pred_counts = vec![0u32; n as usize];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.work == 0 {
                return Err(DagError::ZeroWork { node: i as u32 });
            }
            let mut seen = std::collections::HashSet::new();
            for &s in &node.succs {
                if s >= n {
                    return Err(DagError::UnknownNode { node: s });
                }
                if s as usize == i {
                    return Err(DagError::SelfLoop { node: s });
                }
                if !seen.insert(s) {
                    return Err(DagError::DuplicateEdge {
                        from: i as u32,
                        to: s,
                    });
                }
                pred_counts[s as usize] += 1;
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if pred_counts[i] != node.pred_count {
                // Inconsistent pred counts make the cursor misbehave; treat
                // as a cycle-class integrity failure.
                return Err(DagError::Cycle);
            }
        }
        // Kahn's algorithm to confirm acyclicity.
        let mut indeg = pred_counts;
        let mut queue: Vec<u32> = (0..n).filter(|&i| indeg[i as usize] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &u in &self.nodes[v as usize].succs {
                indeg[u as usize] -= 1;
                if indeg[u as usize] == 0 {
                    queue.push(u);
                }
            }
        }
        if seen != self.nodes.len() {
            return Err(DagError::Cycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::DagBuilder;

    #[test]
    fn single_node_metrics() {
        let dag = DagBuilder::new().node(5).build().unwrap();
        assert_eq!(dag.num_nodes(), 1);
        assert_eq!(dag.total_work(), 5);
        assert_eq!(dag.span(), 5);
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![0]);
        assert!((dag.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_span_equals_work() {
        // 0 -> 1 -> 2, works 2,3,4
        let mut b = DagBuilder::new();
        let a = b.add_node(2);
        let c = b.add_node(3);
        let d = b.add_node(4);
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.total_work(), 9);
        assert_eq!(dag.span(), 9);
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![2]);
    }

    #[test]
    fn diamond_span() {
        // 0 -> {1,2} -> 3 ; works 1, 5, 2, 1 → span = 1+5+1 = 7, work 9
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        let l = b.add_node(5);
        let r = b.add_node(2);
        let t = b.add_node(1);
        b.add_edge(s, l).unwrap();
        b.add_edge(s, r).unwrap();
        b.add_edge(l, t).unwrap();
        b.add_edge(r, t).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.total_work(), 9);
        assert_eq!(dag.span(), 7);
        assert!((dag.parallelism() - 9.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn independent_nodes_span_is_max() {
        let mut b = DagBuilder::new();
        b.add_node(3);
        b.add_node(7);
        b.add_node(2);
        let dag = b.build().unwrap();
        assert_eq!(dag.total_work(), 12);
        assert_eq!(dag.span(), 7);
        assert_eq!(dag.sources().len(), 3);
    }

    #[test]
    fn validate_accepts_built_dags() {
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        for _ in 0..10 {
            let c = b.add_node(2);
            b.add_edge(s, c).unwrap();
        }
        let dag = b.build().unwrap();
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = DagBuilder::new();
        let n0 = b.add_node(1);
        let n1 = b.add_node(1);
        let n2 = b.add_node(1);
        let n3 = b.add_node(1);
        b.add_edge(n0, n2).unwrap();
        b.add_edge(n1, n2).unwrap();
        b.add_edge(n2, n3).unwrap();
        let dag = b.build().unwrap();
        let order = dag.topo_order();
        let pos = |x: u32| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }
}
