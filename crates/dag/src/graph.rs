//! The static DAG structure of a dynamic multithreaded job.

use crate::error::DagError;
use parflow_time::Work;
use serde::{Deserialize, Serialize};

/// Index of a node within one job's DAG.
pub type NodeId = u32;

/// One node (task) of a job DAG in the *serialized* representation: a
/// strand of sequential work of length `work` units that becomes ready
/// when all its predecessors complete.
///
/// In memory the [`JobDag`] stores nodes column-wise (CSR adjacency, see
/// below); this row-wise struct is the stable JSON wire format that
/// persisted instances use, and the shape tests assert against.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Processing time `p_v` in work units (always ≥ 1).
    pub work: Work,
    /// Successor node indices (edges `v -> u`).
    pub succs: Vec<NodeId>,
    /// Number of predecessor edges into this node.
    pub pred_count: u32,
}

/// An immutable, validated DAG describing one job's internal structure.
///
/// Invariants (enforced by [`crate::DagBuilder`]):
/// * at least one node, every node has `work ≥ 1`;
/// * the edge relation is acyclic with no self-loops or duplicates;
/// * `topo_order` is a topological order of all nodes.
///
/// Schedulers never read this directly — they see jobs only through
/// [`crate::DagCursor`], which reveals ready nodes as the DAG unfolds
/// (non-clairvoyance). The full structure is used by workload generators,
/// the trace validator, and for computing `W_i` (work) and `P_i` (span).
///
/// # Storage layout
///
/// Node attributes are stored as parallel columns (`works`,
/// `pred_counts`) and the adjacency as a compressed sparse row (CSR)
/// layout: one flat `succs` slab plus an offset array, so node `v`'s
/// successors are `succs[succ_offsets[v] .. succ_offsets[v + 1]]`. This
/// keeps the whole DAG in a handful of contiguous allocations (instead of
/// one `Vec` per node) and makes the completion hot path a pure slice
/// scan. Per-node successor order is edge-insertion order, which the
/// engines' determinism depends on.
///
/// Serialization still uses the row-wise `{nodes, topo_order, total_work,
/// span}` format (see [`Node`]); the `#[serde(from/into)]` bridge converts
/// at the boundary so persisted instances stay readable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "JobDagRepr", into = "JobDagRepr")]
pub struct JobDag {
    pub(crate) works: Vec<Work>,
    pub(crate) pred_counts: Vec<u32>,
    /// CSR offsets: `len = num_nodes + 1`, monotone, `succ_offsets[0] = 0`.
    pub(crate) succ_offsets: Vec<u32>,
    /// CSR slab of successor ids, grouped by source node.
    pub(crate) succs: Vec<NodeId>,
    pub(crate) topo_order: Vec<NodeId>,
    total_work: Work,
    span: Work,
}

/// Row-wise serde bridge for [`JobDag`]: the on-disk JSON format predates
/// the CSR layout and is kept stable so saved instances round-trip across
/// versions. Conversion is infallible in both directions; semantic checks
/// on untrusted input remain the job of [`JobDag::validate`].
#[derive(Clone, Serialize, Deserialize)]
struct JobDagRepr {
    nodes: Vec<Node>,
    topo_order: Vec<NodeId>,
    total_work: Work,
    span: Work,
}

impl From<JobDagRepr> for JobDag {
    fn from(repr: JobDagRepr) -> Self {
        let n = repr.nodes.len();
        let mut works = Vec::with_capacity(n);
        let mut pred_counts = Vec::with_capacity(n);
        let mut succ_offsets = Vec::with_capacity(n + 1);
        let edge_total: usize = repr.nodes.iter().map(|nd| nd.succs.len()).sum();
        assert!(
            edge_total <= u32::MAX as usize,
            "DAG edge count exceeds u32 offset range"
        );
        let mut succs = Vec::with_capacity(edge_total);
        succ_offsets.push(0);
        for node in &repr.nodes {
            works.push(node.work);
            pred_counts.push(node.pred_count);
            succs.extend_from_slice(&node.succs);
            succ_offsets.push(succs.len() as u32);
        }
        // Deserialized totals are taken as stored (like the old derive
        // did); `validate` is the gate for untrusted input.
        JobDag {
            works,
            pred_counts,
            succ_offsets,
            succs,
            topo_order: repr.topo_order,
            total_work: repr.total_work,
            span: repr.span,
        }
    }
}

impl From<JobDag> for JobDagRepr {
    fn from(dag: JobDag) -> Self {
        let nodes = (0..dag.num_nodes() as NodeId)
            .map(|v| Node {
                work: dag.work(v),
                succs: dag.succs(v).to_vec(),
                pred_count: dag.pred_count(v),
            })
            .collect();
        JobDagRepr {
            nodes,
            topo_order: dag.topo_order,
            total_work: dag.total_work,
            span: dag.span,
        }
    }
}

impl JobDag {
    /// Internal constructor used by the builder after validation. The CSR
    /// arrays must be structurally consistent (offsets monotone, in-range
    /// successors, matching `pred_counts`).
    pub(crate) fn from_validated(
        works: Vec<Work>,
        pred_counts: Vec<u32>,
        succ_offsets: Vec<u32>,
        succs: Vec<NodeId>,
        topo_order: Vec<NodeId>,
    ) -> Self {
        let total_work: Work = works.iter().sum();
        let mut dag = JobDag {
            works,
            pred_counts,
            succ_offsets,
            succs,
            topo_order,
            total_work,
            span: 0,
        };
        dag.span = dag.compute_span();
        dag
    }

    /// Longest weighted path through the DAG (the critical-path length
    /// `P_i`), computed by DP over the topological order.
    fn compute_span(&self) -> Work {
        let mut finish: Vec<Work> = vec![0; self.works.len()];
        let mut best = 0;
        for &v in &self.topo_order {
            let f = finish[v as usize] + self.works[v as usize];
            best = best.max(f);
            for &u in self.succs(v) {
                let u = u as usize;
                finish[u] = finish[u].max(f);
            }
        }
        best
    }

    /// Number of nodes in the DAG.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.works.len()
    }

    /// Total work `W_i`: the job's running time on one processor.
    #[inline]
    pub fn total_work(&self) -> Work {
        self.total_work
    }

    /// Critical-path length `P_i`: the job's running time on infinitely many
    /// processors. Lower bound on the job's execution time for any scheduler.
    #[inline]
    pub fn span(&self) -> Work {
        self.span
    }

    /// Average parallelism `W_i / P_i` (reported as `f64`).
    #[inline]
    pub fn parallelism(&self) -> f64 {
        self.total_work as f64 / self.span as f64
    }

    /// Processing time `p_v` of node `v`.
    #[inline]
    pub fn work(&self, v: NodeId) -> Work {
        self.works[v as usize]
    }

    /// Number of predecessor edges into node `v`.
    #[inline]
    pub fn pred_count(&self, v: NodeId) -> u32 {
        self.pred_counts[v as usize]
    }

    /// Successor ids of node `v` (edge-insertion order), as a slice into
    /// the CSR slab.
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        let lo = self.succ_offsets[v as usize] as usize;
        let hi = self.succ_offsets[v as usize + 1] as usize;
        &self.succs[lo..hi]
    }

    /// All node-attribute columns at once, for bulk copies (cursor reset).
    #[inline]
    pub(crate) fn columns(&self) -> (&[Work], &[u32]) {
        (&self.works, &self.pred_counts)
    }

    /// Node ids with no predecessors (the initially ready nodes), in
    /// increasing id order, without allocating.
    #[inline]
    pub fn sources_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.pred_counts
            .iter()
            .enumerate()
            .filter(|&(_, &pc)| pc == 0)
            .map(|(i, _)| i as NodeId)
    }

    /// Node ids with no successors, in increasing id order, without
    /// allocating.
    #[inline]
    pub fn sinks_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as NodeId).filter(|&v| self.succs(v).is_empty())
    }

    /// Node indices with no predecessors (the initially ready nodes).
    ///
    /// Allocates a fresh `Vec`; hot paths should prefer
    /// [`JobDag::sources_iter`].
    pub fn sources(&self) -> Vec<NodeId> {
        self.sources_iter().collect()
    }

    /// Node indices with no successors.
    ///
    /// Allocates a fresh `Vec`; hot paths should prefer
    /// [`JobDag::sinks_iter`].
    pub fn sinks(&self) -> Vec<NodeId> {
        self.sinks_iter().collect()
    }

    /// A topological order over all nodes (stable across runs).
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo_order
    }

    /// Exhaustively re-checks the structural invariants. `JobDag` values
    /// built through [`crate::DagBuilder`] always pass; this exists so tests
    /// and the trace validator can independently verify deserialized DAGs.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.works.is_empty() {
            return Err(DagError::Empty);
        }
        let n = self.works.len() as u32;
        // Structural consistency of the CSR arrays themselves. Built DAGs
        // satisfy this by construction; deserialized ones satisfy it
        // because the serde bridge derives offsets from the node rows.
        debug_assert_eq!(self.pred_counts.len(), self.works.len());
        debug_assert_eq!(self.succ_offsets.len(), self.works.len() + 1);
        debug_assert_eq!(
            *self.succ_offsets.last().unwrap() as usize,
            self.succs.len()
        );
        let mut pred_counts = vec![0u32; n as usize];
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..n {
            if self.works[i as usize] == 0 {
                return Err(DagError::ZeroWork { node: i });
            }
            seen.clear();
            for &s in self.succs(i) {
                if s >= n {
                    return Err(DagError::UnknownNode { node: s });
                }
                if s == i {
                    return Err(DagError::SelfLoop { node: s });
                }
                if !seen.insert(s) {
                    return Err(DagError::DuplicateEdge { from: i, to: s });
                }
                pred_counts[s as usize] += 1;
            }
        }
        if pred_counts != self.pred_counts {
            // Inconsistent pred counts make the cursor misbehave; treat
            // as a cycle-class integrity failure.
            return Err(DagError::Cycle);
        }
        // Kahn's algorithm to confirm acyclicity.
        let mut indeg = pred_counts;
        let mut queue: Vec<u32> = (0..n).filter(|&i| indeg[i as usize] == 0).collect();
        let mut visited = 0usize;
        while let Some(v) = queue.pop() {
            visited += 1;
            for &u in self.succs(v) {
                indeg[u as usize] -= 1;
                if indeg[u as usize] == 0 {
                    queue.push(u);
                }
            }
        }
        if visited != self.works.len() {
            return Err(DagError::Cycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::DagBuilder;

    #[test]
    fn single_node_metrics() {
        let dag = DagBuilder::new().node(5).build().unwrap();
        assert_eq!(dag.num_nodes(), 1);
        assert_eq!(dag.total_work(), 5);
        assert_eq!(dag.span(), 5);
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![0]);
        assert!((dag.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_span_equals_work() {
        // 0 -> 1 -> 2, works 2,3,4
        let mut b = DagBuilder::new();
        let a = b.add_node(2);
        let c = b.add_node(3);
        let d = b.add_node(4);
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.total_work(), 9);
        assert_eq!(dag.span(), 9);
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![2]);
    }

    #[test]
    fn diamond_span() {
        // 0 -> {1,2} -> 3 ; works 1, 5, 2, 1 → span = 1+5+1 = 7, work 9
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        let l = b.add_node(5);
        let r = b.add_node(2);
        let t = b.add_node(1);
        b.add_edge(s, l).unwrap();
        b.add_edge(s, r).unwrap();
        b.add_edge(l, t).unwrap();
        b.add_edge(r, t).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.total_work(), 9);
        assert_eq!(dag.span(), 7);
        assert!((dag.parallelism() - 9.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn independent_nodes_span_is_max() {
        let mut b = DagBuilder::new();
        b.add_node(3);
        b.add_node(7);
        b.add_node(2);
        let dag = b.build().unwrap();
        assert_eq!(dag.total_work(), 12);
        assert_eq!(dag.span(), 7);
        assert_eq!(dag.sources().len(), 3);
    }

    #[test]
    fn validate_accepts_built_dags() {
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        for _ in 0..10 {
            let c = b.add_node(2);
            b.add_edge(s, c).unwrap();
        }
        let dag = b.build().unwrap();
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = DagBuilder::new();
        let n0 = b.add_node(1);
        let n1 = b.add_node(1);
        let n2 = b.add_node(1);
        let n3 = b.add_node(1);
        b.add_edge(n0, n2).unwrap();
        b.add_edge(n1, n2).unwrap();
        b.add_edge(n2, n3).unwrap();
        let dag = b.build().unwrap();
        let order = dag.topo_order();
        let pos = |x: u32| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn csr_succs_preserve_edge_insertion_order() {
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        let x = b.add_node(1);
        let y = b.add_node(1);
        let z = b.add_node(1);
        // Deliberately out of id order: determinism of `newly_ready`
        // depends on edge-insertion order surviving the CSR build.
        b.add_edge(s, z).unwrap();
        b.add_edge(s, x).unwrap();
        b.add_edge(s, y).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.succs(s), &[z, x, y]);
        assert_eq!(dag.succs(x), &[] as &[u32]);
        assert_eq!(dag.pred_count(z), 1);
    }

    #[test]
    fn iter_variants_match_allocating_ones() {
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        let m1 = b.add_node(2);
        let m2 = b.add_node(2);
        let t = b.add_node(1);
        b.add_edge(s, m1).unwrap();
        b.add_edge(s, m2).unwrap();
        b.add_edge(m1, t).unwrap();
        b.add_edge(m2, t).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.sources_iter().collect::<Vec<_>>(), dag.sources());
        assert_eq!(dag.sinks_iter().collect::<Vec<_>>(), dag.sinks());
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![3]);
    }

    #[test]
    fn serde_bridge_roundtrips_in_memory() {
        use super::{JobDag, JobDagRepr};
        let mut b = DagBuilder::new();
        let s = b.add_node(3);
        let l = b.add_node(1);
        let r = b.add_node(4);
        b.add_edge(s, l).unwrap();
        b.add_edge(s, r).unwrap();
        let dag = b.build().unwrap();
        let repr = JobDagRepr::from(dag.clone());
        assert_eq!(repr.nodes.len(), 3);
        assert_eq!(repr.nodes[0].succs, vec![l, r]);
        assert_eq!(repr.nodes[2].pred_count, 1);
        let back = JobDag::from(repr);
        assert_eq!(back, dag);
        assert!(back.validate().is_ok());
    }
}
