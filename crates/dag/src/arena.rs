//! Pooled storage for [`DagCursor`] state.
//!
//! The engines create one cursor per live job. With per-job `DagCursor`
//! values on the heap, a long simulation allocates (and frees) five `Vec`s
//! per job — millions of small objects for a `repro all` run. `CursorArena`
//! instead keeps cursors in slots that are *recycled* when a job completes:
//! [`CursorArena::alloc`] pops a free slot and [`DagCursor::reset`]s it in
//! place, reusing the slot's existing buffer capacity. Once the pool has
//! warmed up to the peak number of concurrently live jobs (and peak DAG
//! size), steady-state simulation performs no heap allocation per round.

use crate::cursor::DagCursor;
use crate::graph::JobDag;

/// Opaque handle to a cursor slot inside a [`CursorArena`].
///
/// A `CursorId` is only meaningful for the arena that issued it, and only
/// until that slot is [`CursorArena::release`]d; the engines store at most
/// one live id per job, so stale-handle reuse cannot arise there.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CursorId(u32);

impl CursorId {
    /// Slot index, for diagnostics.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Slab of recyclable [`DagCursor`] slots (LIFO free list).
///
/// LIFO reuse keeps the hottest slot's buffers in cache: the cursor freed
/// by the job that just completed is the first one handed to the next
/// arrival.
#[derive(Debug, Default)]
pub struct CursorArena {
    slots: Vec<DagCursor>,
    free: Vec<u32>,
}

impl CursorArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an arena with room for `n` slots before the slab itself
    /// reallocates (individual cursor buffers still grow on first use).
    pub fn with_capacity(n: usize) -> Self {
        CursorArena {
            slots: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
        }
    }

    /// Obtain a cursor initialized at the start of `dag`, recycling a
    /// released slot when one is available.
    pub fn alloc(&mut self, dag: &JobDag) -> CursorId {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize].reset(dag);
                CursorId(idx)
            }
            None => {
                let idx = self.slots.len();
                assert!(idx < u32::MAX as usize, "cursor arena slot overflow");
                self.slots.push(DagCursor::new(dag));
                CursorId(idx as u32)
            }
        }
    }

    /// Return `id`'s slot to the free list. The slot's buffers keep their
    /// capacity for the next [`CursorArena::alloc`].
    pub fn release(&mut self, id: CursorId) {
        debug_assert!(
            !self.free.contains(&id.0),
            "double release of cursor slot {}",
            id.0
        );
        self.free.push(id.0);
    }

    /// Shared access to the cursor in slot `id`.
    #[inline]
    pub fn get(&self, id: CursorId) -> &DagCursor {
        &self.slots[id.0 as usize]
    }

    /// Exclusive access to the cursor in slot `id`.
    #[inline]
    pub fn get_mut(&mut self, id: CursorId) -> &mut DagCursor {
        &mut self.slots[id.0 as usize]
    }

    /// Number of slots ever created (live + free).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently on the free list.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Return every slot to the free list, keeping all buffer capacity.
    ///
    /// Bulk reset between independent runs sharing one arena (the batched
    /// engine recycles a lane's arena across replicas this way). Unlike
    /// per-slot [`CursorArena::release`], outstanding [`CursorId`]s are
    /// *all* invalidated — callers must drop theirs first.
    pub fn recycle_all(&mut self) {
        self.free.clear();
        // LIFO free list: push ascending so slot 0 (the longest-lived,
        // largest-capacity slot in typical runs) is handed out first.
        self.free.extend((0..self.slots.len() as u32).rev());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shapes, DagBuilder, UnitOutcome};

    #[test]
    fn alloc_matches_fresh_cursor() {
        let dag = shapes::diamond(3, 2);
        let mut arena = CursorArena::new();
        let id = arena.alloc(&dag);
        let fresh = DagCursor::new(&dag);
        assert_eq!(arena.get(id).ready_nodes(), fresh.ready_nodes());
        assert_eq!(arena.get(id).executed_units(), fresh.executed_units());
    }

    #[test]
    fn release_recycles_slot_lifo() {
        let dag = shapes::single_node(3);
        let mut arena = CursorArena::new();
        let a = arena.alloc(&dag);
        let b = arena.alloc(&dag);
        assert_ne!(a, b);
        assert_eq!(arena.capacity(), 2);
        arena.release(a);
        arena.release(b);
        assert_eq!(arena.free_slots(), 2);
        // LIFO: last released comes back first.
        let c = arena.alloc(&dag);
        assert_eq!(c, b);
        let d = arena.alloc(&dag);
        assert_eq!(d, a);
        assert_eq!(arena.capacity(), 2);
    }

    #[test]
    fn recycled_slot_behaves_like_fresh_across_dag_shapes() {
        // Drive a cursor through a big DAG, release, re-alloc onto a small
        // one, and check the recycled slot is indistinguishable from fresh.
        let big = shapes::parallel_for(50, 8);
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        let t = b.add_node(2);
        b.add_edge(s, t).unwrap();
        let small = b.build().unwrap();

        let mut arena = CursorArena::new();
        let id = arena.alloc(&big);
        // Execute the whole big DAG greedily.
        while !arena.get(id).is_complete() {
            let v = arena.get(id).ready_nodes()[0];
            let cur = arena.get_mut(id);
            cur.claim(v).unwrap();
            while let UnitOutcome::InProgress = cur.execute_unit(&big, v).unwrap() {}
        }
        arena.release(id);

        let id2 = arena.alloc(&small);
        assert_eq!(id2, id);
        let fresh = DagCursor::new(&small);
        assert_eq!(arena.get(id2).ready_nodes(), fresh.ready_nodes());
        assert_eq!(arena.get(id2).completed_nodes(), 0);
        assert_eq!(arena.get(id2).executed_units(), 0);
        assert_eq!(arena.get(id2).remaining_work(1).unwrap(), 2);
        assert!(!arena.get(id2).is_complete());
    }

    #[test]
    fn recycle_all_resets_free_list_and_reuses_capacity() {
        let dag = shapes::single_node(2);
        let mut arena = CursorArena::new();
        let a = arena.alloc(&dag);
        let _b = arena.alloc(&dag);
        arena.get_mut(a).claim(0).unwrap();
        arena.release(a);
        // One live slot, one free slot; recycle_all reclaims both.
        arena.recycle_all();
        assert_eq!(arena.free_slots(), 2);
        assert_eq!(arena.capacity(), 2);
        // Slot 0 is handed out first and is indistinguishable from fresh.
        let c = arena.alloc(&dag);
        assert_eq!(c.index(), 0);
        let fresh = DagCursor::new(&dag);
        assert_eq!(arena.get(c).ready_nodes(), fresh.ready_nodes());
        assert_eq!(arena.get(c).executed_units(), 0);
        let d = arena.alloc(&dag);
        assert_eq!(d.index(), 1);
        assert_eq!(arena.capacity(), 2, "no new slots created");
    }

    #[test]
    fn interleaved_alloc_release_keeps_slots_independent() {
        let dag = shapes::single_node(5);
        let mut arena = CursorArena::new();
        let a = arena.alloc(&dag);
        let b = arena.alloc(&dag);
        arena.get_mut(a).claim(0).unwrap();
        arena.get_mut(a).execute_unit(&dag, 0).unwrap();
        assert_eq!(arena.get(a).executed_units(), 1);
        assert_eq!(arena.get(b).executed_units(), 0);
        arena.release(b);
        let c = arena.alloc(&dag);
        assert_eq!(c, b);
        // `a`'s progress untouched by the recycle.
        assert_eq!(arena.get(a).executed_units(), 1);
        assert_eq!(arena.get(c).executed_units(), 0);
    }
}
