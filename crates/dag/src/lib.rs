//! # parflow-dag
//!
//! The DAG model of dynamic multithreaded jobs (Section 2 of the paper).
//!
//! A job `J_i` is a directed acyclic graph whose nodes are sequential strands
//! with positive integer processing times. A node becomes *ready* when all
//! its predecessors have completed; multiple ready nodes of the same job may
//! run simultaneously on different processors. Two parameters characterize a
//! job:
//!
//! * **work** `W_i` — the sum of node processing times (1-processor runtime);
//! * **span** (critical-path length) `P_i` — the longest weighted path
//!   (∞-processor runtime), a lower bound for every scheduler.
//!
//! Crucially, schedulers are **non-clairvoyant**: the DAG *unfolds* as the
//! job executes. [`DagCursor`] is the only interface schedulers get — it
//! exposes ready nodes and completion events, never total work, span, or
//! future structure.
//!
//! The [`shapes`] module generates the DAG families used in the paper's
//! experiments and proofs (parallel-for server requests, fork-join
//! divide-and-conquer, the Section 5 adversarial gadget, random layered DAGs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod builder;
mod cursor;
mod dot;
mod error;
mod graph;
mod job;
pub mod shapes;

pub use arena::{CursorArena, CursorId};
pub use builder::DagBuilder;
pub use cursor::{DagCursor, StepOutcome, UnitOutcome};
pub use error::{DagError, ExecError};
pub use graph::{JobDag, Node, NodeId};
pub use job::{Instance, Job, JobId, Weight};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Random DAG strategy: seed + layered parameters.
    fn arb_dag() -> impl Strategy<Value = JobDag> {
        (any::<u64>(), 1usize..6, 1usize..5, 1u64..8, 0u8..=100).prop_map(
            |(seed, layers, width, work, pct)| {
                let mut rng = SmallRng::seed_from_u64(seed);
                shapes::layered_random(
                    &mut rng,
                    shapes::LayeredParams {
                        layers,
                        max_width: width,
                        max_node_work: work,
                        extra_edge_pct: pct,
                    },
                )
            },
        )
    }

    proptest! {
        #[test]
        fn random_dags_validate(dag in arb_dag()) {
            prop_assert!(dag.validate().is_ok());
        }

        #[test]
        fn span_bounds(dag in arb_dag()) {
            // span ≤ work, and work ≤ span · (number of nodes) trivially.
            prop_assert!(dag.span() <= dag.total_work());
            prop_assert!(dag.total_work() <= dag.span() * dag.num_nodes() as u64);
            prop_assert!(dag.span() >= 1);
        }

        #[test]
        fn greedy_execution_completes_all_work(dag in arb_dag()) {
            // Execute the DAG with a trivially greedy 1-processor loop via
            // the cursor and check conservation of work and that readiness
            // only ever exposes valid nodes.
            let mut cur = DagCursor::new(&dag);
            let mut executed: u64 = 0;
            let mut safety = dag.total_work() + 10;
            while !cur.is_complete() {
                prop_assert!(safety > 0, "cursor failed to make progress");
                safety -= 1;
                let v = cur.ready_nodes()[0];
                cur.claim(v).unwrap();
                // run node to completion
                loop {
                    executed += 1;
                    match cur.execute_unit(&dag, v).unwrap() {
                        UnitOutcome::InProgress => continue,
                        UnitOutcome::NodeCompleted { .. } => break,
                    }
                }
            }
            prop_assert_eq!(executed, dag.total_work());
            prop_assert_eq!(cur.executed_units(), dag.total_work());
            prop_assert_eq!(cur.completed_nodes(), dag.num_nodes());
            prop_assert_eq!(cur.ready_count(), 0);
        }

        #[test]
        fn sequential_execution_time_equals_work(dag in arb_dag()) {
            // One processor, one unit per step: completing the job takes
            // exactly W steps — definition of work.
            let mut cur = DagCursor::new(&dag);
            let mut steps = 0u64;
            let mut current: Option<NodeId> = None;
            while !cur.is_complete() {
                let v = match current {
                    Some(v) => v,
                    None => {
                        let v = cur.ready_nodes()[0];
                        cur.claim(v).unwrap();
                        v
                    }
                };
                steps += 1;
                match cur.execute_unit(&dag, v).unwrap() {
                    UnitOutcome::InProgress => current = Some(v),
                    UnitOutcome::NodeCompleted { .. } => current = None,
                }
            }
            prop_assert_eq!(steps, dag.total_work());
        }

        #[test]
        fn infinite_processor_execution_time_equals_span(dag in arb_dag()) {
            // With unlimited processors executing every ready node each
            // step, the job completes in exactly span steps — definition of
            // the critical path (Proposition 2.1 with all nodes scheduled).
            let mut cur = DagCursor::new(&dag);
            let mut steps = 0u64;
            let mut running: Vec<NodeId> = Vec::new();
            while !cur.is_complete() {
                // claim everything ready
                let ready: Vec<NodeId> = cur.ready_nodes().to_vec();
                for v in ready {
                    cur.claim(v).unwrap();
                    running.push(v);
                }
                steps += 1;
                let mut still: Vec<NodeId> = Vec::new();
                for v in running.drain(..) {
                    match cur.execute_unit(&dag, v).unwrap() {
                        UnitOutcome::InProgress => still.push(v),
                        UnitOutcome::NodeCompleted { .. } => {}
                    }
                }
                running = still;
            }
            prop_assert_eq!(steps, dag.span());
        }

        #[test]
        fn fork_join_shape_properties(depth in 0u32..7, leaf in 1u64..10) {
            let d = shapes::fork_join(depth, leaf);
            let leaves = 1u64 << depth;
            prop_assert_eq!(d.total_work(), leaves * leaf + 2 * (leaves - 1));
            prop_assert_eq!(d.span(), leaf + 2 * depth as u64);
        }

        #[test]
        fn parallel_for_shape_properties(work in 1u64..1000, chunks in 1usize..64) {
            let d = shapes::parallel_for(work, chunks);
            prop_assert_eq!(d.total_work(), work + 2);
            let eff = (chunks as u64).min(work);
            prop_assert_eq!(d.span(), work.div_ceil(eff) + 2);
            prop_assert!(d.validate().is_ok());
        }

        #[test]
        fn instance_sorted_by_arrival(arrivals in proptest::collection::vec(0u64..1000, 1..50)) {
            let dag = std::sync::Arc::new(shapes::single_node(1));
            let jobs: Vec<Job> = arrivals
                .iter()
                .enumerate()
                .map(|(i, &a)| Job::new(i as u32, a, dag.clone()))
                .collect();
            let inst = Instance::new(jobs);
            let got: Vec<_> = inst.jobs().iter().map(|j| j.arrival).collect();
            let mut sorted = arrivals.clone();
            sorted.sort();
            prop_assert_eq!(got, sorted);
            for (i, j) in inst.jobs().iter().enumerate() {
                prop_assert_eq!(j.id as usize, i);
            }
        }
    }
}
