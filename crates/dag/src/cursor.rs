//! The dynamic-unfolding execution view of a job's DAG.
//!
//! Schedulers in the paper are **non-clairvoyant**: they see neither the
//! job's total work, nor its span, nor the structure of yet-unreached parts
//! of the DAG. `DagCursor` enforces that boundary: the only queries it offers
//! are "which nodes are ready right now" and "is the job finished", and the
//! only mutations are claim / release / execute-one-unit.

use crate::error::ExecError;
use crate::graph::{JobDag, NodeId};
use parflow_time::Work;

/// Execution state of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeState {
    /// Some predecessors have not completed.
    Blocked,
    /// All predecessors completed; available to be claimed.
    Ready,
    /// Claimed by a processor (being executed, possibly across many rounds).
    Claimed,
    /// All work units executed.
    Completed,
}

/// Result of executing one unit of work on a claimed node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnitOutcome {
    /// The node still has remaining work and stays claimed.
    InProgress,
    /// The node finished; `newly_ready` lists successors that became ready
    /// as a result (in successor-list order, deterministic).
    NodeCompleted {
        /// Nodes that transitioned Blocked → Ready by this completion.
        newly_ready: Vec<NodeId>,
        /// True if this was the job's last node: the job is now complete.
        job_completed: bool,
    },
}

/// Allocation-free counterpart of [`UnitOutcome`], used by
/// [`DagCursor::execute_unit_into`] and [`DagCursor::execute_units`]:
/// newly-ready successors are appended to a caller-owned buffer instead of
/// a fresh `Vec` per completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The node still has remaining work and stays claimed.
    InProgress,
    /// The node finished (successors appended to the caller's buffer).
    NodeCompleted {
        /// True if this was the job's last node: the job is now complete.
        job_completed: bool,
    },
}

/// Tracks the execution progress of a single job's DAG.
///
/// The cursor maintains, per node: remaining work, unmet predecessor count
/// and state. The ready set is kept as a dense vector with a position index
/// so membership updates are O(1) and iteration order is deterministic.
#[derive(Clone, Debug)]
pub struct DagCursor {
    remaining: Vec<Work>,
    unmet_preds: Vec<u32>,
    state: Vec<NodeState>,
    ready: Vec<NodeId>,
    /// `ready_pos[v]` = index of v in `ready`, or `u32::MAX`.
    ready_pos: Vec<u32>,
    completed_nodes: usize,
    executed_units: Work,
}

const NOT_IN_READY: u32 = u32::MAX;

impl DagCursor {
    /// Start executing `dag` from scratch: sources are ready, all else blocked.
    pub fn new(dag: &JobDag) -> Self {
        let mut cursor = DagCursor {
            remaining: Vec::new(),
            unmet_preds: Vec::new(),
            state: Vec::new(),
            ready: Vec::new(),
            ready_pos: Vec::new(),
            completed_nodes: 0,
            executed_units: 0,
        };
        cursor.reset(dag);
        cursor
    }

    /// Rewind this cursor onto `dag`, reusing all existing buffer capacity.
    /// Produces a state observationally identical to `DagCursor::new(dag)` —
    /// this is what lets [`crate::CursorArena`] recycle slots without
    /// allocating in steady state.
    pub fn reset(&mut self, dag: &JobDag) {
        let n = dag.num_nodes();
        let (works, pred_counts) = dag.columns();
        self.remaining.clear();
        self.remaining.extend_from_slice(works);
        self.unmet_preds.clear();
        self.unmet_preds.extend_from_slice(pred_counts);
        self.state.clear();
        self.state.resize(n, NodeState::Blocked);
        self.ready.clear();
        self.ready_pos.clear();
        self.ready_pos.resize(n, NOT_IN_READY);
        self.completed_nodes = 0;
        self.executed_units = 0;
        // Sources become ready in increasing id order (matching the
        // historical iterate-all-nodes construction order).
        for v in dag.sources_iter() {
            self.mark_ready(v);
        }
    }

    fn mark_ready(&mut self, v: NodeId) {
        self.state[v as usize] = NodeState::Ready;
        self.ready_pos[v as usize] = self.ready.len() as u32;
        self.ready.push(v);
    }

    fn remove_from_ready(&mut self, v: NodeId) {
        let pos = self.ready_pos[v as usize] as usize;
        debug_assert!(pos != NOT_IN_READY as usize);
        // lint: allow(panicking) invariant: v is in the ready set (ready_pos checked above), so ready is non-empty
        let last = *self.ready.last().expect("ready set empty");
        self.ready.swap_remove(pos);
        if last != v {
            self.ready_pos[last as usize] = pos as u32;
        }
        self.ready_pos[v as usize] = NOT_IN_READY;
    }

    /// The nodes currently ready (deterministic order; not sorted).
    #[inline]
    pub fn ready_nodes(&self) -> &[NodeId] {
        &self.ready
    }

    /// Number of currently ready nodes.
    #[inline]
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// True once every node has completed.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.completed_nodes == self.remaining.len()
    }

    /// Total units executed so far (monotone; equals total work at the end).
    #[inline]
    pub fn executed_units(&self) -> Work {
        self.executed_units
    }

    /// Number of nodes fully completed so far.
    #[inline]
    pub fn completed_nodes(&self) -> usize {
        self.completed_nodes
    }

    /// Remaining work on a node (0 once completed).
    pub fn remaining_work(&self, v: NodeId) -> Result<Work, ExecError> {
        self.remaining
            .get(v as usize)
            .copied()
            .ok_or(ExecError::OutOfRange { node: v })
    }

    /// True if `v` is ready (claimable).
    pub fn is_ready(&self, v: NodeId) -> bool {
        matches!(self.state.get(v as usize), Some(NodeState::Ready))
    }

    /// True if `v` is currently claimed by some processor.
    pub fn is_claimed(&self, v: NodeId) -> bool {
        matches!(self.state.get(v as usize), Some(NodeState::Claimed))
    }

    /// Claim a ready node for execution (Ready → Claimed). A claimed node is
    /// excluded from [`DagCursor::ready_nodes`], modelling that a node is
    /// executed by a single processor at a time.
    pub fn claim(&mut self, v: NodeId) -> Result<(), ExecError> {
        match self.state.get(v as usize) {
            None => Err(ExecError::OutOfRange { node: v }),
            Some(NodeState::Ready) => {
                self.remove_from_ready(v);
                self.state[v as usize] = NodeState::Claimed;
                Ok(())
            }
            Some(_) => Err(ExecError::NotReady { node: v }),
        }
    }

    /// Release a claimed node without finishing it (Claimed → Ready). Used
    /// by preemptive centralized schedulers (FIFO / BWF reassign processors
    /// every round).
    pub fn release(&mut self, v: NodeId) -> Result<(), ExecError> {
        match self.state.get(v as usize) {
            None => Err(ExecError::OutOfRange { node: v }),
            Some(NodeState::Claimed) => {
                self.mark_ready(v);
                Ok(())
            }
            Some(_) => Err(ExecError::NotClaimed { node: v }),
        }
    }

    /// Execute one unit of work on a claimed node. Needs the job's [`JobDag`]
    /// to propagate readiness when the node completes.
    pub fn execute_unit(&mut self, dag: &JobDag, v: NodeId) -> Result<UnitOutcome, ExecError> {
        let mut newly_ready = Vec::new();
        match self.execute_units(dag, v, 1, &mut newly_ready)? {
            StepOutcome::InProgress => Ok(UnitOutcome::InProgress),
            StepOutcome::NodeCompleted { job_completed } => Ok(UnitOutcome::NodeCompleted {
                newly_ready,
                job_completed,
            }),
        }
    }

    /// Execute one unit of work on a claimed node, appending any newly-ready
    /// successors to `newly_ready` instead of allocating. Hot-loop variant of
    /// [`DagCursor::execute_unit`].
    #[inline]
    pub fn execute_unit_into(
        &mut self,
        dag: &JobDag,
        v: NodeId,
        newly_ready: &mut Vec<NodeId>,
    ) -> Result<StepOutcome, ExecError> {
        self.execute_units(dag, v, 1, newly_ready)
    }

    /// Execute `k ≥ 1` units of work on a claimed node in one call; the node
    /// completes iff `k` equals its remaining work (`k` larger is an
    /// [`ExecError::NotClaimed`]-free invariant violation and panics via
    /// debug assertion, capped by the `min` below in release builds).
    ///
    /// Equivalent to calling [`DagCursor::execute_unit`] `k` times, minus the
    /// per-unit dispatch — the bulk path the event-horizon engine uses to
    /// consume a whole inter-event window at once. Newly-ready successors are
    /// appended to `newly_ready`.
    pub fn execute_units(
        &mut self,
        dag: &JobDag,
        v: NodeId,
        k: Work,
        newly_ready: &mut Vec<NodeId>,
    ) -> Result<StepOutcome, ExecError> {
        match self.state.get(v as usize) {
            None => return Err(ExecError::OutOfRange { node: v }),
            Some(NodeState::Claimed) => {}
            Some(_) => return Err(ExecError::NotClaimed { node: v }),
        }
        debug_assert!(k >= 1 && k <= self.remaining[v as usize]);
        let k = k.min(self.remaining[v as usize]);
        self.remaining[v as usize] -= k;
        self.executed_units += k;
        if self.remaining[v as usize] > 0 {
            return Ok(StepOutcome::InProgress);
        }
        self.state[v as usize] = NodeState::Completed;
        self.completed_nodes += 1;
        for &u in dag.succs(v) {
            let c = &mut self.unmet_preds[u as usize];
            debug_assert!(*c > 0);
            *c -= 1;
            if *c == 0 {
                self.mark_ready(u);
                newly_ready.push(u);
            }
        }
        Ok(StepOutcome::NodeCompleted {
            job_completed: self.is_complete(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn diamond() -> JobDag {
        let mut b = DagBuilder::new();
        let s = b.add_node(1);
        let l = b.add_node(2);
        let r = b.add_node(2);
        let t = b.add_node(1);
        b.add_edge(s, l).unwrap();
        b.add_edge(s, r).unwrap();
        b.add_edge(l, t).unwrap();
        b.add_edge(r, t).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn initial_ready_set_is_sources() {
        let dag = diamond();
        let c = DagCursor::new(&dag);
        assert_eq!(c.ready_nodes(), &[0]);
        assert!(!c.is_complete());
        assert_eq!(c.executed_units(), 0);
    }

    #[test]
    fn full_execution_diamond() {
        let dag = diamond();
        let mut c = DagCursor::new(&dag);
        c.claim(0).unwrap();
        let out = c.execute_unit(&dag, 0).unwrap();
        match out {
            UnitOutcome::NodeCompleted {
                newly_ready,
                job_completed,
            } => {
                assert_eq!(newly_ready, vec![1, 2]);
                assert!(!job_completed);
            }
            _ => panic!("source should complete in one unit"),
        }
        assert_eq!(c.ready_count(), 2);
        // Execute both middles interleaved.
        c.claim(1).unwrap();
        c.claim(2).unwrap();
        assert_eq!(c.execute_unit(&dag, 1).unwrap(), UnitOutcome::InProgress);
        assert_eq!(c.execute_unit(&dag, 2).unwrap(), UnitOutcome::InProgress);
        assert!(matches!(
            c.execute_unit(&dag, 1).unwrap(),
            UnitOutcome::NodeCompleted { ref newly_ready, .. } if newly_ready.is_empty()
        ));
        let out = c.execute_unit(&dag, 2).unwrap();
        match out {
            UnitOutcome::NodeCompleted { newly_ready, .. } => assert_eq!(newly_ready, vec![3]),
            _ => panic!(),
        }
        c.claim(3).unwrap();
        let out = c.execute_unit(&dag, 3).unwrap();
        assert!(matches!(
            out,
            UnitOutcome::NodeCompleted {
                job_completed: true,
                ..
            }
        ));
        assert!(c.is_complete());
        assert_eq!(c.executed_units(), dag.total_work());
        assert_eq!(c.completed_nodes(), 4);
    }

    #[test]
    fn claim_blocked_fails() {
        let dag = diamond();
        let mut c = DagCursor::new(&dag);
        assert_eq!(c.claim(3).unwrap_err(), ExecError::NotReady { node: 3 });
    }

    #[test]
    fn double_claim_fails() {
        let dag = diamond();
        let mut c = DagCursor::new(&dag);
        c.claim(0).unwrap();
        assert_eq!(c.claim(0).unwrap_err(), ExecError::NotReady { node: 0 });
    }

    #[test]
    fn execute_unclaimed_fails() {
        let dag = diamond();
        let mut c = DagCursor::new(&dag);
        assert_eq!(
            c.execute_unit(&dag, 0).unwrap_err(),
            ExecError::NotClaimed { node: 0 }
        );
    }

    #[test]
    fn release_returns_to_ready() {
        let dag = diamond();
        let mut c = DagCursor::new(&dag);
        c.claim(0).unwrap();
        assert_eq!(c.ready_count(), 0);
        c.release(0).unwrap();
        assert!(c.is_ready(0));
        assert_eq!(c.ready_count(), 1);
        // Can claim again and partial progress is preserved across release.
        let mut b = DagBuilder::new();
        b.add_node(3);
        let dag2 = b.build().unwrap();
        let mut c2 = DagCursor::new(&dag2);
        c2.claim(0).unwrap();
        c2.execute_unit(&dag2, 0).unwrap();
        c2.release(0).unwrap();
        assert_eq!(c2.remaining_work(0).unwrap(), 2);
        c2.claim(0).unwrap();
        c2.execute_unit(&dag2, 0).unwrap();
        assert!(matches!(
            c2.execute_unit(&dag2, 0).unwrap(),
            UnitOutcome::NodeCompleted { .. }
        ));
    }

    #[test]
    fn release_unclaimed_fails() {
        let dag = diamond();
        let mut c = DagCursor::new(&dag);
        assert_eq!(c.release(0).unwrap_err(), ExecError::NotClaimed { node: 0 });
    }

    #[test]
    fn out_of_range_errors() {
        let dag = diamond();
        let mut c = DagCursor::new(&dag);
        assert_eq!(c.claim(99).unwrap_err(), ExecError::OutOfRange { node: 99 });
        assert_eq!(
            c.remaining_work(99).unwrap_err(),
            ExecError::OutOfRange { node: 99 }
        );
    }

    #[test]
    fn ready_set_swap_remove_consistency() {
        // Three independent nodes; claim the middle one and make sure the
        // position index stays consistent.
        let mut b = DagBuilder::new();
        b.add_node(1);
        b.add_node(1);
        b.add_node(1);
        let dag = b.build().unwrap();
        let mut c = DagCursor::new(&dag);
        assert_eq!(c.ready_count(), 3);
        c.claim(1).unwrap();
        assert_eq!(c.ready_count(), 2);
        assert!(c.is_ready(0));
        assert!(c.is_ready(2));
        c.claim(0).unwrap();
        c.claim(2).unwrap();
        assert_eq!(c.ready_count(), 0);
    }

    #[test]
    fn wide_fanout_ready_set_stays_o1() {
        // Regression guard for the ready-set bookkeeping under wide fan-out:
        // a source feeding 10_000 children, all released at once, then
        // claimed/completed in a scattered order. The position index must
        // keep every swap_remove O(1) and consistent; if bookkeeping ever
        // degraded to a scan this test's runtime would blow up and the
        // consistency asserts below would trip on any indexing slip.
        const FAN: u32 = 10_000;
        let mut b = DagBuilder::new();
        let src = b.add_node(1);
        let sink_preds: Vec<u32> = (0..FAN).map(|_| b.add_node(1)).collect();
        for &c in &sink_preds {
            b.add_edge(src, c).unwrap();
        }
        let dag = b.build().unwrap();
        let mut c = DagCursor::new(&dag);
        c.claim(src).unwrap();
        let out = c.execute_unit(&dag, src).unwrap();
        match out {
            UnitOutcome::NodeCompleted { newly_ready, .. } => {
                assert_eq!(newly_ready.len(), FAN as usize);
                // Successor order == edge-insertion order.
                assert_eq!(newly_ready, sink_preds);
            }
            _ => panic!("source must complete"),
        }
        assert_eq!(c.ready_count(), FAN as usize);
        // Claim from the middle outward so swap_remove churns both ends.
        for i in 0..FAN {
            let v = 1 + ((i * 7919) % FAN); // co-prime stride scatters order
            c.claim(v).unwrap();
            c.execute_unit(&dag, v).unwrap();
        }
        assert!(c.is_complete());
        assert_eq!(c.ready_count(), 0);
    }

    #[test]
    fn reset_matches_fresh_cursor() {
        let dag = diamond();
        let mut c = DagCursor::new(&dag);
        // Make progress, then reset onto a different DAG and back.
        c.claim(0).unwrap();
        c.execute_unit(&dag, 0).unwrap();
        c.claim(1).unwrap();
        let mut b = DagBuilder::new();
        b.add_node(4);
        b.add_node(2);
        let other = b.build().unwrap();
        c.reset(&other);
        assert_eq!(c.ready_nodes(), &[0, 1]);
        assert_eq!(c.executed_units(), 0);
        assert_eq!(c.remaining_work(0).unwrap(), 4);
        c.reset(&dag);
        let fresh = DagCursor::new(&dag);
        assert_eq!(c.ready_nodes(), fresh.ready_nodes());
        assert_eq!(c.executed_units(), fresh.executed_units());
        assert_eq!(c.completed_nodes(), fresh.completed_nodes());
        for v in 0..dag.num_nodes() as u32 {
            assert_eq!(
                c.remaining_work(v).unwrap(),
                fresh.remaining_work(v).unwrap()
            );
            assert_eq!(c.is_ready(v), fresh.is_ready(v));
        }
    }
}
