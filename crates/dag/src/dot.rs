//! GraphViz export of job DAGs, for debugging and documentation.

use crate::graph::JobDag;
use std::fmt::Write as _;

impl JobDag {
    /// Render the DAG in GraphViz `dot` syntax. Node labels show
    /// `id (work)`; the graph flows top to bottom.
    ///
    /// ```
    /// use parflow_dag::shapes;
    /// let dot = shapes::diamond(2, 3).to_dot("diamond");
    /// assert!(dot.starts_with("digraph diamond {"));
    /// assert!(dot.contains("0 -> 1"));
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=box, fontsize=10];");
        for id in 0..self.num_nodes() as u32 {
            let _ = writeln!(out, "  {id} [label=\"{id} ({}u)\"];", self.work(id));
        }
        for id in 0..self.num_nodes() as u32 {
            for &succ in self.succs(id) {
                let _ = writeln!(out, "  {id} -> {succ};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::shapes;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dag = shapes::diamond(3, 2); // 5 nodes, 6 edges
        let dot = dag.to_dot("d");
        for id in 0..5 {
            assert!(dot.contains(&format!("{id} [label=")), "node {id} missing");
        }
        assert_eq!(dot.matches(" -> ").count(), 6);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_labels_carry_work() {
        let dot = shapes::single_node(42).to_dot("single");
        assert!(dot.contains("(42u)"));
    }

    #[test]
    fn chain_dot_is_linear() {
        let dot = shapes::chain(3, 1).to_dot("chain");
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("1 -> 2"));
        assert_eq!(dot.matches(" -> ").count(), 2);
    }
}
