//! Mutation harness for the certifier.
//!
//! Two obligations, mirroring docs/STATIC_ANALYSIS.md:
//!
//! 1. **Soundness on real schedules** — every trace produced by the
//!    engines across random instances, policies, steal-cost models and
//!    speeds certifies clean (property test).
//! 2. **Sensitivity to corruption** — each deliberate mutation of a
//!    known-clean trace/result is rejected with *exactly one* diagnostic
//!    (the certifier stops at the first violation by construction) that
//!    names the *right* invariant and locus. A certifier that flags the
//!    downstream cascade instead of the root cause fails these tests.

use parflow_certify::{certify_run, certify_stream_summary, CertReport, Invariant};
use parflow_core::{
    run_priority, run_worksteal, Action, Fifo, ScheduleTrace, SimConfig, SimResult, StealPolicy,
};
use parflow_dag::{shapes, Instance, Job};
use parflow_time::{Rational, Speed};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random small instance of mixed DAG shapes and arrival patterns
/// (same population as the differential suites).
fn arb_instance() -> impl Strategy<Value = Instance> {
    (any::<u64>(), 1usize..8, 0u64..60).prop_map(|(seed, njobs, spread)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let jobs = (0..njobs)
            .map(|i| {
                let arrival = if spread == 0 {
                    0
                } else {
                    rng.gen_range(0..=spread)
                };
                let dag = match rng.gen_range(0..4u8) {
                    0 => shapes::single_node(rng.gen_range(1..25)),
                    1 => shapes::chain(rng.gen_range(1..5), rng.gen_range(1..5)),
                    2 => shapes::parallel_for(rng.gen_range(1..30), rng.gen_range(1..6)),
                    _ => shapes::fork_join(rng.gen_range(0..4), rng.gen_range(1..5)),
                };
                Job::weighted(i as u32, arrival, rng.gen_range(1..8u64), Arc::new(dag))
            })
            .collect();
        Instance::new(jobs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every engine-produced trace certifies clean: work stealing across
    /// both policies and steal-cost models, and centralized FIFO,
    /// including speed augmentation.
    #[test]
    fn engine_traces_certify_clean(
        inst in arb_instance(),
        m in 1usize..5,
        k in 0u32..4,
        free in any::<bool>(),
        fast in any::<bool>(),
        seed in any::<u64>()
    ) {
        let mut cfg = SimConfig::new(m).with_trace();
        if free {
            cfg = cfg.with_free_steals();
        }
        if fast {
            cfg = cfg.with_speed(Speed::new(11, 10));
        }
        let policy = if k == 0 {
            StealPolicy::AdmitFirst
        } else {
            StealPolicy::StealKFirst { k }
        };
        let (result, trace) = run_worksteal(&inst, &cfg, policy, seed);
        let trace = trace.expect("trace requested");
        let report = certify_run(&inst, &cfg, Some(policy), &result, &trace);
        prop_assert!(report.is_clean(), "worksteal: {}", report.render());
        prop_assert_eq!(report.jobs, inst.len());

        let fifo_cfg = SimConfig::new(m)
            .with_speed(cfg.speed)
            .with_trace();
        let (result, trace) = run_priority(&inst, &fifo_cfg, &Fifo);
        let trace = trace.expect("trace requested");
        let report = certify_run(&inst, &fifo_cfg, None, &result, &trace);
        prop_assert!(report.is_clean(), "fifo: {}", report.render());
    }
}

/// One clean, fully deterministic baseline: a 3-node chain job on one
/// machine under admit-first (trace `[W(0,0)], [W(0,1)], [W(0,2)]`).
fn chain_baseline() -> (Instance, SimConfig, SimResult, ScheduleTrace) {
    let inst = Instance::new(vec![Job::new(0, 0, Arc::new(shapes::chain(3, 1)))]);
    let cfg = SimConfig::new(1).with_trace();
    let (result, trace) = run_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 1);
    let trace = trace.expect("trace requested");
    let report = certify_run(&inst, &cfg, Some(StealPolicy::AdmitFirst), &result, &trace);
    assert!(
        report.is_clean(),
        "baseline must be clean: {}",
        report.render()
    );
    (inst, cfg, result, trace)
}

/// Certify the mutated pair and return the single diagnostic.
fn expect_violation(
    inst: &Instance,
    cfg: &SimConfig,
    result: &SimResult,
    trace: &ScheduleTrace,
) -> parflow_certify::Violation {
    let report = certify_run(inst, cfg, Some(StealPolicy::AdmitFirst), result, trace);
    let rendered = report.render();
    report
        .violation
        .unwrap_or_else(|| panic!("mutation must be rejected: {rendered}"))
}

/// Mutation 1: swap two busy spans. Units of a chain now execute out of
/// DAG order — a P1 precedence violation at the earlier round.
#[test]
fn swapped_spans_violate_precedence() {
    let (inst, cfg, result, trace) = chain_baseline();
    let mut rows = trace.to_dense();
    rows.swap(0, 1);
    let mutated = ScheduleTrace::from_dense(trace.m, trace.speed, rows);
    let v = expect_violation(&inst, &cfg, &result, &mutated);
    assert_eq!(v.invariant, Invariant::Precedence, "{v}");
    assert_eq!(v.round, Some(0), "{v}");
    assert_eq!(v.job, Some(0), "{v}");
    assert!(v.message.contains("predecessor"), "{v}");
}

/// Mutation 2: drop a completion. The final unit of the job never
/// executes — P1 work conservation, attributed to the job and the short
/// node.
#[test]
fn dropped_completion_violates_precedence_completeness() {
    let (inst, cfg, result, trace) = chain_baseline();
    let mut rows = trace.to_dense();
    rows.pop();
    let mutated = ScheduleTrace::from_dense(trace.m, trace.speed, rows);
    let v = expect_violation(&inst, &cfg, &result, &mutated);
    assert_eq!(v.invariant, Invariant::Precedence, "{v}");
    assert_eq!(v.job, Some(0), "{v}");
    assert!(v.message.contains("incomplete"), "{v}");
}

/// Mutation 3: exceed capacity. A round row with m+1 busy processors is
/// rejected as P2 at exactly that round.
#[test]
fn exceeded_capacity_violates_capacity() {
    let (inst, cfg, result, trace) = chain_baseline();
    let mut rows = trace.to_dense();
    rows[1].push(Action::Work { job: 0, node: 1 });
    let mutated = ScheduleTrace::from_dense(trace.m, trace.speed, rows);
    let v = expect_violation(&inst, &cfg, &result, &mutated);
    assert_eq!(v.invariant, Invariant::Capacity, "{v}");
    assert_eq!(v.round, Some(1), "{v}");
    assert!(v.message.contains("row covers 2 processors"), "{v}");
}

/// Mutation 4: reorder a precedence pair onto one round. Running a chain
/// successor in the same round as its predecessor (two processors) is a
/// P1 violation — rounds are atomic time steps.
#[test]
fn same_round_pair_violates_precedence() {
    let inst = Instance::new(vec![Job::new(0, 0, Arc::new(shapes::chain(2, 1)))]);
    let cfg = SimConfig::new(2).with_trace();
    let (result, trace) = run_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 1);
    let trace = trace.expect("trace requested");
    assert!(certify_run(&inst, &cfg, Some(StealPolicy::AdmitFirst), &result, &trace).is_clean());
    // Compress the two sequential rounds into one parallel round.
    let rows = vec![vec![
        Action::Work { job: 0, node: 0 },
        Action::Work { job: 0, node: 1 },
    ]];
    let mutated = ScheduleTrace::from_dense(trace.m, trace.speed, rows);
    let v = expect_violation(&inst, &cfg, &result, &mutated);
    assert_eq!(v.invariant, Invariant::Precedence, "{v}");
    assert_eq!(v.round, Some(0), "{v}");
    assert_eq!(v.worker, Some(1), "{v}");
    assert!(v.message.contains("predecessor"), "{v}");
}

/// Mutation 5: corrupt a reported flow. The trace is untouched; the
/// result's flow disagrees with the recomputation — P4, attributed to
/// the job.
#[test]
fn corrupted_flow_violates_flow_accounting() {
    let (inst, cfg, mut result, trace) = chain_baseline();
    result.outcomes[0].flow += Rational::from_int(1);
    let v = expect_violation(&inst, &cfg, &result, &trace);
    assert_eq!(v.invariant, Invariant::FlowAccounting, "{v}");
    assert_eq!(v.job, Some(0), "{v}");
    assert!(v.message.contains("flow"), "{v}");
}

/// Mutation 6: inflate the claimed performance past the OPT bound. A
/// summary whose max flow undercuts the independently computed lower
/// bound is impossible — P5. (A *trace* that beats OPT necessarily
/// breaks P1/P2 first; the paper's bound is exactly why.)
#[test]
fn max_flow_below_opt_bound_violates_lower_bound() {
    let report = certify_stream_summary(
        Speed::ONE,
        1_000,
        Rational::new(7, 2),
        Rational::from_int(4),
    );
    let v = report.violation.expect("7/2 < 4 must violate P5");
    assert_eq!(v.invariant, Invariant::LowerBound, "{v}");
    assert!(v.message.contains("OPT lower bound"), "{v}");
    // The boundary itself is feasible.
    assert!(certify_stream_summary(
        Speed::ONE,
        1_000,
        Rational::from_int(4),
        Rational::from_int(4)
    )
    .is_clean());
}

/// Mutation 7 (policy): a worker idles inside a busy round while the
/// global queue still holds an admissible job — breaks admit-first
/// work conservation, P3 at that round and worker, naming the waiting
/// queue-front job.
#[test]
fn idle_past_nonempty_queue_violates_policy() {
    let inst = Instance::new(vec![
        Job::new(0, 0, Arc::new(shapes::single_node(1))),
        Job::new(1, 0, Arc::new(shapes::single_node(1))),
        Job::new(2, 0, Arc::new(shapes::single_node(1))),
    ]);
    let cfg = SimConfig::new(2).with_trace();
    let (result, trace) = run_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 1);
    let trace = trace.expect("trace requested");
    assert!(certify_run(&inst, &cfg, Some(StealPolicy::AdmitFirst), &result, &trace).is_clean());
    // Delay job 1 by one round: worker 1 now idles at round 0 while the
    // queue holds jobs 1 and 2.
    let rows = vec![
        vec![Action::Work { job: 0, node: 0 }, Action::Idle],
        vec![
            Action::Work { job: 2, node: 0 },
            Action::Work { job: 1, node: 0 },
        ],
    ];
    let mutated = ScheduleTrace::from_dense(trace.m, trace.speed, rows);
    let v = expect_violation(&inst, &cfg, &result, &mutated);
    assert_eq!(v.invariant, Invariant::Policy, "{v}");
    assert_eq!(v.round, Some(0), "{v}");
    assert_eq!(v.worker, Some(1), "{v}");
    assert_eq!(v.job, Some(1), "{v}");
}

/// Mutation 8 (policy): the same trace certified against a stricter
/// declared policy. An admit-first schedule admits long before k = 5
/// failed steals — P3 at the admission.
#[test]
fn premature_admission_violates_steal_k_policy() {
    let (inst, cfg, result, trace) = chain_baseline();
    let report = certify_run(
        &inst,
        &cfg,
        Some(StealPolicy::StealKFirst { k: 5 }),
        &result,
        &trace,
    );
    let v = report.violation.expect("k=5 conformance must fail");
    assert_eq!(v.invariant, Invariant::Policy, "{v}");
    assert_eq!(v.round, Some(0), "{v}");
    assert_eq!(v.worker, Some(0), "{v}");
    assert_eq!(v.job, Some(0), "{v}");
    assert!(v.message.contains("failed steals"), "{v}");
}

/// Faulted runs are skipped, not certified — and never reported clean.
#[test]
fn faulted_runs_are_skipped_not_certified() {
    use parflow_core::FaultPlan;
    let inst = Instance::new(vec![Job::new(0, 0, Arc::new(shapes::parallel_for(8, 2)))]);
    let cfg = SimConfig::new(3)
        .with_trace()
        .with_faults(FaultPlan::none().crash(1, 2));
    let (result, trace) = run_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 9);
    let trace = trace.expect("trace requested");
    let report = certify_run(&inst, &cfg, Some(StealPolicy::AdmitFirst), &result, &trace);
    assert!(report.skipped.is_some(), "{}", report.render());
    assert!(report.violation.is_none());
    assert!(!report.is_clean());
}

/// The report renders violations with full attribution (round, worker,
/// job, invariant code) for CI logs.
#[test]
fn report_rendering_names_the_locus() {
    let (inst, cfg, result, trace) = chain_baseline();
    let mut rows = trace.to_dense();
    rows.swap(0, 1);
    let mutated = ScheduleTrace::from_dense(trace.m, trace.speed, rows);
    let report = certify_run(
        &inst,
        &cfg,
        Some(StealPolicy::AdmitFirst),
        &result,
        &mutated,
    );
    let line = report.render();
    assert!(line.contains("VIOLATION"), "{line}");
    assert!(line.contains("P1 precedence"), "{line}");
    assert!(line.contains("round 0"), "{line}");
    assert!(line.contains("job 0"), "{line}");
    let clean = CertReport::default();
    assert!(clean.render().contains("clean"), "{}", clean.render());
}
