//! # parflow-certify
//!
//! Engine-independent certifier for recorded schedules. Every engine in
//! this workspace can emit a [`ScheduleTrace`] plus a [`SimResult`]; this
//! crate replays that pair against the instance and *machine-checks* the
//! feasibility model every competitive-ratio claim of AgrawalLLM16 (SPAA
//! 2016) is stated over — without trusting any engine state:
//!
//! | Invariant | Checked property |
//! |-----------|------------------|
//! | **P1 precedence** | no node receives a unit before its arrival or before every DAG predecessor completed in a strictly earlier round; every node receives exactly `work` units |
//! | **P2 capacity**   | every explicit round row covers exactly `m` processors; RLE idle spans never skip rounds in which an arrived job was incomplete; trace action counts equal the engine's reported counters |
//! | **P3 policy**     | admit-first never steals or idles past a non-empty global queue; steal-k-first admits only after `k` consecutive failed steals; FIFO admission order is respected |
//! | **P4 flow accounting** | every reported start/completion round, completion time and flow is recomputed exactly from the trace |
//! | **P5 lower bound** | at speed 1 the observed max flow dominates the independently recomputed `combined_lower_bound`; every job's flow dominates `span / speed` |
//!
//! The certifier stops at the **first** violation and reports it as a
//! structured [`Violation`] naming the round, worker, job and invariant,
//! so a failure always points at the root cause instead of the cascade
//! it produces downstream. Fault-injected runs are out of scope (the
//! feasibility model above is fault-free); certifying one yields a
//! [`CertReport::skipped`] reason, never a false violation.
//!
//! Policy conformance (P3) replays the global admission queue from the
//! trace alone: arrivals enter at round start, workers act in index
//! order, and an admission is the first-ever unit of work on a job. Two
//! engine behaviours are *not* reconstructable from a trace and are
//! deliberately unchecked: steal victim choice (the trace does not name
//! victims) and the free-steal-cost probe counter (free probes leave no
//! trace actions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;

use parflow_core::{
    combined_lower_bound, Action, AdmissionOrder, JobStatus, ScheduleTrace, SimConfig, SimResult,
    StealCost, StealPolicy, TraceSpan,
};
use parflow_dag::{Instance, JobId, NodeId};
use parflow_time::{Rational, Round, Speed};

/// The paper-level invariant a certifier finding violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Invariant {
    /// P1: precedence-respecting execution (arrivals, DAG order, exact
    /// unit counts).
    Precedence,
    /// P2: machine capacity (row width, idle-span consistency, counter
    /// cross-checks).
    Capacity,
    /// P3: scheduling-policy conformance (admit-first / steal-k-first /
    /// FIFO admission order).
    Policy,
    /// P4: reported flow accounting recomputed exactly from the trace.
    FlowAccounting,
    /// P5: observed max flow dominates the OPT lower bound
    /// `max(W/m, span)`.
    LowerBound,
}

impl Invariant {
    /// Short code used in diagnostics and docs ("P1".."P5").
    pub fn code(self) -> &'static str {
        match self {
            Invariant::Precedence => "P1",
            Invariant::Capacity => "P2",
            Invariant::Policy => "P3",
            Invariant::FlowAccounting => "P4",
            Invariant::LowerBound => "P5",
        }
    }

    /// Human-readable invariant name.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::Precedence => "precedence",
            Invariant::Capacity => "capacity",
            Invariant::Policy => "policy",
            Invariant::FlowAccounting => "flow-accounting",
            Invariant::LowerBound => "lower-bound",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One certified-schedule violation: the invariant plus every locus the
/// replay could attribute (absent fields mean "not applicable", e.g. a
/// stats mismatch has no single round).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Offending round, when the violation is localized in time.
    pub round: Option<Round>,
    /// Offending worker (processor index), when localized.
    pub worker: Option<usize>,
    /// Offending job, when localized.
    pub job: Option<JobId>,
    /// What exactly went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.invariant)?;
        if let Some(r) = self.round {
            write!(f, " round {r}")?;
        }
        if let Some(w) = self.worker {
            write!(f, " worker {w}")?;
        }
        if let Some(j) = self.job {
            write!(f, " job {j}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of one certification: at most one violation (the first
/// found, in replay order) plus coverage counters.
#[derive(Clone, Debug, Default)]
pub struct CertReport {
    /// The first violation found, `None` for a clean schedule.
    pub violation: Option<Violation>,
    /// Rounds replayed (busy rows plus RLE idle rounds).
    pub rounds: u64,
    /// Work units replayed.
    pub units: u64,
    /// Jobs whose accounting was cross-checked.
    pub jobs: usize,
    /// Set when the run was not certifiable (fault-injected traces are
    /// outside the fault-free feasibility model). A skipped report is
    /// *not* clean-by-default: callers decide how to treat it.
    pub skipped: Option<String>,
}

impl CertReport {
    /// True iff certification ran to completion and found nothing.
    pub fn is_clean(&self) -> bool {
        self.violation.is_none() && self.skipped.is_none()
    }

    /// One-line human rendering for CLI output and CI logs.
    pub fn render(&self) -> String {
        if let Some(reason) = &self.skipped {
            return format!("certify: skipped ({reason})");
        }
        match &self.violation {
            Some(v) => format!("certify: VIOLATION {v}"),
            None => format!(
                "certify: clean ({} rounds, {} units, {} jobs; P1-P5)",
                self.rounds, self.units, self.jobs
            ),
        }
    }
}

/// Per-(job, node) execution bookkeeping for the replay.
struct NodeLedger {
    /// Units executed so far, indexed `[job][node]`.
    executed: Vec<Vec<u64>>,
    /// Round in which the node received its final unit.
    completed_in: Vec<Vec<Option<Round>>>,
    /// Predecessor lists per job, built on first touch.
    preds: Vec<Option<Vec<Vec<NodeId>>>>,
}

impl NodeLedger {
    fn new(instance: &Instance) -> Self {
        let shape: Vec<usize> = instance.jobs().iter().map(|j| j.dag.num_nodes()).collect();
        NodeLedger {
            executed: shape.iter().map(|&n| vec![0; n]).collect(),
            completed_in: shape.iter().map(|&n| vec![None; n]).collect(),
            preds: vec![None; shape.len()],
        }
    }

    /// Predecessors of `node` within job `j` (computed from the CSR
    /// successor lists on first use).
    fn preds_of(&mut self, instance: &Instance, j: usize, node: NodeId) -> &[NodeId] {
        let dag = &instance.jobs()[j].dag;
        let preds = self.preds[j].get_or_insert_with(|| {
            let n = dag.num_nodes();
            let mut p = vec![Vec::new(); n];
            // lint: allow(truncating-cast) NodeId is u32; JobDag construction caps node count at u32 range
            for pid in 0..n as u32 {
                for &s in dag.succs(pid) {
                    p[s as usize].push(pid);
                }
            }
            p
        });
        &preds[node as usize]
    }
}

/// Shorthand for building a [`Violation`].
fn violation(
    invariant: Invariant,
    round: Option<Round>,
    worker: Option<usize>,
    job: Option<JobId>,
    message: String,
) -> Violation {
    Violation {
        invariant,
        round,
        worker,
        job,
        message,
    }
}

/// Full replay state for one certification.
struct Replay<'a> {
    instance: &'a Instance,
    speed: Speed,
    m: usize,
    policy: Option<StealPolicy>,
    unit_steals: bool,
    fifo_admission: bool,
    /// First round at which each job may execute (`arrival ≤ round start`).
    eligible: Vec<Round>,
    /// Next not-yet-released arrival index (jobs are arrival-sorted).
    next_release: usize,
    /// Released-but-unadmitted jobs, in release (= id) order.
    queue: VecDeque<JobId>,
    admitted: Vec<bool>,
    /// Remaining unexecuted units per job.
    remaining: Vec<u64>,
    /// Admitted jobs that still have unexecuted units.
    live_admitted: usize,
    /// Consecutive failed steal attempts per worker (unit-step replay).
    failed_steals: Vec<u64>,
    first_work: Vec<Option<Round>>,
    last_work: Vec<Option<Round>>,
    ledger: NodeLedger,
    // Action tallies for the P2 counter cross-check.
    work_units: u64,
    steal_actions: u64,
    steal_hits: u64,
    idle_units: u64,
    admissions: u64,
}

impl<'a> Replay<'a> {
    fn new(
        instance: &'a Instance,
        speed: Speed,
        m: usize,
        policy: Option<StealPolicy>,
        cfg: &SimConfig,
    ) -> Self {
        let jobs = instance.jobs();
        Replay {
            instance,
            speed,
            m,
            policy,
            unit_steals: matches!(cfg.steal_cost, StealCost::UnitStep),
            fifo_admission: matches!(cfg.admission, AdmissionOrder::Fifo),
            eligible: jobs
                .iter()
                .map(|j| speed.first_round_at_or_after(j.arrival))
                .collect(),
            next_release: 0,
            queue: VecDeque::new(),
            admitted: vec![false; jobs.len()],
            remaining: jobs.iter().map(|j| j.work()).collect(),
            live_admitted: 0,
            failed_steals: vec![0; m],
            first_work: vec![None; jobs.len()],
            last_work: vec![None; jobs.len()],
            ledger: NodeLedger::new(instance),
            work_units: 0,
            steal_actions: 0,
            steal_hits: 0,
            idle_units: 0,
            admissions: 0,
        }
    }

    /// Move every job whose first eligible round is ≤ `r` into the queue.
    fn release_arrivals(&mut self, r: Round) {
        let n = self.instance.len();
        while self.next_release < n && self.eligible[self.next_release] <= r {
            // lint: allow(truncating-cast) JobId is u32; dense instance ids are u32 by construction
            self.queue.push_back(self.next_release as JobId);
            self.next_release += 1;
        }
    }

    /// An RLE idle span covering rounds `[start, start + count)`. The
    /// engines only fast-forward when the system is fully drained, so an
    /// arrived-but-incomplete job anywhere inside the span breaks work
    /// conservation (P2): every scheduler in this workspace is greedy.
    fn idle_span(&mut self, start: Round, count: u64) -> Result<(), Violation> {
        self.release_arrivals(start);
        if self.live_admitted > 0 {
            let job = self
                .admitted
                .iter()
                .zip(&self.remaining)
                .position(|(&a, &rem)| a && rem > 0)
                // lint: allow(truncating-cast) JobId is u32; dense instance ids are u32 by construction
                .map(|j| j as JobId);
            return Err(violation(
                Invariant::Capacity,
                Some(start),
                None,
                job,
                format!("idle span of {count} rounds while an admitted job is incomplete"),
            ));
        }
        if let Some(&job) = self.queue.front() {
            return Err(violation(
                Invariant::Capacity,
                Some(start),
                None,
                Some(job),
                format!("idle span of {count} rounds while the global queue holds an arrived job"),
            ));
        }
        // Arrivals whose first eligible round falls strictly inside the
        // span: a greedy engine would have woken exactly at that round.
        if self.next_release < self.instance.len() {
            let j = self.next_release;
            if self.eligible[j] < start + count {
                return Err(violation(
                    Invariant::Capacity,
                    Some(self.eligible[j]),
                    None,
                    // lint: allow(truncating-cast) JobId is u32; dense instance ids are u32 by construction
                    Some(j as JobId),
                    "idle span covers a round in which a new job became eligible".to_string(),
                ));
            }
        }
        for c in &mut self.failed_steals {
            *c = c.saturating_add(count);
        }
        self.idle_units += count * self.m as u64;
        Ok(())
    }

    /// Record an admission of `job` by worker `p` at round `r` and check
    /// policy conformance.
    fn admit(&mut self, r: Round, p: usize, job: JobId) -> Result<(), Violation> {
        if let Some(policy) = self.policy {
            if self.fifo_admission {
                match self.queue.front() {
                    Some(&front) if front == job => {
                        self.queue.pop_front();
                    }
                    Some(&front) => {
                        return Err(violation(
                            Invariant::Policy,
                            Some(r),
                            Some(p),
                            Some(job),
                            format!("admitted out of FIFO order (queue front is job {front})"),
                        ));
                    }
                    None => {
                        return Err(violation(
                            Invariant::Policy,
                            Some(r),
                            Some(p),
                            Some(job),
                            "admitted from an empty global queue".to_string(),
                        ));
                    }
                }
            } else {
                match self.queue.iter().position(|&q| q == job) {
                    Some(pos) => {
                        self.queue.remove(pos);
                    }
                    None => {
                        return Err(violation(
                            Invariant::Policy,
                            Some(r),
                            Some(p),
                            Some(job),
                            "admitted a job that is not in the global queue".to_string(),
                        ));
                    }
                }
            }
            if self.unit_steals {
                if let StealPolicy::StealKFirst { k } = policy {
                    let c = self.failed_steals[p];
                    if c < k as u64 {
                        return Err(violation(
                            Invariant::Policy,
                            Some(r),
                            Some(p),
                            Some(job),
                            format!("admitted after {c} consecutive failed steals (policy requires {k})"),
                        ));
                    }
                }
            }
        } else if let Some(pos) = self.queue.iter().position(|&q| q == job) {
            // Centralized engines have no admission policy to conform to;
            // the queue only feeds the idle-span work-conservation check.
            self.queue.remove(pos);
        }
        self.admitted[job as usize] = true;
        self.live_admitted += 1;
        self.admissions += 1;
        self.first_work[job as usize] = Some(r);
        // The engine clears the failed-steal streak on admission.
        self.failed_steals[p] = 0;
        Ok(())
    }

    /// One unit of work on `(job, node)` by worker `p` at round `r`.
    fn work(
        &mut self,
        r: Round,
        p: usize,
        job: JobId,
        node: NodeId,
        this_round: &mut Vec<(JobId, NodeId)>,
    ) -> Result<(), Violation> {
        let j = job as usize;
        let jobs = self.instance.jobs();
        let Some(jref) = jobs.get(j) else {
            return Err(violation(
                Invariant::Precedence,
                Some(r),
                Some(p),
                Some(job),
                format!("work on unknown job (instance has {} jobs)", jobs.len()),
            ));
        };
        if (node as usize) >= jref.dag.num_nodes() {
            return Err(violation(
                Invariant::Precedence,
                Some(r),
                Some(p),
                Some(job),
                format!("work on unknown node {node}"),
            ));
        }
        if !self.speed.arrived_by_round(jref.arrival, r) {
            return Err(violation(
                Invariant::Precedence,
                Some(r),
                Some(p),
                Some(job),
                format!("executed before arrival at tick {}", jref.arrival),
            ));
        }
        if this_round.contains(&(job, node)) {
            return Err(violation(
                Invariant::Precedence,
                Some(r),
                Some(p),
                Some(job),
                format!("node {node} executed on two processors in the same round"),
            ));
        }
        this_round.push((job, node));
        if !self.admitted[j] {
            self.admit(r, p, job)?;
        }
        if self.ledger.executed[j][node as usize] == 0 {
            let arrival_round = r;
            for pi in 0..self.ledger.preds_of(self.instance, j, node).len() {
                let pid = self.ledger.preds_of(self.instance, j, node)[pi];
                match self.ledger.completed_in[j][pid as usize] {
                    Some(cr) if cr < arrival_round => {}
                    _ => {
                        return Err(violation(
                            Invariant::Precedence,
                            Some(r),
                            Some(p),
                            Some(job),
                            format!("node {node} ran before predecessor {pid} completed"),
                        ));
                    }
                }
            }
        }
        let units = &mut self.ledger.executed[j][node as usize];
        *units += 1;
        let w = jref.dag.work(node);
        if *units > w {
            return Err(violation(
                Invariant::Precedence,
                Some(r),
                Some(p),
                Some(job),
                format!("node {node} over-executed ({} units of {w})", *units),
            ));
        }
        if *units == w {
            self.ledger.completed_in[j][node as usize] = Some(r);
        }
        self.remaining[j] -= 1;
        if self.remaining[j] == 0 {
            self.live_admitted -= 1;
        }
        self.last_work[j] = Some(r);
        self.work_units += 1;
        // A failed-steal streak is *consecutive*: executing a unit of
        // work clears it (the engine resets the counter on every work
        // step, successful steal, and admission).
        self.failed_steals[p] = 0;
        Ok(())
    }

    /// One explicit busy row at round `r`.
    fn busy_row(&mut self, r: Round, row: &[Action]) -> Result<(), Violation> {
        if row.len() != self.m {
            return Err(violation(
                Invariant::Capacity,
                Some(r),
                None,
                None,
                format!(
                    "row covers {} processors, machine has {}",
                    row.len(),
                    self.m
                ),
            ));
        }
        self.release_arrivals(r);
        let mut this_round: Vec<(JobId, NodeId)> = Vec::new();
        for (p, action) in row.iter().enumerate() {
            match *action {
                Action::Work { job, node } => self.work(r, p, job, node, &mut this_round)?,
                Action::Admit { job } => {
                    let arrived = self
                        .instance
                        .jobs()
                        .get(job as usize)
                        .is_some_and(|j| self.speed.arrived_by_round(j.arrival, r));
                    if !arrived {
                        return Err(violation(
                            Invariant::Precedence,
                            Some(r),
                            Some(p),
                            Some(job),
                            "admitted before arrival".to_string(),
                        ));
                    }
                    if self.admitted[job as usize] {
                        return Err(violation(
                            Invariant::Policy,
                            Some(r),
                            Some(p),
                            Some(job),
                            "admitted twice".to_string(),
                        ));
                    }
                    self.admit(r, p, job)?;
                }
                Action::Steal { hit } => self.steal(r, p, hit)?,
                Action::Idle => self.idle_worker(r, p)?,
            }
        }
        Ok(())
    }

    /// A recorded steal attempt by worker `p` at round `r`.
    fn steal(&mut self, r: Round, p: usize, hit: bool) -> Result<(), Violation> {
        let Some(policy) = self.policy else {
            return Err(violation(
                Invariant::Policy,
                Some(r),
                Some(p),
                None,
                "steal action in a centralized trace".to_string(),
            ));
        };
        if !self.unit_steals {
            return Err(violation(
                Invariant::Policy,
                Some(r),
                Some(p),
                None,
                "steal action recorded under the free steal-cost model".to_string(),
            ));
        }
        if let Some(&front) = self.queue.front() {
            match policy {
                StealPolicy::AdmitFirst => {
                    return Err(violation(
                        Invariant::Policy,
                        Some(r),
                        Some(p),
                        Some(front),
                        "stole while the global queue is non-empty (admit-first)".to_string(),
                    ));
                }
                StealPolicy::StealKFirst { k } => {
                    let c = self.failed_steals[p];
                    if c >= k as u64 {
                        return Err(violation(
                            Invariant::Policy,
                            Some(r),
                            Some(p),
                            Some(front),
                            format!(
                                "stole with {c} ≥ k = {k} failed attempts while the queue is non-empty"
                            ),
                        ));
                    }
                }
            }
        }
        self.steal_actions += 1;
        if hit {
            self.steal_hits += 1;
            self.failed_steals[p] = 0;
        } else {
            self.failed_steals[p] = self.failed_steals[p].saturating_add(1);
        }
        Ok(())
    }

    /// A recorded idle by worker `p` at round `r` inside a busy row.
    fn idle_worker(&mut self, r: Round, p: usize) -> Result<(), Violation> {
        if self.policy.is_some() && !self.queue.is_empty() {
            // Under free steals (both policies) and unit-step admit-first
            // an idle-handed worker always reaches the admission attempt;
            // unit-step steal-k idles never occur (the worker steals), so
            // an idle there is only provably wrong past the k threshold.
            let must_admit = !self.unit_steals
                || match self.policy {
                    Some(StealPolicy::AdmitFirst) => true,
                    Some(StealPolicy::StealKFirst { k }) => self.failed_steals[p] >= k as u64,
                    None => false,
                };
            if must_admit {
                let front = self.queue.front().copied();
                return Err(violation(
                    Invariant::Policy,
                    Some(r),
                    Some(p),
                    front,
                    "worker idled while the global queue holds an admissible job".to_string(),
                ));
            }
        }
        self.idle_units += 1;
        Ok(())
    }
}

/// Certify a recorded run: replay `trace` against `instance` and
/// cross-check `result` (invariants P1-P5, stopping at the first
/// violation).
///
/// `policy` selects the P3 conformance model: `Some(_)` for
/// work-stealing traces (the policy the engine was run with), `None` for
/// centralized traces (which have no admission queue to conform to; P1,
/// P2, P4 and P5 still apply in full).
pub fn certify_run(
    instance: &Instance,
    cfg: &SimConfig,
    policy: Option<StealPolicy>,
    result: &SimResult,
    trace: &ScheduleTrace,
) -> CertReport {
    let mut report = CertReport {
        jobs: instance.len(),
        ..CertReport::default()
    };
    let stats = &result.stats;
    if !result.fault_events.is_empty()
        || stats.crashed_workers > 0
        || stats.injected_panics > 0
        || stats.faulted_steps > 0
        || stats.reinjected_tasks > 0
    {
        report.skipped =
            Some("fault-injected run: the fault-free feasibility model does not apply".to_string());
        return report;
    }
    // Configuration consistency: the three sources must agree before any
    // per-round arithmetic can be trusted.
    if trace.m != cfg.m || result.m != cfg.m {
        report.violation = Some(violation(
            Invariant::Capacity,
            None,
            None,
            None,
            format!(
                "machine-size mismatch: config m={}, trace m={}, result m={}",
                cfg.m, trace.m, result.m
            ),
        ));
        return report;
    }
    if trace.speed != cfg.speed || result.speed != cfg.speed {
        report.violation = Some(violation(
            Invariant::Capacity,
            None,
            None,
            None,
            format!(
                "speed mismatch: config {:?}, trace {:?}, result {:?}",
                cfg.speed, trace.speed, result.speed
            ),
        ));
        return report;
    }

    let speed = cfg.speed;
    let mut replay = Replay::new(instance, speed, cfg.m, policy, cfg);
    for (start, span) in trace.spans_with_rounds() {
        let step = match span {
            TraceSpan::Idle { count } => replay.idle_span(start, *count),
            TraceSpan::Busy(row) => replay.busy_row(start, row),
        };
        if let Err(v) = step {
            report.rounds = trace.num_rounds();
            report.units = replay.work_units;
            report.violation = Some(v);
            return report;
        }
    }
    report.rounds = trace.num_rounds();
    report.units = replay.work_units;

    // P1 completeness: every node of every job fully executed.
    for (j, job) in instance.jobs().iter().enumerate() {
        if replay.remaining[j] > 0 {
            let node = replay.ledger.executed[j]
                .iter()
                .enumerate()
                // lint: allow(truncating-cast) NodeId is u32; JobDag construction caps node count at u32 range
                .find(|(nid, &units)| units < job.dag.work(*nid as NodeId))
                // lint: allow(truncating-cast) NodeId is u32; JobDag construction caps node count at u32 range
                .map(|(nid, _)| nid as NodeId);
            report.violation = Some(violation(
                Invariant::Precedence,
                None,
                None,
                Some(job.id),
                format!(
                    "incomplete at end of trace: {} of {} units missing{}",
                    replay.remaining[j],
                    job.work(),
                    node.map(|n| format!(" (first short node: {n})"))
                        .unwrap_or_default()
                ),
            ));
            return report;
        }
    }

    // P2 counter cross-checks: trace tallies vs reported engine stats.
    let mut counter_checks: Vec<(&str, u64, u64)> = vec![
        ("work_steps", replay.work_units, stats.work_steps),
        ("idle_steps", replay.idle_units, stats.idle_steps),
    ];
    if policy.is_some() {
        counter_checks.push(("admissions", replay.admissions, stats.admissions));
        if replay.unit_steals {
            counter_checks.push(("steal_attempts", replay.steal_actions, stats.steal_attempts));
            counter_checks.push((
                "successful_steals",
                replay.steal_hits,
                stats.successful_steals,
            ));
        }
    }
    for (name, traced, reported) in counter_checks {
        if traced != reported {
            report.violation = Some(violation(
                Invariant::Capacity,
                None,
                None,
                None,
                format!("trace shows {traced} {name}, engine reported {reported}"),
            ));
            return report;
        }
    }

    // P4 flow accounting: recompute every outcome field from the trace.
    if result.outcomes.len() != instance.len() {
        report.violation = Some(violation(
            Invariant::FlowAccounting,
            None,
            None,
            None,
            format!(
                "{} outcomes reported for {} jobs",
                result.outcomes.len(),
                instance.len()
            ),
        ));
        return report;
    }
    if result.total_rounds != trace.num_rounds() {
        report.violation = Some(violation(
            Invariant::FlowAccounting,
            None,
            None,
            None,
            format!(
                "reported total_rounds {} but the trace covers {} rounds",
                result.total_rounds,
                trace.num_rounds()
            ),
        ));
        return report;
    }
    let mut max_flow = Rational::from_int(0);
    for (j, (job, outcome)) in instance.jobs().iter().zip(&result.outcomes).enumerate() {
        let fail = |message: String| -> Violation {
            violation(Invariant::FlowAccounting, None, None, Some(job.id), message)
        };
        if outcome.job != job.id || outcome.arrival != job.arrival || outcome.weight != job.weight {
            report.violation = Some(fail(format!(
                "outcome identity mismatch (job {} arrival {} weight {})",
                outcome.job, outcome.arrival, outcome.weight
            )));
            return report;
        }
        if outcome.status != JobStatus::Completed {
            report.violation = Some(fail(format!(
                "fault-free run reported non-completed status {:?}",
                outcome.status
            )));
            return report;
        }
        let (Some(first), Some(last)) = (replay.first_work[j], replay.last_work[j]) else {
            // Unreachable: completeness above guarantees ≥ 1 unit ran.
            report.violation = Some(fail("job has no work in the trace".to_string()));
            return report;
        };
        if outcome.start_round != first {
            report.violation = Some(fail(format!(
                "reported start_round {} but first trace work is in round {first}",
                outcome.start_round
            )));
            return report;
        }
        if outcome.completion_round != last {
            report.violation = Some(fail(format!(
                "reported completion_round {} but last trace work is in round {last}",
                outcome.completion_round
            )));
            return report;
        }
        let completion = speed.round_end(last);
        if outcome.completion != completion {
            report.violation = Some(fail(format!(
                "reported completion {:?} but round {last} ends at {completion:?}",
                outcome.completion
            )));
            return report;
        }
        let flow = speed.flow_time(job.arrival, last);
        if outcome.flow != flow {
            report.violation = Some(fail(format!(
                "reported flow {:?} but the trace yields {flow:?}",
                outcome.flow
            )));
            return report;
        }
        if flow > max_flow {
            max_flow = flow;
        }
    }

    // P5 lower-bound sanity. Per job: a span of `P_i` units serializes
    // over ≥ P_i rounds, so F_i ≥ P_i / s at any speed s. Globally at
    // speed 1: no schedule beats OPT's own lower bound max(W/m, span).
    for (j, job) in instance.jobs().iter().enumerate() {
        let span_bound = Rational::new(
            job.span() as i128 * speed.den() as i128,
            speed.num() as i128,
        );
        let flow = result.outcomes[j].flow;
        if flow < span_bound {
            report.violation = Some(violation(
                Invariant::LowerBound,
                None,
                None,
                Some(job.id),
                format!(
                    "flow {:?} beats the span bound {span_bound:?} (span {} at speed {}/{})",
                    flow,
                    job.span(),
                    speed.num(),
                    speed.den()
                ),
            ));
            return report;
        }
    }
    if speed == Speed::ONE && !instance.is_empty() {
        let bound = combined_lower_bound(instance, cfg.m);
        if max_flow < bound {
            report.violation = Some(violation(
                Invariant::LowerBound,
                None,
                None,
                None,
                format!("observed max flow {max_flow:?} beats the OPT lower bound {bound:?}"),
            ));
            return report;
        }
    }
    report
}

/// P5-only certification for streaming runs, where no trace is retained:
/// at speed 1 the exact streamed max flow must dominate the incremental
/// OPT lower bound computed over the same arrivals.
///
/// Speed-augmented runs are vacuously clean here (the bound constrains
/// the speed-1 adversary, which an augmented schedule may legitimately
/// beat); materialized certification covers those paths in full.
pub fn certify_stream_summary(
    speed: Speed,
    jobs: u64,
    max_flow: Rational,
    opt_bound: Rational,
) -> CertReport {
    let mut report = CertReport {
        jobs: jobs as usize,
        ..CertReport::default()
    };
    if jobs > 0 && speed == Speed::ONE && max_flow < opt_bound {
        report.violation = Some(violation(
            Invariant::LowerBound,
            None,
            None,
            None,
            format!("streamed max flow {max_flow:?} beats the OPT lower bound {opt_bound:?}"),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use parflow_core::{run_priority, run_worksteal, Fifo};
    use parflow_dag::{shapes, Job};
    use std::sync::Arc;

    fn two_job_instance() -> Instance {
        Instance::new(vec![
            Job::new(0, 0, Arc::new(shapes::chain(3, 1))),
            Job::new(1, 2, Arc::new(shapes::fork_join(2, 2))),
        ])
    }

    #[test]
    fn worksteal_run_certifies_clean() {
        let inst = two_job_instance();
        let cfg = SimConfig::new(2).with_trace();
        let (result, trace) = run_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 7);
        let trace = trace.expect("trace recording was requested");
        let report = certify_run(&inst, &cfg, Some(StealPolicy::AdmitFirst), &result, &trace);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.jobs, 2);
        assert!(report.units > 0);
    }

    #[test]
    fn fifo_run_certifies_clean() {
        let inst = two_job_instance();
        let cfg = SimConfig::new(2).with_trace();
        let (result, trace) = run_priority(&inst, &cfg, &Fifo);
        let trace = trace.expect("trace recording was requested");
        let report = certify_run(&inst, &cfg, None, &result, &trace);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn stream_summary_bound_violation_is_p5() {
        let report =
            certify_stream_summary(Speed::ONE, 10, Rational::from_int(3), Rational::from_int(5));
        let v = report.violation.expect("3 < 5 must violate P5");
        assert_eq!(v.invariant, Invariant::LowerBound);
        assert!(certify_stream_summary(
            Speed::ONE,
            10,
            Rational::from_int(5),
            Rational::from_int(5)
        )
        .is_clean());
        // Augmented runs may beat the speed-1 bound.
        assert!(certify_stream_summary(
            Speed::new(3, 2),
            10,
            Rational::from_int(3),
            Rational::from_int(5)
        )
        .is_clean());
    }
}
