//! `parflow-certify` — certify recorded schedules from the command line.
//!
//! Three modes, all exiting non-zero on a violation so CI can gate on
//! them:
//!
//! * `golden` — replay the built-in golden suite (deterministic
//!   instances × engines × policies × speeds) and certify every trace;
//! * `cell` — generate one sweep-style workload cell and certify a full
//!   traced run of it (the sweep's own `--certify` does the same check
//!   in-process; this mode spot-checks the pipeline from the outside);
//! * `stream-summary FILE` — P5-check the text summary of a streaming
//!   run (`exec --stream` output): the reported max flow must dominate
//!   the live OPT bound. Values in the summary are rounded to 0.01 ms,
//!   so the comparison carries a half-ULP tolerance; the exact in-process
//!   check is `exec --stream --certify on`.

use std::process::ExitCode;

use parflow_certify::{certify_run, CertReport};
use parflow_core::{run_priority, run_worksteal, Fifo, SimConfig, StealPolicy};
use parflow_dag::{shapes, Instance, Job};
use parflow_time::Speed;
use parflow_workloads::{qps_for_utilization, DistKind, ShapeKind, WorkloadSpec};
use std::sync::Arc;

const USAGE: &str = "usage: parflow-certify <mode> [flags]

modes:
  golden
      certify the built-in golden suite: deterministic instances run
      through the centralized and work-stealing engines across policies,
      steal-cost models and speeds
  cell --dist bing|finance|lognormal --util F --m N --jobs N --seed S
       --policy fifo|admit|steal:K [--eps A/B]
      generate one sweep-style cell (ParallelFor shape, Poisson arrivals,
      free steals — the sweep's own engine configuration) and certify a
      traced run of it
  stream-summary FILE
      P5-check the `exec --stream` text summary in FILE: reported max
      flow must dominate the live OPT bound (tolerance: the summary's
      0.01 ms rounding)

exit status: 0 clean, 1 violation, 2 usage/input error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("golden") => golden(),
        Some("cell") => cell(&args[1..]),
        Some("stream-summary") => stream_summary(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => Err(format!("missing or unknown mode\n{USAGE}")),
    };
    match result {
        Ok(reports) => {
            let mut clean = true;
            for (label, report) in &reports {
                println!("{label}: {}", report.render());
                clean &= report.is_clean();
            }
            if clean {
                println!("parflow-certify: {} run(s), all clean", reports.len());
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("parflow-certify: {e}");
            ExitCode::from(2)
        }
    }
}

/// The deterministic golden instances: mixed DAG shapes, staggered
/// arrivals, weights — small enough to replay in milliseconds, varied
/// enough to exercise every invariant path.
fn golden_instances() -> Vec<(&'static str, Instance)> {
    let mixed = Instance::new(vec![
        Job::new(0, 0, Arc::new(shapes::chain(4, 2))),
        Job::new(1, 1, Arc::new(shapes::fork_join(3, 2))),
        Job::weighted(2, 7, 3, Arc::new(shapes::parallel_for(12, 3))),
        Job::new(3, 40, Arc::new(shapes::single_node(6))),
    ]);
    let bursty = Instance::new(
        (0..12u32)
            .map(|i| {
                let arrival = (i / 4) as u64 * 25;
                Job::new(i, arrival, Arc::new(shapes::chain(3, 1)))
            })
            .collect(),
    );
    let generated = WorkloadSpec {
        dist: DistKind::Bing,
        shape: ShapeKind::ParallelFor { grain: 10 },
        qps: Some(qps_for_utilization(DistKind::Bing, 4, 0.7)),
        period_ticks: 0,
        n_jobs: 120,
        seed: 0x90_1d_e4,
    }
    .generate();
    vec![
        ("mixed", mixed),
        ("bursty", bursty),
        ("bing-0.7", generated),
    ]
}

/// Certify one traced run of every golden (instance × engine × policy ×
/// steal-cost × speed) combination.
fn golden() -> Result<Vec<(String, CertReport)>, String> {
    let mut reports = Vec::new();
    for (name, inst) in golden_instances() {
        for &m in &[2usize, 4] {
            for &speed in &[Speed::ONE, Speed::new(3, 2)] {
                let fifo_cfg = SimConfig::new(m).with_speed(speed).with_trace();
                let (result, trace) = run_priority(&inst, &fifo_cfg, &Fifo);
                reports.push((
                    format!("golden {name} m={m} s={}/{} fifo", speed.num(), speed.den()),
                    certify_trace(&inst, &fifo_cfg, None, &result, trace)?,
                ));
                for policy in [StealPolicy::AdmitFirst, StealPolicy::StealKFirst { k: 3 }] {
                    for free in [false, true] {
                        let mut cfg = SimConfig::new(m).with_speed(speed).with_trace();
                        if free {
                            cfg = cfg.with_free_steals();
                        }
                        let (result, trace) = run_worksteal(&inst, &cfg, policy, 0xC0FFEE);
                        reports.push((
                            format!(
                                "golden {name} m={m} s={}/{} {} steals={}",
                                speed.num(),
                                speed.den(),
                                match policy {
                                    StealPolicy::AdmitFirst => "admit".to_string(),
                                    StealPolicy::StealKFirst { k } => format!("steal:{k}"),
                                },
                                if free { "free" } else { "unit" },
                            ),
                            certify_trace(&inst, &cfg, Some(policy), &result, trace)?,
                        ));
                    }
                }
            }
        }
    }
    Ok(reports)
}

fn certify_trace(
    inst: &Instance,
    cfg: &SimConfig,
    policy: Option<StealPolicy>,
    result: &parflow_core::SimResult,
    trace: Option<parflow_core::ScheduleTrace>,
) -> Result<CertReport, String> {
    let trace = trace.ok_or_else(|| "engine did not record a trace".to_string())?;
    Ok(certify_run(inst, cfg, policy, result, &trace))
}

/// `cell` mode: mirror the sweep's materialized per-cell configuration
/// (ParallelFor grain 10, Poisson arrivals at a target utilization, free
/// steals) and certify a traced run.
fn cell(args: &[String]) -> Result<Vec<(String, CertReport)>, String> {
    let mut dist = DistKind::Bing;
    let mut util = 0.6f64;
    let mut m = 2usize;
    let mut jobs = 200usize;
    let mut seed = 42u64;
    let mut policy = "admit".to_string();
    let mut eps: Option<(u64, u64)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--dist" => {
                dist = match value("--dist")?.as_str() {
                    "bing" => DistKind::Bing,
                    "finance" => DistKind::Finance,
                    "lognormal" => DistKind::LogNormal,
                    other => return Err(format!("unknown dist `{other}`")),
                };
            }
            "--util" => {
                util = value("--util")?
                    .parse()
                    .map_err(|_| "--util wants a number".to_string())?;
            }
            "--m" => {
                m = value("--m")?
                    .parse()
                    .map_err(|_| "--m wants a positive integer".to_string())?;
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs wants a positive integer".to_string())?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants an integer".to_string())?;
            }
            "--policy" => policy = value("--policy")?,
            "--eps" => {
                let v = value("--eps")?;
                let (a, b) = v
                    .split_once('/')
                    .ok_or_else(|| "--eps wants A/B".to_string())?;
                eps = Some((
                    a.parse().map_err(|_| "--eps wants A/B".to_string())?,
                    b.parse().map_err(|_| "--eps wants A/B".to_string())?,
                ));
            }
            other => return Err(format!("unknown cell flag `{other}`\n{USAGE}")),
        }
    }
    // NaN must be rejected too, so compare through partial_cmp.
    if m == 0 || jobs == 0 || util.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err("cell wants --m >= 1, --jobs >= 1, --util > 0".to_string());
    }
    let speed = match eps {
        // Speed 1 + ε as the reduced fraction (den + num·ε) / den.
        Some((num, den)) => Speed::new(den + num, den),
        None => Speed::ONE,
    };
    let spec = WorkloadSpec {
        dist,
        shape: ShapeKind::ParallelFor { grain: 10 },
        qps: Some(qps_for_utilization(dist, m, util)),
        period_ticks: 0,
        n_jobs: jobs,
        seed,
    };
    let inst = spec.generate();
    let label = format!("cell util={util} m={m} jobs={jobs} policy={policy}");
    let report = match policy.as_str() {
        "fifo" => {
            let cfg = SimConfig::new(m).with_speed(speed).with_trace();
            let (result, trace) = run_priority(&inst, &cfg, &Fifo);
            certify_trace(&inst, &cfg, None, &result, trace)?
        }
        other => {
            let steal = match other {
                "admit" => StealPolicy::AdmitFirst,
                _ => match other.strip_prefix("steal:").and_then(|k| k.parse().ok()) {
                    Some(0) => StealPolicy::AdmitFirst,
                    Some(k) => StealPolicy::StealKFirst { k },
                    None => {
                        return Err(format!(
                            "unknown policy `{other}` (want fifo|admit|steal:K)"
                        ))
                    }
                },
            };
            let cfg = SimConfig::new(m)
                .with_speed(speed)
                .with_free_steals()
                .with_trace();
            let (result, trace) = run_worksteal(&inst, &cfg, steal, seed);
            certify_trace(&inst, &cfg, Some(steal), &result, trace)?
        }
    };
    Ok(vec![(label, report)])
}

/// `stream-summary` mode: extract "max flow X ms" and "live OPT bound
/// Y ms" from an `exec --stream` summary and require X ≥ Y − tolerance,
/// where the tolerance covers the summary's two-decimal rounding.
fn stream_summary(args: &[String]) -> Result<Vec<(String, CertReport)>, String> {
    let path = args
        .first()
        .ok_or_else(|| format!("stream-summary needs a file\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let max_flow = leading_number_after(&text, "max flow ")
        .ok_or_else(|| format!("no `max flow X ms` line in `{path}`"))?;
    let opt = leading_number_after(&text, "live OPT bound ")
        .ok_or_else(|| format!("no `live OPT bound X ms` line in `{path}`"))?;
    // Both values were rounded to 0.01 ms independently; only a gap the
    // rounding cannot explain is a genuine P5 violation.
    let tolerance = 0.011;
    let mut report = CertReport::default();
    if opt - max_flow > tolerance {
        report.violation = Some(parflow_certify::Violation {
            invariant: parflow_certify::Invariant::LowerBound,
            round: None,
            worker: None,
            job: None,
            message: format!("summary max flow {max_flow} ms beats the live OPT bound {opt} ms"),
        });
    }
    Ok(vec![(format!("stream-summary {path}"), report)])
}

/// The first `f64` right after `needle` in `text` (e.g. `"max flow "` →
/// `12.34` from `"max flow 12.34 ms"`).
fn leading_number_after(text: &str, needle: &str) -> Option<f64> {
    let idx = text.find(needle)? + needle.len();
    let rest = &text[idx..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
