//! Loom models of the executor's synchronization protocols.
//!
//! Each test is an executable translation of an invariant from the TLA+
//! `WorkStealing` specification (see `docs/STATIC_ANALYSIS.md` for the
//! full correspondence table):
//!
//! * **W1 (no lost tasks)** — every admitted task is executed or still
//!   queued: the injector admission model, the crash-purge/orphan model,
//!   and the terminal-state latch (a run is declared done only when every
//!   completion is visible);
//! * **W2 (no double execution)** — a task is executed by at most one
//!   worker: the steal-claim model and the absorbing terminal-state model
//!   (completed/aborted are set exactly once, never overwritten);
//! * **W6 (bounded stealing)** — steal-k-first admits after exactly `k`
//!   consecutive failed steal attempts, never more.
//!
//! The models are deliberately small (loom explores every interleaving;
//! 2–3 threads is the tractable regime) and mirror the protocol shape of
//! `src/executor.rs` — the same atomics, the same orderings, the same
//! decision structure — not its full data plane.
//!
//! ## Two execution modes
//!
//! * `RUSTFLAGS="--cfg loom" cargo test -p parflow-runtime --test
//!   loom_models` — the real loom crate exhaustively model-checks every
//!   interleaving (CI's loom job; offline the loom stub stress-runs).
//! * plain `cargo test` — the inline harness below re-runs each model
//!   `STRESS_ITERS` times on std primitives, so the models are exercised
//!   on every tier-1 test run without any special flags.

#[cfg(loom)]
use loom::{
    model,
    sync::{
        atomic::{AtomicBool, AtomicUsize, Ordering},
        Arc, Mutex,
    },
    thread,
};

#[cfg(not(loom))]
use std::{
    sync::{
        atomic::{AtomicBool, AtomicUsize, Ordering},
        Arc, Mutex,
    },
    thread,
};

/// Iterations per model when running as a std stress test (plain
/// `cargo test`). Under loom this path is compiled out.
#[cfg(not(loom))]
const STRESS_ITERS: usize = 200;

/// Stand-in for `loom::model` on the std path: rerun the closure under
/// the OS scheduler. Assertion failures still fail the test; they just
/// lack loom's minimal-trace shrinking.
#[cfg(not(loom))]
fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..STRESS_ITERS {
        f();
    }
}

/// Job terminal states, as in `JobStatus` (0 = running is the only
/// non-terminal state in these models).
const RUNNING: usize = 0;
const COMPLETED: usize = 1;
const ABORTED: usize = 2;

/// W1 — terminal-state latch: the worker that completes the last job
/// increments the completion counter *before* setting the `done` flag
/// (AcqRel increment, Release store), so any thread that observes
/// `done == true` (Acquire) also observes every completion.
///
/// This is the latch `Shared::completed` / `Shared::done` in
/// `src/executor.rs`: the run-loop exit and the final result assembly
/// both trust `done` to imply "all jobs accounted".
#[test]
fn terminal_latch_completion_visible() {
    model(|| {
        const TOTAL: usize = 2;
        let completed = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicBool::new(false));

        let workers: Vec<_> = (0..TOTAL)
            .map(|_| {
                let completed = completed.clone();
                let done = done.clone();
                thread::spawn(move || {
                    // Finish one job: count it, then latch if it was the last.
                    let now = completed.fetch_add(1, Ordering::AcqRel) + 1;
                    if now == TOTAL {
                        done.store(true, Ordering::Release);
                    }
                })
            })
            .collect();

        // Concurrent observer (the main thread): done implies every
        // completion is visible — the heart of the latch.
        if done.load(Ordering::Acquire) {
            assert_eq!(
                completed.load(Ordering::Acquire),
                TOTAL,
                "done observed before all completions were visible"
            );
        }

        for w in workers {
            w.join().unwrap();
        }
        assert!(done.load(Ordering::Acquire), "latch never fired");
        assert_eq!(completed.load(Ordering::Acquire), TOTAL);
    });
}

/// Regression pin for the latch ordering (satellite of
/// [`terminal_latch_completion_visible`]): a dedicated observer *thread*
/// races the final completion. If the `done` store were weakened to
/// `Relaxed` (or the counter increment to `Relaxed`), loom finds an
/// interleaving where the observer sees `done` without the final count;
/// this test pins the Release/Acquire pairing against that edit.
#[test]
fn regression_terminal_latch_release_acquire() {
    model(|| {
        const TOTAL: usize = 2;
        // One job already completed; the spawned worker finishes the last.
        let completed = Arc::new(AtomicUsize::new(TOTAL - 1));
        let done = Arc::new(AtomicBool::new(false));

        let worker = {
            let completed = completed.clone();
            let done = done.clone();
            thread::spawn(move || {
                let now = completed.fetch_add(1, Ordering::AcqRel) + 1;
                if now == TOTAL {
                    done.store(true, Ordering::Release);
                }
            })
        };
        let observer = {
            let completed = completed.clone();
            let done = done.clone();
            thread::spawn(move || {
                if done.load(Ordering::Acquire) {
                    assert_eq!(completed.load(Ordering::Acquire), TOTAL);
                }
            })
        };

        worker.join().unwrap();
        observer.join().unwrap();
    });
}

/// W1 — injector admission loses no tasks: both workers push their task
/// into the shared admission queue, then drain it to empty. Exclusive
/// pops mean every pushed task is executed exactly once, regardless of
/// which worker drains it.
///
/// Mirrors the `Injector` admission path: `try_run_workload` seeds the
/// injector, workers pop-or-steal until the latch fires.
#[test]
fn injector_admission_no_lost_tasks() {
    model(|| {
        let injector: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let executed = Arc::new(AtomicUsize::new(0));

        let workers: Vec<_> = (0..2)
            .map(|id| {
                let injector = injector.clone();
                let executed = executed.clone();
                thread::spawn(move || {
                    injector.lock().unwrap().push(id);
                    // Drain until observed empty; each pop is exclusive.
                    loop {
                        let task = injector.lock().unwrap().pop();
                        match task {
                            Some(_) => {
                                executed.fetch_add(1, Ordering::AcqRel);
                            }
                            None => break,
                        }
                    }
                })
            })
            .collect();

        for w in workers {
            w.join().unwrap();
        }
        // No lost tasks, no duplicated tasks: exactly the 2 pushed.
        assert_eq!(executed.load(Ordering::Acquire), 2);
        assert!(injector.lock().unwrap().is_empty());
    });
}

/// W2 — no double execution: two thieves race to claim one task with a
/// compare-exchange; exactly one wins and executes it.
///
/// Mirrors the steal path: a chunk task is owned by whoever dequeues it,
/// and crossbeam's `Steal::Success` is the claim. The model reduces that
/// ownership transfer to its essential CAS.
#[test]
fn steal_claim_single_winner() {
    model(|| {
        let claimed = Arc::new(AtomicBool::new(false));
        let executions = Arc::new(AtomicUsize::new(0));

        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let claimed = claimed.clone();
                let executions = executions.clone();
                thread::spawn(move || {
                    if claimed
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        executions.fetch_add(1, Ordering::AcqRel);
                    }
                })
            })
            .collect();

        for t in thieves {
            t.join().unwrap();
        }
        assert_eq!(
            executions.load(Ordering::Acquire),
            1,
            "a task must be executed by exactly one worker"
        );
    });
}

/// W2 — terminal states are absorbing: a job's completion (worker) and
/// abort (watchdog) race through compare-exchange from RUNNING; exactly
/// one terminal state wins and is never overwritten.
///
/// Mirrors the `JobStatus` latch in `src/task.rs`: `finish_chunk` /
/// `fail` / the watchdog's abort sweep all CAS from the running state,
/// so a completed job can never be re-marked aborted (and vice versa).
#[test]
fn terminal_state_absorbing() {
    model(|| {
        let status = Arc::new(AtomicUsize::new(RUNNING));

        let worker = {
            let status = status.clone();
            thread::spawn(move || {
                status
                    .compare_exchange(RUNNING, COMPLETED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            })
        };
        let watchdog = {
            let status = status.clone();
            thread::spawn(move || {
                status
                    .compare_exchange(RUNNING, ABORTED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            })
        };

        let worker_won = worker.join().unwrap();
        let watchdog_won = watchdog.join().unwrap();
        assert!(
            worker_won ^ watchdog_won,
            "exactly one terminal transition must win"
        );
        let terminal = status.load(Ordering::Acquire);
        assert_eq!(
            terminal,
            if worker_won { COMPLETED } else { ABORTED },
            "the winning terminal state must persist"
        );
    });
}

/// No-progress watchdog: the watchdog compares two snapshots of the
/// progress counter and fires only when they are equal *and* jobs are
/// outstanding. Firing is advisory — the abort still goes through the
/// absorbing terminal CAS, so a completion that lands between the
/// watchdog's decision and its sweep wins and stays COMPLETED.
///
/// Mirrors `src/executor.rs`: the watchdog thread snapshots
/// `tasks_executed`+`admissions`, sleeps, re-snapshots, and aborts only
/// on a stable snapshot with outstanding jobs; job status transitions
/// stay CAS-guarded either way.
#[test]
fn watchdog_snapshot_and_cas_resolution() {
    model(|| {
        let progress = Arc::new(AtomicUsize::new(0));
        let status = Arc::new(AtomicUsize::new(RUNNING));

        let worker = {
            let progress = progress.clone();
            let status = status.clone();
            thread::spawn(move || {
                progress.fetch_add(1, Ordering::AcqRel);
                status
                    .compare_exchange(RUNNING, COMPLETED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            })
        };
        let watchdog = {
            let progress = progress.clone();
            let status = status.clone();
            thread::spawn(move || {
                let snap1 = progress.load(Ordering::Acquire);
                thread::yield_now();
                let snap2 = progress.load(Ordering::Acquire);
                let outstanding = status.load(Ordering::Acquire) == RUNNING;
                let fired = snap1 == snap2 && outstanding;
                let aborted = fired
                    && status
                        .compare_exchange(RUNNING, ABORTED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                (snap1, snap2, aborted)
            })
        };

        let worker_won = worker.join().unwrap();
        let (snap1, snap2, watchdog_aborted) = watchdog.join().unwrap();
        // The watchdog never aborts after observing progress between its
        // snapshots...
        if snap2 != snap1 {
            assert!(!watchdog_aborted, "abort despite observed progress");
        }
        // ...and whatever raced, the job ended in exactly one terminal
        // state that matches the winning transition.
        assert!(worker_won ^ watchdog_aborted);
        let terminal = status.load(Ordering::Acquire);
        assert_eq!(terminal, if worker_won { COMPLETED } else { ABORTED });
        assert_ne!(terminal, RUNNING, "the job must reach a terminal state");
    });
}

/// W1 under crashes — crash-purge preserves tasks: a crashing worker
/// drains its private deque into the shared orphan queue; a survivor
/// adopts and executes the orphans. Every task the crashed worker held
/// is executed exactly once by the survivor; none are lost.
///
/// Mirrors the executor's crash path: a `FaultKind::Crash` worker moves
/// its remaining chunk tasks into `Shared::orphans`, and live workers
/// poll the orphan queue before declaring quiescence.
#[test]
fn crash_purge_preserves_tasks() {
    model(|| {
        const HELD: usize = 2;
        let orphans: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let purged = Arc::new(AtomicBool::new(false));
        let executed = Arc::new(AtomicUsize::new(0));

        let crasher = {
            let orphans = orphans.clone();
            let purged = purged.clone();
            thread::spawn(move || {
                // Crash: drain the private deque into the orphan queue,
                // then (Release) publish that purging is finished.
                let mut q = orphans.lock().unwrap();
                for task in 0..HELD {
                    q.push(task);
                }
                drop(q);
                purged.store(true, Ordering::Release);
            })
        };
        let survivor = {
            let orphans = orphans.clone();
            let purged = purged.clone();
            let executed = executed.clone();
            thread::spawn(move || {
                // Adopt until the purge is published AND the queue is
                // observed empty afterwards (the executor's quiescence
                // check orders the flag read before the final drain).
                loop {
                    while let Some(_task) = { orphans.lock().unwrap().pop() } {
                        executed.fetch_add(1, Ordering::AcqRel);
                    }
                    if purged.load(Ordering::Acquire) && orphans.lock().unwrap().is_empty() {
                        break;
                    }
                    thread::yield_now();
                }
            })
        };

        crasher.join().unwrap();
        survivor.join().unwrap();
        assert_eq!(
            executed.load(Ordering::Acquire),
            HELD,
            "every task held by the crashed worker must be adopted exactly once"
        );
        assert!(orphans.lock().unwrap().is_empty());
    });
}

/// W6 — bounded stealing: under steal-k-first a worker admits from the
/// global queue only after exactly `k` consecutive failed steal attempts,
/// and its failure counter never exceeds `k`.
///
/// Mirrors the policy loop in `src/executor.rs` (`RtPolicy::StealKFirst`):
/// the thief probes an empty victim, counts failures, and admits at the
/// threshold; a successful steal resets the counter.
#[test]
fn steal_k_first_bounded() {
    model(|| {
        const K: usize = 3;
        // Victim deque with one task; whether the thief's first probe
        // hits it depends on the interleaving with the victim's own pop.
        let victim: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![0]));

        let owner = {
            let victim = victim.clone();
            thread::spawn(move || {
                // The owner may pop its own task first.
                victim.lock().unwrap().pop();
            })
        };
        let thief = {
            let victim = victim.clone();
            thread::spawn(move || {
                let mut fails = 0usize;
                let mut admissions = 0usize;
                let mut max_fails = 0usize;
                let mut stolen = 0usize;
                while admissions == 0 {
                    match victim.lock().unwrap().pop() {
                        Some(_) => {
                            stolen += 1;
                            fails = 0;
                        }
                        None => {
                            fails += 1;
                            max_fails = max_fails.max(fails);
                            if fails == K {
                                admissions += 1;
                                fails = 0;
                            }
                        }
                    }
                }
                (max_fails, stolen, admissions)
            })
        };

        owner.join().unwrap();
        let (max_fails, stolen, admissions) = thief.join().unwrap();
        assert!(max_fails <= K, "failed-steal streak exceeded k");
        assert_eq!(admissions, 1, "the thief must fall back to admission");
        assert!(stolen <= 1, "at most the single task can be stolen");
    });
}
