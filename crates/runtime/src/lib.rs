//! # parflow-runtime
//!
//! A real multithreaded work-stealing runtime with a global FIFO admission
//! queue — the systems-level counterpart of the paper's extended-TBB
//! implementation (Section 6). Workers own crossbeam deques, steal from
//! random victims, and admit jobs under either the **admit-first** or
//! **steal-k-first** policy. Jobs are CPU-bound parallel-for loops; flow
//! times are measured with wall-clock instants.
//!
//! Use [`run_workload`] with a list of `(arrival offset, JobSpec)` pairs:
//!
//! ```
//! use parflow_runtime::{run_workload, JobSpec, RtPolicy, RuntimeConfig};
//! use std::time::Duration;
//!
//! let cfg = RuntimeConfig::new(2, RtPolicy::StealKFirst { k: 4 });
//! let workload = vec![
//!     (Duration::ZERO, JobSpec::split(20_000, 4)),
//!     (Duration::from_micros(50), JobSpec::split(20_000, 4)),
//! ];
//! let result = run_workload(&cfg, &workload);
//! assert_eq!(result.jobs.len(), 2);
//! assert!(result.max_flow() > Duration::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod task;

pub use executor::{
    run_workload, try_run_workload, FailedRun, RtJobResult, RtPolicy, RtWorkerStats, RuntimeConfig,
    RuntimeError, RuntimeResult, RuntimeStats, NS_PER_TICK,
};
pub use task::{spin_kernel, JobShape, JobSpec, JobState, Task, TaskKind};

// Fault-injection vocabulary shared with the simulator, re-exported so
// runtime users do not need a direct parflow-core dependency.
pub use parflow_core::{FaultEvent, FaultKind, FaultPlan, JobStatus};
