//! Runtime jobs and tasks.
//!
//! A runtime job mirrors the paper's empirical setup: CPU-intensive work
//! parallelized with a parallel-for loop. On admission the job fans out
//! into `chunks` independent chunk tasks; the job completes when the last
//! chunk finishes. Work is measured in *iterations* of a deterministic
//! spin kernel so results do not depend on clock resolution.

use parflow_core::JobStatus;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// How a job's work is structured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobShape {
    /// A flat parallel-for: all chunks are pushed at admission.
    Flat,
    /// A recursive binary fork-join of the given depth: admission pushes
    /// one spawn task; each spawn task pushes two children (spawns until
    /// depth 0, then chunks). Produces `2^depth` leaf chunks and exercises
    /// deep deque nesting exactly like divide-and-conquer programs.
    ForkJoin {
        /// Recursion depth (`2^depth` leaves).
        depth: u32,
    },
    /// A flat job whose every chunk deliberately panics — the test fixture
    /// for the executor's panic isolation. The first executed chunk fails
    /// the whole job.
    Poison,
}

/// Specification of one job submitted to the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Number of parallel-for chunks (leaves for fork-join).
    pub chunks: usize,
    /// Spin-kernel iterations per chunk.
    pub iters_per_chunk: u64,
    /// Structure of the job.
    pub shape: JobShape,
}

impl JobSpec {
    /// A flat job with `total_iters` of work split into `chunks` chunks.
    pub fn split(total_iters: u64, chunks: usize) -> Self {
        let chunks = chunks.max(1);
        JobSpec {
            chunks,
            iters_per_chunk: (total_iters / chunks as u64).max(1),
            shape: JobShape::Flat,
        }
    }

    /// A recursive fork-join job with `2^depth` leaves carrying
    /// `total_iters` of work in total.
    pub fn fork_join(total_iters: u64, depth: u32) -> Self {
        assert!(
            depth <= 16,
            "fork-join depth {depth} would exceed 65k leaves"
        );
        let leaves = 1usize << depth;
        JobSpec {
            chunks: leaves,
            iters_per_chunk: (total_iters / leaves as u64).max(1),
            shape: JobShape::ForkJoin { depth },
        }
    }

    /// A flat job whose chunks all panic when executed (see
    /// [`JobShape::Poison`]).
    pub fn poison(total_iters: u64, chunks: usize) -> Self {
        let chunks = chunks.max(1);
        JobSpec {
            chunks,
            iters_per_chunk: (total_iters / chunks as u64).max(1),
            shape: JobShape::Poison,
        }
    }

    /// Number of trackable tasks: leaves only (spawn strands are free).
    pub fn leaf_tasks(&self) -> usize {
        self.chunks
    }
}

/// Shared state of one in-flight job.
#[derive(Debug)]
pub struct JobState {
    /// Dense job index.
    pub id: u32,
    /// Chunks not yet finished.
    pub remaining: AtomicUsize,
    /// Nanoseconds from the run's base instant to arrival.
    pub arrival_ns: AtomicU64,
    /// Nanoseconds from the base instant to completion (0 = incomplete).
    /// For failed jobs this records the moment of failure instead, so the
    /// flow of a failed job measures time-to-failure (as in the simulator).
    pub completion_ns: AtomicU64,
    /// Iterations per chunk.
    pub iters_per_chunk: u64,
    /// Total chunks.
    pub chunks: usize,
    /// Structure of the job.
    pub shape: JobShape,
    /// Set when a chunk of this job panicked; remaining chunks are dropped.
    pub failed: AtomicBool,
    /// Single-shot terminal latch: exactly one of `finish_chunk` /
    /// [`JobState::fail`] wins the right to count this job as finished,
    /// even when a panicking chunk races the job's last healthy chunk.
    terminal: AtomicBool,
    /// Chunk execution sequence number, used to key the deterministic
    /// panic sampler.
    executed: AtomicU64,
}

impl JobState {
    /// Create the state for a job of `spec` shape.
    pub fn new(id: u32, spec: JobSpec) -> Self {
        JobState {
            id,
            remaining: AtomicUsize::new(spec.leaf_tasks()),
            arrival_ns: AtomicU64::new(0),
            completion_ns: AtomicU64::new(0),
            iters_per_chunk: spec.iters_per_chunk,
            chunks: spec.chunks,
            shape: spec.shape,
            failed: AtomicBool::new(false),
            terminal: AtomicBool::new(false),
            executed: AtomicU64::new(0),
        }
    }

    /// Mark one chunk finished; returns true if this finished the job
    /// (last chunk, and no concurrent failure already ended it).
    pub fn finish_chunk(&self, base: Instant) -> bool {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            if self.terminal.swap(true, Ordering::AcqRel) {
                return false;
            }
            let ns = base.elapsed().as_nanos() as u64; // lint: allow(truncating-cast) u64 nanoseconds wrap after ~584 years of run wall-clock
            self.completion_ns.store(ns.max(1), Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Mark the whole job failed (a chunk panicked); returns true the
    /// first time, when the caller must count the job as terminal.
    pub fn fail(&self, base: Instant) -> bool {
        self.failed.store(true, Ordering::Release);
        if self.terminal.swap(true, Ordering::AcqRel) {
            return false;
        }
        let ns = base.elapsed().as_nanos() as u64; // lint: allow(truncating-cast) u64 nanoseconds wrap after ~584 years of run wall-clock
        self.completion_ns.store(ns.max(1), Ordering::Release);
        true
    }

    /// True once a chunk of this job has panicked.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Next chunk sequence number (keys the deterministic panic sampler).
    pub fn next_seq(&self) -> u64 {
        self.executed.fetch_add(1, Ordering::Relaxed)
    }

    /// Terminal status, meaningful once the run is over: failed jobs are
    /// [`JobStatus::Failed`], finished ones [`JobStatus::Completed`], and
    /// anything still open when the run ended [`JobStatus::Aborted`].
    pub fn status(&self) -> JobStatus {
        if self.failed.load(Ordering::Acquire) {
            JobStatus::Failed
        } else if self.completion_ns.load(Ordering::Acquire) > 0 {
            JobStatus::Completed
        } else {
            JobStatus::Aborted
        }
    }

    /// Flow time in nanoseconds, if the job reached a terminal time
    /// (completion, or failure time for failed jobs).
    pub fn flow_ns(&self) -> Option<u64> {
        let done = self.completion_ns.load(Ordering::Acquire);
        if done == 0 {
            return None;
        }
        Some(done.saturating_sub(self.arrival_ns.load(Ordering::Acquire)))
    }
}

/// A unit of schedulable work.
///
/// Tasks carry only the owning job's dense index; workers resolve it
/// against the executor's shared `JobState` slab. Keeping the task `Copy`
/// (12 bytes, no `Arc`) removes per-task refcount traffic from every
/// deque push, steal and drop on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Task {
    /// Owning job's dense index into the run's job-state slab.
    pub job: u32,
    /// What this task does.
    pub kind: TaskKind,
}

/// Task variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Execute one leaf chunk of spin work.
    Chunk,
    /// Spawn two subtasks (fork-join recursion); depth 1 spawns chunks.
    Spawn {
        /// Remaining recursion depth (≥ 1).
        depth: u32,
    },
}

/// The CPU-bound spin kernel: a splitmix-style integer recurrence the
/// optimizer cannot remove (the result is returned and consumed with
/// `std::hint::black_box` by the caller).
#[inline]
pub fn spin_kernel(iters: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_spec() {
        let s = JobSpec::split(100, 4);
        assert_eq!(s.chunks, 4);
        assert_eq!(s.iters_per_chunk, 25);
        let tiny = JobSpec::split(2, 8);
        assert_eq!(tiny.iters_per_chunk, 1);
        let zero_chunks = JobSpec::split(10, 0);
        assert_eq!(zero_chunks.chunks, 1);
    }

    #[test]
    fn job_state_completion() {
        let base = Instant::now();
        let js = JobState::new(
            0,
            JobSpec {
                chunks: 3,
                iters_per_chunk: 1,
                shape: JobShape::Flat,
            },
        );
        assert!(js.flow_ns().is_none());
        assert!(!js.finish_chunk(base));
        assert!(!js.finish_chunk(base));
        assert!(js.finish_chunk(base));
        assert!(js.flow_ns().is_some());
    }

    #[test]
    fn flow_subtracts_arrival() {
        let base = Instant::now();
        let js = JobState::new(
            0,
            JobSpec {
                chunks: 1,
                iters_per_chunk: 1,
                shape: JobShape::Flat,
            },
        );
        js.arrival_ns.store(100, Ordering::Release);
        js.finish_chunk(base);
        let flow = js.flow_ns().unwrap();
        let completion = js.completion_ns.load(Ordering::Acquire);
        assert_eq!(flow, completion.saturating_sub(100));
    }

    #[test]
    fn fork_join_spec() {
        let s = JobSpec::fork_join(1024, 4);
        assert_eq!(s.chunks, 16);
        assert_eq!(s.iters_per_chunk, 64);
        assert_eq!(s.shape, JobShape::ForkJoin { depth: 4 });
        assert_eq!(s.leaf_tasks(), 16);
    }

    #[test]
    #[should_panic(expected = "65k leaves")]
    fn fork_join_depth_cap() {
        let _ = JobSpec::fork_join(1, 17);
    }

    #[test]
    fn poison_spec() {
        let s = JobSpec::poison(100, 4);
        assert_eq!(s.shape, JobShape::Poison);
        assert_eq!(s.chunks, 4);
        assert_eq!(s.iters_per_chunk, 25);
    }

    #[test]
    fn fail_is_terminal_exactly_once() {
        let base = Instant::now();
        let js = JobState::new(
            0,
            JobSpec {
                chunks: 2,
                iters_per_chunk: 1,
                shape: JobShape::Flat,
            },
        );
        assert_eq!(js.status(), JobStatus::Aborted); // not yet terminal
        assert!(js.fail(base));
        assert!(!js.fail(base), "second failure must not double-count");
        assert!(js.is_failed());
        assert_eq!(js.status(), JobStatus::Failed);
        assert!(js.flow_ns().is_some(), "failed jobs record time-to-failure");
    }

    #[test]
    fn completion_loses_race_against_failure() {
        let base = Instant::now();
        let js = JobState::new(
            0,
            JobSpec {
                chunks: 1,
                iters_per_chunk: 1,
                shape: JobShape::Flat,
            },
        );
        assert!(js.fail(base));
        // The last chunk finishing after a failure must not count the job
        // as terminal a second time.
        assert!(!js.finish_chunk(base));
        assert_eq!(js.status(), JobStatus::Failed);
    }

    #[test]
    fn seq_increments() {
        let js = JobState::new(0, JobSpec::split(10, 2));
        assert_eq!(js.next_seq(), 0);
        assert_eq!(js.next_seq(), 1);
    }

    #[test]
    fn spin_kernel_depends_on_iters() {
        let a = spin_kernel(10, 42);
        let b = spin_kernel(11, 42);
        assert_ne!(a, b);
        assert_eq!(spin_kernel(10, 42), a, "deterministic");
    }
}
