//! Runtime jobs and tasks.
//!
//! A runtime job mirrors the paper's empirical setup: CPU-intensive work
//! parallelized with a parallel-for loop. On admission the job fans out
//! into `chunks` independent chunk tasks; the job completes when the last
//! chunk finishes. Work is measured in *iterations* of a deterministic
//! spin kernel so results do not depend on clock resolution.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a job's work is structured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobShape {
    /// A flat parallel-for: all chunks are pushed at admission.
    Flat,
    /// A recursive binary fork-join of the given depth: admission pushes
    /// one spawn task; each spawn task pushes two children (spawns until
    /// depth 0, then chunks). Produces `2^depth` leaf chunks and exercises
    /// deep deque nesting exactly like divide-and-conquer programs.
    ForkJoin {
        /// Recursion depth (`2^depth` leaves).
        depth: u32,
    },
}

/// Specification of one job submitted to the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Number of parallel-for chunks (leaves for fork-join).
    pub chunks: usize,
    /// Spin-kernel iterations per chunk.
    pub iters_per_chunk: u64,
    /// Structure of the job.
    pub shape: JobShape,
}

impl JobSpec {
    /// A flat job with `total_iters` of work split into `chunks` chunks.
    pub fn split(total_iters: u64, chunks: usize) -> Self {
        let chunks = chunks.max(1);
        JobSpec {
            chunks,
            iters_per_chunk: (total_iters / chunks as u64).max(1),
            shape: JobShape::Flat,
        }
    }

    /// A recursive fork-join job with `2^depth` leaves carrying
    /// `total_iters` of work in total.
    pub fn fork_join(total_iters: u64, depth: u32) -> Self {
        assert!(depth <= 16, "fork-join depth {depth} would exceed 65k leaves");
        let leaves = 1usize << depth;
        JobSpec {
            chunks: leaves,
            iters_per_chunk: (total_iters / leaves as u64).max(1),
            shape: JobShape::ForkJoin { depth },
        }
    }

    /// Number of trackable tasks: leaves only (spawn strands are free).
    pub fn leaf_tasks(&self) -> usize {
        self.chunks
    }
}

/// Shared state of one in-flight job.
#[derive(Debug)]
pub struct JobState {
    /// Dense job index.
    pub id: u32,
    /// Chunks not yet finished.
    pub remaining: AtomicUsize,
    /// Nanoseconds from the run's base instant to arrival.
    pub arrival_ns: AtomicU64,
    /// Nanoseconds from the base instant to completion (0 = incomplete).
    pub completion_ns: AtomicU64,
    /// Iterations per chunk.
    pub iters_per_chunk: u64,
    /// Total chunks.
    pub chunks: usize,
    /// Structure of the job.
    pub shape: JobShape,
}

impl JobState {
    /// Create the state for a job of `spec` shape.
    pub fn new(id: u32, spec: JobSpec) -> Self {
        JobState {
            id,
            remaining: AtomicUsize::new(spec.leaf_tasks()),
            arrival_ns: AtomicU64::new(0),
            completion_ns: AtomicU64::new(0),
            iters_per_chunk: spec.iters_per_chunk,
            chunks: spec.chunks,
            shape: spec.shape,
        }
    }

    /// Mark one chunk finished; returns true if this was the last chunk.
    pub fn finish_chunk(&self, base: Instant) -> bool {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let ns = base.elapsed().as_nanos() as u64;
            self.completion_ns.store(ns.max(1), Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Flow time in nanoseconds, if complete.
    pub fn flow_ns(&self) -> Option<u64> {
        let done = self.completion_ns.load(Ordering::Acquire);
        if done == 0 {
            return None;
        }
        Some(done.saturating_sub(self.arrival_ns.load(Ordering::Acquire)))
    }
}

/// A unit of schedulable work.
#[derive(Clone, Debug)]
pub struct Task {
    /// Owning job.
    pub job: Arc<JobState>,
    /// What this task does.
    pub kind: TaskKind,
}

/// Task variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Execute one leaf chunk of spin work.
    Chunk,
    /// Spawn two subtasks (fork-join recursion); depth 1 spawns chunks.
    Spawn {
        /// Remaining recursion depth (≥ 1).
        depth: u32,
    },
}

/// The CPU-bound spin kernel: a splitmix-style integer recurrence the
/// optimizer cannot remove (the result is returned and consumed with
/// `std::hint::black_box` by the caller).
#[inline]
pub fn spin_kernel(iters: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_spec() {
        let s = JobSpec::split(100, 4);
        assert_eq!(s.chunks, 4);
        assert_eq!(s.iters_per_chunk, 25);
        let tiny = JobSpec::split(2, 8);
        assert_eq!(tiny.iters_per_chunk, 1);
        let zero_chunks = JobSpec::split(10, 0);
        assert_eq!(zero_chunks.chunks, 1);
    }

    #[test]
    fn job_state_completion() {
        let base = Instant::now();
        let js = JobState::new(0, JobSpec { chunks: 3, iters_per_chunk: 1, shape: JobShape::Flat });
        assert!(js.flow_ns().is_none());
        assert!(!js.finish_chunk(base));
        assert!(!js.finish_chunk(base));
        assert!(js.finish_chunk(base));
        assert!(js.flow_ns().is_some());
    }

    #[test]
    fn flow_subtracts_arrival() {
        let base = Instant::now();
        let js = JobState::new(0, JobSpec { chunks: 1, iters_per_chunk: 1, shape: JobShape::Flat });
        js.arrival_ns.store(100, Ordering::Release);
        js.finish_chunk(base);
        let flow = js.flow_ns().unwrap();
        let completion = js.completion_ns.load(Ordering::Acquire);
        assert_eq!(flow, completion.saturating_sub(100));
    }

    #[test]
    fn fork_join_spec() {
        let s = JobSpec::fork_join(1024, 4);
        assert_eq!(s.chunks, 16);
        assert_eq!(s.iters_per_chunk, 64);
        assert_eq!(s.shape, JobShape::ForkJoin { depth: 4 });
        assert_eq!(s.leaf_tasks(), 16);
    }

    #[test]
    #[should_panic(expected = "65k leaves")]
    fn fork_join_depth_cap() {
        let _ = JobSpec::fork_join(1, 17);
    }

    #[test]
    fn spin_kernel_depends_on_iters() {
        let a = spin_kernel(10, 42);
        let b = spin_kernel(11, 42);
        assert_ne!(a, b);
        assert_eq!(spin_kernel(10, 42), a, "deterministic");
    }
}
