//! The multithreaded work-stealing executor.
//!
//! This is the systems-level counterpart of the paper's extended-TBB
//! runtime: per-worker crossbeam deques (LIFO for the owner, FIFO steals
//! from the other end), a global `Injector` used as the FIFO admission
//! queue, and the two admission policies:
//!
//! * **admit-first** — a worker whose deque is empty admits a queued job
//!   whenever one exists and steals only otherwise;
//! * **steal-k-first** — it first makes up to `k` random steal attempts and
//!   admits only after `k` consecutive failures.
//!
//! On admission the worker expands the job's parallel-for into chunk tasks
//! pushed onto its own deque (TBB/Cilk spawn semantics) and immediately
//! executes one.
//!
//! ## Hardening
//!
//! The executor is panic- and fault-tolerant:
//!
//! * every chunk kernel runs under `catch_unwind`; a panicking chunk marks
//!   its job [`JobStatus::Failed`] and drops the job's remaining tasks, so
//!   one bad job can neither kill a worker thread nor hang the run;
//! * an optional watchdog ([`RuntimeConfig::with_deadline`]) aborts the run
//!   when outstanding jobs make no progress for the configured window,
//!   returning partial results with unfinished jobs marked
//!   [`JobStatus::Aborted`];
//! * a [`FaultPlan`] (shared with the simulator) injects worker crashes —
//!   a crashed worker drains its deque into a global orphan queue that
//!   survivors adopt from — plus slowdowns, stall windows, steal
//!   blackholes, and probabilistic task panics;
//! * [`try_run_workload`] propagates engine errors (a genuinely dead
//!   worker thread, an invalid fault plan) instead of panicking in the
//!   caller's thread.

use crate::task::{spin_kernel, JobShape, JobSpec, JobState, Task, TaskKind};
use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use parflow_core::{FaultEvent, FaultKind, FaultPlan, JobStatus, PanicSampler, PPM};
use parflow_obs::Recorder;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Nanoseconds per simulated round: 1 work unit = 1 tick = 0.1 ms. Used to
/// convert a [`FaultPlan`]'s round-based schedule to wall-clock deadlines
/// and to timestamp runtime [`FaultEvent`]s in round units.
pub const NS_PER_TICK: u64 = 100_000;

/// Admission policy of the real runtime (mirrors
/// `parflow_core::StealPolicy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtPolicy {
    /// Admit whenever the global queue is non-empty; steal otherwise.
    AdmitFirst,
    /// Admit only after `k` consecutive failed steal attempts.
    StealKFirst {
        /// Failed-steal threshold.
        k: u32,
    },
}

/// Executor configuration.
///
/// Not `Copy` since the fault plan owns heap-allocated fault lists; clone
/// explicitly where a second copy is needed.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Admission policy.
    pub policy: RtPolicy,
    /// RNG seed for victim selection (also keys the panic sampler).
    pub seed: u64,
    /// Faults to inject; empty by default. Round-based fault times are
    /// mapped to wall-clock at [`NS_PER_TICK`] nanoseconds per round.
    pub faults: FaultPlan,
    /// Watchdog no-progress deadline: if outstanding jobs exist and no
    /// counter moves for this long, the run aborts with partial results.
    /// `None` (default) disables the watchdog.
    pub deadline: Option<Duration>,
}

impl RuntimeConfig {
    /// `workers` threads with the given policy.
    pub fn new(workers: usize, policy: RtPolicy) -> Self {
        assert!(workers > 0, "need at least one worker");
        RuntimeConfig {
            workers,
            policy,
            seed: 0x5eed,
            faults: FaultPlan::none(),
            deadline: None,
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject the given faults (validated against `workers` at run start).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Abort the run when outstanding jobs make no progress for `deadline`.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Per-run statistics aggregated across workers.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeStats {
    /// Chunk tasks executed.
    pub tasks_executed: u64,
    /// Steal attempts (successful + failed).
    pub steal_attempts: u64,
    /// Successful steals.
    pub successful_steals: u64,
    /// Jobs admitted from the global queue.
    pub admissions: u64,
    /// Chunk executions that panicked (injected or real).
    pub task_panics: u64,
    /// Tasks reinjected into the orphan queue by crashed workers.
    pub orphaned_tasks: u64,
}

/// Per-worker counters, collected thread-locally in each worker loop (no
/// shared-cacheline traffic) and returned when the thread exits. The sum
/// over workers matches the corresponding [`RuntimeStats`] fields except
/// for races the aggregate atomics also have.
#[derive(Clone, Copy, Debug, Default)]
pub struct RtWorkerStats {
    /// Chunk tasks executed by this worker.
    pub tasks_executed: u64,
    /// Steal attempts made by this worker.
    pub steal_attempts: u64,
    /// Successful steals.
    pub successful_steals: u64,
    /// Jobs this worker admitted from the global queue.
    pub admissions: u64,
    /// Chunk executions on this worker that panicked.
    pub task_panics: u64,
    /// Tasks this worker adopted from the orphan queue.
    pub adopted_orphans: u64,
}

/// Result of one job in a runtime run.
#[derive(Clone, Copy, Debug)]
pub struct RtJobResult {
    /// Job index (submission order).
    pub id: u32,
    /// Wall-clock flow time. For [`JobStatus::Failed`] jobs this is the
    /// time to failure; for [`JobStatus::Aborted`] jobs the time in system
    /// until the abort (zero if the job never arrived).
    pub flow: Duration,
    /// How the job ended.
    pub status: JobStatus,
}

/// Outcome of a whole workload run.
#[derive(Clone, Debug)]
pub struct RuntimeResult {
    /// Per-job results, in submission order.
    pub jobs: Vec<RtJobResult>,
    /// Aggregated counters.
    pub stats: RuntimeStats,
    /// Per-worker counters, indexed by worker id.
    pub worker_stats: Vec<RtWorkerStats>,
    /// Total wall-clock duration of the run.
    pub elapsed: Duration,
    /// True when the watchdog gave up on the run before all jobs finished.
    pub aborted: bool,
    /// Faults that actually fired, timestamped in rounds ([`NS_PER_TICK`]).
    pub fault_events: Vec<FaultEvent>,
}

impl RuntimeResult {
    /// Maximum flow time over all jobs (including failed/aborted ones,
    /// whose flows measure time-to-failure/abort).
    pub fn max_flow(&self) -> Duration {
        self.jobs.iter().map(|j| j.flow).max().unwrap_or_default()
    }

    /// Maximum flow time over *completed* jobs only — the meaningful
    /// objective under fault injection.
    pub fn max_completed_flow(&self) -> Duration {
        self.jobs
            .iter()
            .filter(|j| j.status.is_completed())
            .map(|j| j.flow)
            .max()
            .unwrap_or_default()
    }

    /// Mean flow time.
    pub fn mean_flow(&self) -> Duration {
        if self.jobs.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.jobs.iter().map(|j| j.flow).sum();
        // Executor-produced results are bounded by the TooManyJobs guard;
        // saturate instead of truncating for hand-built oversized results.
        total / u32::try_from(self.jobs.len()).unwrap_or(u32::MAX)
    }

    /// True when every job ran to completion.
    pub fn all_completed(&self) -> bool {
        self.jobs.iter().all(|j| j.status.is_completed())
    }

    /// Per-job flow times in milliseconds, submission order.
    pub fn flow_ms(&self) -> Vec<f64> {
        self.jobs
            .iter()
            .map(|j| j.flow.as_secs_f64() * 1e3)
            .collect()
    }

    /// Job-latency histogram: `bins` uniform bins over `[0, max_flow]` in
    /// milliseconds. Returns `None` for an empty run (no bin range).
    pub fn flow_histogram(&self, bins: usize) -> Option<parflow_metrics::Histogram> {
        let flows = self.flow_ms();
        let hi = flows.iter().copied().fold(0.0_f64, f64::max);
        if flows.is_empty() || hi <= 0.0 {
            return None;
        }
        let mut h = parflow_metrics::Histogram::new(0.0, hi * (1.0 + 1e-9), bins);
        h.extend(flows);
        Some(h)
    }

    /// Emit this result into a [`Recorder`]: `rt.*` aggregate counters,
    /// per-worker `rt.worker.*` counters, per-job `rt.job_flow_ms` latency
    /// samples (summarized as a histogram by the aggregating recorder),
    /// fault-recovery event counts and an `rt.elapsed_ms` gauge.
    pub fn observe_into(&self, rec: &mut dyn Recorder) {
        if !rec.enabled() {
            return;
        }
        rec.counter("rt.tasks_executed", self.stats.tasks_executed);
        rec.counter("rt.steal_attempts", self.stats.steal_attempts);
        rec.counter("rt.successful_steals", self.stats.successful_steals);
        rec.counter("rt.admissions", self.stats.admissions);
        rec.counter("rt.task_panics", self.stats.task_panics);
        rec.counter("rt.orphaned_tasks", self.stats.orphaned_tasks);
        rec.counter("rt.aborted", self.aborted as u64);
        for (p, w) in self.worker_stats.iter().enumerate() {
            rec.counter_at("rt.worker.tasks_executed", p, w.tasks_executed);
            rec.counter_at("rt.worker.steal_attempts", p, w.steal_attempts);
            rec.counter_at("rt.worker.successful_steals", p, w.successful_steals);
            rec.counter_at("rt.worker.admissions", p, w.admissions);
            rec.counter_at("rt.worker.task_panics", p, w.task_panics);
            rec.counter_at("rt.worker.adopted_orphans", p, w.adopted_orphans);
        }
        for j in &self.jobs {
            rec.sample("rt.job_flow_ms", j.flow.as_secs_f64() * 1e3);
        }
        for e in &self.fault_events {
            // One counter per fault kind: crash recovery and injection
            // activity becomes visible without a full event dump.
            rec.counter(&format!("rt.fault.{:?}", e.kind), 1);
        }
        rec.gauge("rt.elapsed_ms", self.elapsed.as_secs_f64() * 1e3);
        rec.gauge("rt.workers", self.worker_stats.len() as f64);
    }
}

/// Engine-level failures surfaced by [`try_run_workload`]. These indicate
/// bugs or bad configuration, not job failures (which are reported per-job
/// via [`JobStatus`]).
///
/// `#[non_exhaustive]`: the streaming admission service grows this
/// vocabulary (ingest I/O, queue overflow); downstream matches must keep a
/// wildcard arm so new failure modes cannot silently break callers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The fault plan references workers outside `0..workers` or leaves no
    /// worker able to make progress.
    InvalidFaultPlan(String),
    /// A worker thread itself died (its loop is panic-hardened, so this
    /// means an engine bug).
    WorkerPanicked(usize),
    /// The submitter thread died.
    SubmitterPanicked,
    /// The watchdog thread died.
    WatchdogPanicked,
    /// The workload has more jobs than the `u32` dense job-id space can
    /// address. Checked up front so every `index as u32` in the engine is
    /// provably lossless.
    TooManyJobs(usize),
    /// An I/O failure on a runtime-adjacent surface (submission ingest,
    /// report flush). Message only, so the error stays `Eq`-comparable.
    Io(String),
    /// A bounded admission queue was full and the submission was shed.
    /// Surfaced — never a silent drop — so supervisors can count and
    /// re-route sheds.
    ShedOverflow {
        /// The queue bound that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            RuntimeError::WorkerPanicked(p) => write!(f, "worker thread {p} panicked"),
            RuntimeError::SubmitterPanicked => write!(f, "submitter thread panicked"),
            RuntimeError::WatchdogPanicked => write!(f, "watchdog thread panicked"),
            RuntimeError::TooManyJobs(n) => {
                write!(f, "workload has {n} jobs; job ids are dense u32 indices")
            }
            RuntimeError::Io(msg) => write!(f, "i/o failure: {msg}"),
            RuntimeError::ShedOverflow { capacity } => {
                write!(
                    f,
                    "admission queue full (capacity {capacity}); submission shed"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A failed run together with whatever the engine finished before dying:
/// the `Err` payload of [`try_run_workload`].
///
/// `partial` is `None` only for errors raised before any thread started
/// (an invalid fault plan, an oversized workload). For mid-run failures it
/// holds the salvaged [`RuntimeResult`] — jobs that reached a terminal
/// state keep their real statuses and flows, unfinished ones are marked
/// [`JobStatus::Aborted`] — so a supervisor can re-admit *only* the truly
/// unfinished jobs instead of replaying the whole workload.
#[derive(Clone, Debug)]
pub struct FailedRun {
    /// What went wrong.
    pub error: RuntimeError,
    /// Telemetry for the part of the workload that did run, if any thread
    /// got far enough to produce it. Boxed so the error path stays small
    /// next to the `Ok` payload.
    pub partial: Option<Box<RuntimeResult>>,
}

impl FailedRun {
    /// A failure raised before the engine started (no partial results).
    pub fn before_start(error: RuntimeError) -> Self {
        FailedRun {
            error,
            partial: None,
        }
    }

    /// Ids of jobs that did *not* reach a terminal completed/failed state,
    /// in submission order — the re-admission set for a supervisor.
    pub fn unfinished_jobs(&self) -> Vec<u32> {
        match &self.partial {
            None => Vec::new(),
            Some(r) => r
                .jobs
                .iter()
                .filter(|j| j.status == JobStatus::Aborted)
                .map(|j| j.id)
                .collect(),
        }
    }
}

impl std::fmt::Display for FailedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for FailedRun {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<FailedRun> for RuntimeError {
    fn from(f: FailedRun) -> RuntimeError {
        f.error
    }
}

/// Payload of deliberately injected chunk panics. The global panic hook is
/// taught (once, lazily) to stay silent for this payload so fault-injection
/// runs do not spray "thread panicked" noise; genuine panics still reach
/// the previous hook untouched.
struct InjectedPanic;

fn silence_injected_panics() {
    static SILENCE: Once = Once::new();
    SILENCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Bounded exponential backoff for workers that find nothing to do: a few
/// spin-loop hints first, then cooperative yields, then short parks with a
/// capped sleep. Keeps the worst-case reaction latency around a millisecond
/// while not burning a full core per worker through long arrival gaps.
struct Backoff {
    step: u32,
}

impl Backoff {
    /// Steps 0..SPIN spin `2^step` times; SPIN..YIELD yield; beyond, park.
    const SPIN: u32 = 6;
    const YIELD: u32 = 10;

    fn new() -> Self {
        Backoff { step: 0 }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn pause(&mut self) {
        if self.step < Self::SPIN {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < Self::YIELD {
            std::thread::yield_now();
        } else {
            let shift = (self.step - Self::YIELD).min(4);
            std::thread::sleep(Duration::from_micros((50u64 << shift).min(800)));
        }
        self.step = self.step.saturating_add(1);
    }
}

struct Shared {
    /// Per-job state slab, indexed by dense job id. Owning the slab here
    /// (rather than one `Arc<JobState>` per job) makes tasks plain `Copy`
    /// indices: no refcount traffic on deque pushes, steals or drops.
    states: Box<[JobState]>,
    /// Admission queue of job indices into `states`.
    injector: Injector<u32>,
    /// Tasks drained from crashed workers' deques, adopted by survivors.
    orphans: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    done: AtomicBool,
    aborted: AtomicBool,
    /// Terminal (completed or failed) jobs.
    completed: AtomicUsize,
    /// Jobs released by the submitter so far.
    submitted: AtomicUsize,
    total_jobs: usize,
    base: Instant,
    faults: FaultPlan,
    sampler: PanicSampler,
    blackholed: Vec<bool>,
    tasks_executed: AtomicU64,
    steal_attempts: AtomicU64,
    successful_steals: AtomicU64,
    admissions: AtomicU64,
    task_panics: AtomicU64,
    orphaned_tasks: AtomicU64,
    events: Mutex<Vec<FaultEvent>>,
}

impl Shared {
    /// Current engine time in rounds (for fault-event timestamps).
    fn now_round(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64 / NS_PER_TICK // lint: allow(truncating-cast) u64 nanoseconds wrap after ~584 years of run wall-clock
    }

    fn push_event(&self, kind: FaultKind, worker: Option<usize>, job: Option<u32>, detail: u64) {
        self.events.lock().push(FaultEvent {
            round: self.now_round(),
            worker,
            job,
            kind,
            detail,
        });
    }

    /// Count one job as terminal; flips `done` when it was the last.
    fn job_terminal(&self) {
        let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
        if done == self.total_jobs {
            self.done.store(true, Ordering::Release);
        }
    }
}

fn round_to_duration(round: u64) -> Duration {
    Duration::from_nanos(round.saturating_mul(NS_PER_TICK))
}

/// Run a workload: `(arrival offset, spec)` pairs, offsets non-decreasing.
///
/// Spawns `config.workers` worker threads plus a submitter thread that
/// releases jobs at their arrival offsets; blocks until every job reaches
/// a terminal state (or the watchdog aborts) and returns per-job
/// wall-clock flow times and statuses.
///
/// Panics on engine-level failures; use [`try_run_workload`] to handle
/// them as errors instead.
pub fn run_workload(config: &RuntimeConfig, workload: &[(Duration, JobSpec)]) -> RuntimeResult {
    // lint: allow(panicking) documented panicking wrapper; try_run_workload is the error API
    try_run_workload(config, workload).unwrap_or_else(|e| panic!("runtime failure: {e}"))
}

/// Fallible variant of [`run_workload`]: engine-level problems (invalid
/// fault plan, a genuinely dead thread) come back as a [`FailedRun`]
/// carrying the salvaged partial [`RuntimeResult`] instead of panicking
/// and losing it. Job-level failures never produce an `Err` — they are
/// reported per job via [`RtJobResult::status`].
pub fn try_run_workload(
    config: &RuntimeConfig,
    workload: &[(Duration, JobSpec)],
) -> Result<RuntimeResult, FailedRun> {
    if let Err(msg) = config.faults.validate(config.workers) {
        return Err(FailedRun::before_start(RuntimeError::InvalidFaultPlan(msg)));
    }
    if workload.len() > u32::MAX as usize {
        // Guard the dense-u32 job-id space once, here, so every
        // `index as u32` below is provably lossless.
        return Err(FailedRun::before_start(RuntimeError::TooManyJobs(
            workload.len(),
        )));
    }
    let inject_panics =
        config.faults.panic_ppm > 0 || workload.iter().any(|&(_, s)| s.shape == JobShape::Poison);
    if inject_panics {
        silence_injected_panics();
    }

    let n = workload.len();
    let deques: Vec<Deque<Task>> = (0..config.workers).map(|_| Deque::new_lifo()).collect();
    let stealers: Vec<Stealer<Task>> = deques.iter().map(|d| d.stealer()).collect();
    let states: Vec<JobState> = workload
        .iter()
        .enumerate()
        .map(|(i, &(_, spec))| JobState::new(i as u32, spec)) // lint: allow(truncating-cast) bounded by the TooManyJobs guard at run entry
        .collect();
    let base = Instant::now();
    let shared = Arc::new(Shared {
        states: states.into_boxed_slice(),
        injector: Injector::new(),
        orphans: Injector::new(),
        stealers,
        done: AtomicBool::new(n == 0),
        aborted: AtomicBool::new(false),
        completed: AtomicUsize::new(0),
        submitted: AtomicUsize::new(0),
        total_jobs: n,
        base,
        faults: config.faults.clone(),
        sampler: PanicSampler::new(config.seed, config.faults.panic_ppm),
        blackholed: (0..config.workers)
            .map(|p| config.faults.is_blackhole(p))
            .collect(),
        tasks_executed: AtomicU64::new(0),
        steal_attempts: AtomicU64::new(0),
        successful_steals: AtomicU64::new(0),
        admissions: AtomicU64::new(0),
        task_panics: AtomicU64::new(0),
        orphaned_tasks: AtomicU64::new(0),
        events: Mutex::new(Vec::new()),
    });

    // The submitter releases jobs at their arrival offsets, sleeping in
    // short slices so a watchdog abort interrupts it promptly.
    let submitter = {
        let shared = Arc::clone(&shared);
        let offsets: Vec<Duration> = workload.iter().map(|&(d, _)| d).collect();
        std::thread::spawn(move || {
            for (i, offset) in offsets.into_iter().enumerate() {
                let target = shared.base + offset;
                loop {
                    if shared.done.load(Ordering::Acquire) {
                        return;
                    }
                    let now = Instant::now();
                    if target <= now {
                        break;
                    }
                    std::thread::sleep((target - now).min(Duration::from_millis(10)));
                }
                // `max(1)` so arrival_ns == 0 still means "never arrived".
                let ns = shared.base.elapsed().as_nanos() as u64; // lint: allow(truncating-cast) u64 nanoseconds wrap after ~584 years of run wall-clock
                shared.states[i]
                    .arrival_ns
                    .store(ns.max(1), Ordering::Release);
                shared.submitted.fetch_add(1, Ordering::Release);
                shared.injector.push(i as u32); // lint: allow(truncating-cast) bounded by the TooManyJobs guard at run entry
            }
        })
    };

    // Watchdog: aborts the run when released-but-unfinished jobs exist and
    // no counter moves for the configured deadline.
    let watchdog = config.deadline.map(|deadline| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let poll = (deadline / 8)
                .max(Duration::from_millis(1))
                .min(Duration::from_millis(25));
            let mut last_snapshot = (0u64, 0u64, 0u64, 0usize, 0usize);
            let mut stagnant_since = Instant::now();
            loop {
                if shared.done.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(poll);
                let snapshot = (
                    shared.tasks_executed.load(Ordering::Relaxed),
                    shared.admissions.load(Ordering::Relaxed),
                    shared.task_panics.load(Ordering::Relaxed),
                    shared.completed.load(Ordering::Acquire),
                    shared.submitted.load(Ordering::Acquire),
                );
                let outstanding = snapshot.4 > snapshot.3;
                if snapshot != last_snapshot || !outstanding {
                    last_snapshot = snapshot;
                    stagnant_since = Instant::now();
                    continue;
                }
                if stagnant_since.elapsed() >= deadline {
                    shared.push_event(FaultKind::Abort, None, None, 0);
                    shared.aborted.store(true, Ordering::Release);
                    shared.done.store(true, Ordering::Release);
                    return;
                }
            }
        })
    });

    // Worker threads. Each deque moves straight into its worker's
    // closure; ownership is by construction, so the worker path has no
    // `expect` to reach for (this replaced a `Mutex<Option<Deque>>`
    // take-once dance whose failure mode was a worker-thread panic).
    let mut handles = Vec::with_capacity(config.workers);
    for (p, local) in deques.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let policy = config.policy;
        let seed = config.seed.wrapping_add(p as u64);
        handles.push(std::thread::spawn(move || {
            worker_loop(p, &local, policy, seed, &shared)
        }));
    }

    let mut error = None;
    if submitter.join().is_err() {
        error = Some(RuntimeError::SubmitterPanicked);
    }
    let mut worker_stats = vec![RtWorkerStats::default(); config.workers];
    for (p, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(ws) => worker_stats[p] = ws,
            Err(_) => {
                error.get_or_insert(RuntimeError::WorkerPanicked(p));
            }
        }
    }
    if let Some(w) = watchdog {
        if w.join().is_err() {
            error.get_or_insert(RuntimeError::WatchdogPanicked);
        }
    }

    let end_ns = base.elapsed().as_nanos() as u64; // lint: allow(truncating-cast) u64 nanoseconds wrap after ~584 years of run wall-clock
    let fault_events = std::mem::take(&mut *shared.events.lock());
    let jobs = shared
        .states
        .iter()
        .map(|s| {
            let status = s.status();
            let flow = match s.flow_ns() {
                Some(ns) => Duration::from_nanos(ns),
                None => {
                    // Aborted before finishing: time in system up to the
                    // end of the run, zero if the job never arrived.
                    let arrival = s.arrival_ns.load(Ordering::Acquire);
                    if arrival == 0 {
                        Duration::ZERO
                    } else {
                        Duration::from_nanos(end_ns.saturating_sub(arrival))
                    }
                }
            };
            RtJobResult {
                id: s.id,
                flow,
                status,
            }
        })
        .collect();
    let result = RuntimeResult {
        jobs,
        stats: RuntimeStats {
            tasks_executed: shared.tasks_executed.load(Ordering::Relaxed),
            steal_attempts: shared.steal_attempts.load(Ordering::Relaxed),
            successful_steals: shared.successful_steals.load(Ordering::Relaxed),
            admissions: shared.admissions.load(Ordering::Relaxed),
            task_panics: shared.task_panics.load(Ordering::Relaxed),
            orphaned_tasks: shared.orphaned_tasks.load(Ordering::Relaxed),
        },
        worker_stats,
        elapsed: base.elapsed(),
        aborted: shared.aborted.load(Ordering::Acquire),
        fault_events,
    };
    match error {
        // A dead thread loses none of the completed-job telemetry: the
        // partial result rides along so supervisors can re-admit only the
        // truly unfinished jobs.
        Some(e) => Err(FailedRun {
            error: e,
            partial: Some(Box::new(result)),
        }),
        None => Ok(result),
    }
}

fn execute(
    p: usize,
    task: Task,
    local: &Deque<Task>,
    shared: &Shared,
    rate_ppm: u32,
    wstats: &mut RtWorkerStats,
) {
    let job = &shared.states[task.job as usize];
    // Tasks of an already-failed job are dropped, not executed.
    if job.is_failed() {
        return;
    }
    match task.kind {
        TaskKind::Spawn { depth } => {
            // Fork: expand into two children on the executing worker's
            // deque (Cilk/TBB spawn semantics; stolen spawns expand on the
            // thief). Spawn strands carry no measurable work themselves.
            let child_kind = if depth <= 1 {
                TaskKind::Chunk
            } else {
                TaskKind::Spawn { depth: depth - 1 }
            };
            for _ in 0..2 {
                local.push(Task {
                    job: task.job,
                    kind: child_kind,
                });
            }
        }
        TaskKind::Chunk => {
            let seq = job.next_seq();
            // Full-width seq: `as u32` here silently recycled panic
            // decisions past 2³² chunks per job (see should_panic_seq).
            let injected =
                job.shape == JobShape::Poison || shared.sampler.should_panic_seq(job.id, seq);
            let started = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if injected {
                    std::panic::panic_any(InjectedPanic);
                }
                spin_kernel(job.iters_per_chunk, job.id as u64 + 1)
            }));
            match outcome {
                Ok(out) => {
                    std::hint::black_box(out);
                    shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
                    wstats.tasks_executed += 1;
                    if rate_ppm < PPM {
                        // Injected slowdown: stretch the chunk so the worker
                        // delivers `rate_ppm`/1e6 of full throughput.
                        let ns = started.elapsed().as_nanos() as u64; // lint: allow(truncating-cast) u64 nanoseconds wrap after ~584 years of run wall-clock
                        let extra =
                            ns.saturating_mul((PPM - rate_ppm) as u64) / rate_ppm.max(1) as u64;
                        std::thread::sleep(Duration::from_nanos(extra.min(10_000_000)));
                    }
                    if job.finish_chunk(shared.base) {
                        shared.job_terminal();
                    }
                }
                Err(_) => {
                    shared.task_panics.fetch_add(1, Ordering::Relaxed);
                    wstats.task_panics += 1;
                    shared.push_event(FaultKind::TaskPanic, Some(p), Some(job.id), seq);
                    if job.fail(shared.base) {
                        shared.job_terminal();
                    }
                }
            }
        }
    }
}

/// Admit one job from the global queue, expanding its chunks onto `local`.
/// Returns false if the queue was empty.
fn try_admit(local: &Deque<Task>, shared: &Shared, wstats: &mut RtWorkerStats) -> bool {
    loop {
        match shared.injector.steal() {
            Steal::Success(ji) => {
                shared.admissions.fetch_add(1, Ordering::Relaxed);
                wstats.admissions += 1;
                let job = &shared.states[ji as usize];
                match job.shape {
                    JobShape::Flat | JobShape::Poison => {
                        for _ in 0..job.chunks {
                            local.push(Task {
                                job: ji,
                                kind: TaskKind::Chunk,
                            });
                        }
                    }
                    JobShape::ForkJoin { depth } => {
                        let kind = if depth == 0 {
                            TaskKind::Chunk
                        } else {
                            TaskKind::Spawn { depth }
                        };
                        local.push(Task { job: ji, kind });
                    }
                }
                return true;
            }
            Steal::Empty => return false,
            Steal::Retry => continue,
        }
    }
}

fn worker_loop(
    p: usize,
    local: &Deque<Task>,
    policy: RtPolicy,
    seed: u64,
    shared: &Shared,
) -> RtWorkerStats {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut wstats = RtWorkerStats::default();
    let mut fails: u32 = 0;
    let mut backoff = Backoff::new();
    let mut was_stalled = false;
    let m = shared.stealers.len();

    // Fault schedule for this worker, rounds mapped to wall-clock.
    let crash_at = shared.faults.crash_round_of(p).map(round_to_duration);
    let rate_ppm = shared.faults.rate_ppm_of(p);
    let stall_windows: Vec<(Duration, Duration)> = shared
        .faults
        .stalls
        .iter()
        .filter(|s| s.worker == p)
        .map(|s| {
            (
                round_to_duration(s.from_round),
                round_to_duration(s.from_round.saturating_add(s.duration)),
            )
        })
        .collect();

    loop {
        let elapsed = shared.base.elapsed();

        // Injected crash: drain the local deque into the orphan queue so
        // survivors adopt the work, then leave service for good.
        if crash_at.is_some_and(|at| elapsed >= at) {
            let mut orphaned = 0u64;
            while let Some(task) = local.pop() {
                shared.orphans.push(task);
                orphaned += 1;
            }
            shared.orphaned_tasks.fetch_add(orphaned, Ordering::Relaxed);
            shared.push_event(FaultKind::Crash, Some(p), None, 0);
            if orphaned > 0 {
                shared.push_event(FaultKind::OrphanReinjection, Some(p), None, orphaned);
            }
            return wstats;
        }

        // Injected stall: freeze inside the window. The deque stays
        // stealable the whole time (the blackhole fault is the separate
        // "deque unreachable" failure mode).
        if let Some(&(_, until)) = stall_windows
            .iter()
            .find(|&&(from, until)| elapsed >= from && elapsed < until)
        {
            if !was_stalled {
                shared.push_event(FaultKind::StallBegin, Some(p), None, 0);
                was_stalled = true;
            }
            if shared.done.load(Ordering::Acquire) {
                return wstats;
            }
            let remaining = until.saturating_sub(shared.base.elapsed());
            std::thread::sleep(remaining.min(Duration::from_micros(200)));
            continue;
        } else if was_stalled {
            shared.push_event(FaultKind::StallEnd, Some(p), None, 0);
            was_stalled = false;
        }

        if let Some(task) = local.pop() {
            fails = 0;
            backoff.reset();
            execute(p, task, local, shared, rate_ppm, &mut wstats);
            continue;
        }

        // Adopt work orphaned by crashed workers before admitting or
        // stealing: reinjected tasks go to the front of the line, exactly
        // like the simulator's global orphan FIFO.
        match shared.orphans.steal() {
            Steal::Success(task) => {
                fails = 0;
                backoff.reset();
                wstats.adopted_orphans += 1;
                execute(p, task, local, shared, rate_ppm, &mut wstats);
                continue;
            }
            Steal::Retry => continue,
            Steal::Empty => {}
        }

        let admit_now = match policy {
            RtPolicy::AdmitFirst => true,
            RtPolicy::StealKFirst { k } => fails >= k,
        };
        if admit_now && try_admit(local, shared, &mut wstats) {
            fails = 0;
            backoff.reset();
            continue;
        }

        // Steal attempt from a random other worker.
        if m > 1 {
            shared.steal_attempts.fetch_add(1, Ordering::Relaxed);
            wstats.steal_attempts += 1;
            let mut victim = rng.gen_range(0..m - 1);
            if victim >= p {
                victim += 1;
            }
            if shared.blackholed[victim] {
                // A blackholed victim consumes the attempt, never yields.
                fails = fails.saturating_add(1);
            } else {
                match shared.stealers[victim].steal() {
                    Steal::Success(task) => {
                        shared.successful_steals.fetch_add(1, Ordering::Relaxed);
                        wstats.successful_steals += 1;
                        fails = 0;
                        backoff.reset();
                        execute(p, task, local, shared, rate_ppm, &mut wstats);
                        continue;
                    }
                    Steal::Empty => {
                        fails = fails.saturating_add(1);
                    }
                    Steal::Retry => {
                        // Lost a race with the victim, which says nothing
                        // about whether work exists: do not let contention
                        // count toward the steal-k admission threshold.
                    }
                }
            }
        } else {
            fails = fails.saturating_add(1);
        }

        // For steal-k-first the threshold may now be reached even though the
        // loop above already tried; without this a single worker (m=1) would
        // never admit.
        if let RtPolicy::StealKFirst { k } = policy {
            if fails >= k && try_admit(local, shared, &mut wstats) {
                fails = 0;
                backoff.reset();
                continue;
            }
        }

        if shared.done.load(Ordering::Acquire) {
            break;
        }
        // Nothing anywhere: back off progressively (spin, then yield, then
        // short parks) so idle workers stay responsive without burning a
        // full core each during long arrival gaps.
        backoff.pause();
    }
    wstats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_workload(n: usize, chunks: usize, iters: u64) -> Vec<(Duration, JobSpec)> {
        (0..n)
            .map(|_| {
                (
                    Duration::ZERO,
                    JobSpec {
                        chunks,
                        iters_per_chunk: iters,
                        shape: crate::task::JobShape::Flat,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn fork_join_jobs_complete() {
        let cfg = RuntimeConfig::new(3, RtPolicy::AdmitFirst);
        let workload: Vec<(Duration, JobSpec)> = (0..8)
            .map(|_| (Duration::ZERO, JobSpec::fork_join(8_000, 4)))
            .collect();
        let r = run_workload(&cfg, &workload);
        assert_eq!(r.jobs.len(), 8);
        // 16 leaves per job; spawn strands are not counted as tasks.
        assert_eq!(r.stats.tasks_executed, 8 * 16);
        assert!(r.jobs.iter().all(|j| j.flow > Duration::ZERO));
        assert!(r.all_completed());
    }

    #[test]
    fn fork_join_and_flat_mix() {
        let cfg = RuntimeConfig::new(2, RtPolicy::StealKFirst { k: 4 });
        let workload = vec![
            (Duration::ZERO, JobSpec::fork_join(4_000, 3)),
            (Duration::ZERO, JobSpec::split(4_000, 4)),
            (Duration::ZERO, JobSpec::fork_join(4_000, 0)),
        ];
        let r = run_workload(&cfg, &workload);
        assert_eq!(r.jobs.len(), 3);
        assert_eq!(r.stats.tasks_executed, 8 + 4 + 1);
    }

    #[test]
    fn empty_workload() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &[]);
        assert!(r.jobs.is_empty());
        assert_eq!(r.max_flow(), Duration::ZERO);
        assert!(!r.aborted);
        assert!(r.fault_events.is_empty());
    }

    #[test]
    fn single_job_completes() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &burst_workload(1, 4, 10_000));
        assert_eq!(r.jobs.len(), 1);
        assert!(r.jobs[0].flow > Duration::ZERO);
        assert_eq!(r.jobs[0].status, JobStatus::Completed);
        assert_eq!(r.stats.tasks_executed, 4);
        assert_eq!(r.stats.admissions, 1);
    }

    #[test]
    fn admit_first_many_jobs() {
        let cfg = RuntimeConfig::new(4, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &burst_workload(32, 8, 2_000));
        assert_eq!(r.jobs.len(), 32);
        assert_eq!(r.stats.tasks_executed, 32 * 8);
        assert_eq!(r.stats.admissions, 32);
        assert!(r.jobs.iter().all(|j| j.flow > Duration::ZERO));
    }

    #[test]
    fn steal_k_first_many_jobs() {
        let cfg = RuntimeConfig::new(4, RtPolicy::StealKFirst { k: 8 });
        let r = run_workload(&cfg, &burst_workload(32, 8, 2_000));
        assert_eq!(r.jobs.len(), 32);
        assert_eq!(r.stats.tasks_executed, 32 * 8);
        assert_eq!(r.stats.admissions, 32);
    }

    #[test]
    fn single_worker_still_completes() {
        let cfg = RuntimeConfig::new(1, RtPolicy::StealKFirst { k: 4 });
        let r = run_workload(&cfg, &burst_workload(4, 2, 1_000));
        assert_eq!(r.jobs.len(), 4);
        assert_eq!(r.stats.tasks_executed, 8);
    }

    #[test]
    fn staggered_arrivals_respected() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let workload = vec![
            (Duration::ZERO, JobSpec::split(200, 2)),
            (Duration::from_millis(5), JobSpec::split(200, 2)),
        ];
        let start = Instant::now();
        let r = run_workload(&cfg, &workload);
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(r.jobs.len(), 2);
        // The second job arrived 5ms in; its flow should be small (machine
        // idle), certainly below the total elapsed time.
        assert!(r.jobs[1].flow <= r.elapsed);
    }

    #[test]
    fn mean_and_max_flow() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &burst_workload(8, 2, 5_000));
        assert!(r.mean_flow() <= r.max_flow());
        assert!(r.max_flow() > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = RuntimeConfig::new(0, RtPolicy::AdmitFirst);
    }

    // ---- fault injection and hardening ----

    #[test]
    fn poison_job_fails_without_hanging_the_run() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let workload = vec![
            (Duration::ZERO, JobSpec::split(2_000, 2)),
            (Duration::ZERO, JobSpec::poison(2_000, 2)),
            (Duration::ZERO, JobSpec::split(2_000, 2)),
        ];
        let r = run_workload(&cfg, &workload);
        assert_eq!(r.jobs.len(), 3);
        assert_eq!(r.jobs[0].status, JobStatus::Completed);
        assert_eq!(r.jobs[1].status, JobStatus::Failed);
        assert_eq!(r.jobs[2].status, JobStatus::Completed);
        assert!(!r.aborted);
        assert!(r.stats.task_panics >= 1);
        assert!(r
            .fault_events
            .iter()
            .any(|e| e.kind == FaultKind::TaskPanic && e.job == Some(1)));
        // The failed job still records a (time-to-failure) flow.
        assert!(r.jobs[1].flow > Duration::ZERO);
    }

    #[test]
    fn panic_ppm_full_fails_every_job() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst)
            .with_faults(FaultPlan::none().with_panic_ppm(PPM));
        let r = run_workload(&cfg, &burst_workload(4, 2, 500));
        assert!(r.jobs.iter().all(|j| j.status == JobStatus::Failed));
        // Every executed chunk panics; a job's sibling chunk may race in
        // on the other worker before the failure flag lands, so anywhere
        // between one and all chunks per job can panic.
        assert!(
            (4..=8).contains(&r.stats.task_panics),
            "{}",
            r.stats.task_panics
        );
        assert_eq!(r.stats.tasks_executed, 0);
    }

    #[test]
    fn crash_at_start_leaves_survivor_to_finish() {
        // Worker 0 crashes before doing anything; the single survivor must
        // finish every job alone.
        let cfg =
            RuntimeConfig::new(2, RtPolicy::AdmitFirst).with_faults(FaultPlan::none().crash(0, 0));
        let r = run_workload(&cfg, &burst_workload(6, 4, 2_000));
        assert!(r.all_completed());
        assert_eq!(r.stats.tasks_executed, 6 * 4);
        assert!(r
            .fault_events
            .iter()
            .any(|e| e.kind == FaultKind::Crash && e.worker == Some(0)));
    }

    #[test]
    fn mid_run_crash_still_completes_all_work() {
        // A straggler arriving at 30 ms keeps the run alive past worker
        // 0's crash at round 100 (10 ms), so the crash is guaranteed to
        // fire mid-run; whatever worker 0 held is reinjected and adopted.
        let mut wl = burst_workload(4, 8, 200_000);
        wl.push((Duration::from_millis(30), JobSpec::split(4_000, 2)));
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst)
            .with_faults(FaultPlan::none().crash(0, 100));
        let r = run_workload(&cfg, &wl);
        assert!(r.all_completed());
        assert_eq!(r.stats.tasks_executed, 4 * 8 + 2);
        assert!(r
            .fault_events
            .iter()
            .any(|e| e.kind == FaultKind::Crash && e.worker == Some(0)));
    }

    #[test]
    fn stalled_worker_does_not_block_completion() {
        // Worker 1 stalls for the first 50 ms (500 rounds); worker 0 does
        // all the work in the meantime.
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst)
            .with_faults(FaultPlan::none().stall(1, 0, 500));
        let r = run_workload(&cfg, &burst_workload(4, 2, 2_000));
        assert!(r.all_completed());
        assert!(r
            .fault_events
            .iter()
            .any(|e| e.kind == FaultKind::StallBegin && e.worker == Some(1)));
    }

    #[test]
    fn watchdog_aborts_unfinishable_run() {
        // One worker, slowed to rate 1 ppm: each chunk stretches ~1e6×
        // (capped at 10 ms of extra sleep per chunk), so a moderately sized
        // job cannot finish before the watchdog fires... but chunk
        // *completions* are progress. To get a genuine no-progress stall,
        // stall the only worker forever instead.
        let cfg = RuntimeConfig::new(1, RtPolicy::AdmitFirst)
            .with_faults(FaultPlan::none().stall(0, 0, u64::MAX / NS_PER_TICK))
            .with_deadline(Duration::from_millis(50));
        let r = run_workload(&cfg, &burst_workload(2, 2, 1_000));
        assert!(r.aborted);
        assert!(r.jobs.iter().all(|j| j.status == JobStatus::Aborted));
        assert!(r.fault_events.iter().any(|e| e.kind == FaultKind::Abort));
    }

    #[test]
    fn watchdog_stays_quiet_on_healthy_runs() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst).with_deadline(Duration::from_secs(5));
        let r = run_workload(&cfg, &burst_workload(8, 2, 1_000));
        assert!(!r.aborted);
        assert!(r.all_completed());
    }

    #[test]
    fn blackholed_victim_yields_no_steals() {
        // All work enters through worker 0 (the only non-blackholed jobs
        // source is admission, and with one big job everything sits in the
        // admitting worker's deque) — with that deque blackholed, no steal
        // ever succeeds.
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst)
            .with_faults(FaultPlan::none().blackhole(0).blackhole(1));
        let r = run_workload(&cfg, &burst_workload(4, 4, 1_000));
        assert!(r.all_completed());
        assert_eq!(r.stats.successful_steals, 0);
    }

    #[test]
    fn invalid_fault_plan_is_an_error() {
        let cfg =
            RuntimeConfig::new(2, RtPolicy::AdmitFirst).with_faults(FaultPlan::none().crash(7, 0));
        match try_run_workload(&cfg, &burst_workload(1, 1, 100)) {
            Err(FailedRun {
                error: RuntimeError::InvalidFaultPlan(msg),
                partial,
            }) => {
                assert!(msg.contains("worker 7"), "{msg}");
                assert!(partial.is_none(), "pre-start failures have no partial");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
    }

    #[test]
    fn failed_run_reports_unfinished_jobs() {
        // A hand-built failure: jobs 0 and 2 finished, 1 and 3 did not.
        // `unfinished_jobs` is the supervisor's re-admission set.
        let jobs = vec![
            (JobStatus::Completed, 0),
            (JobStatus::Aborted, 1),
            (JobStatus::Failed, 2),
            (JobStatus::Aborted, 3),
        ]
        .into_iter()
        .map(|(status, id)| RtJobResult {
            id,
            flow: Duration::ZERO,
            status,
        })
        .collect();
        let partial = RuntimeResult {
            jobs,
            stats: RuntimeStats::default(),
            worker_stats: Vec::new(),
            elapsed: Duration::ZERO,
            aborted: true,
            fault_events: Vec::new(),
        };
        let failed = FailedRun {
            error: RuntimeError::WorkerPanicked(1),
            partial: Some(Box::new(partial)),
        };
        assert_eq!(failed.unfinished_jobs(), vec![1, 3]);
        assert_eq!(failed.to_string(), "worker thread 1 panicked");
        assert_eq!(RuntimeError::from(failed), RuntimeError::WorkerPanicked(1));
        assert!(FailedRun::before_start(RuntimeError::SubmitterPanicked)
            .unfinished_jobs()
            .is_empty());
    }

    #[test]
    fn new_error_variants_display() {
        let io = RuntimeError::Io("listener refused".into());
        assert!(io.to_string().contains("listener refused"));
        let shed = RuntimeError::ShedOverflow { capacity: 64 };
        assert!(shed.to_string().contains("capacity 64"), "{shed}");
        assert!(shed.to_string().contains("shed"));
        // std::error::Error source chain through FailedRun.
        let f = FailedRun::before_start(io.clone());
        let src = std::error::Error::source(&f).expect("source");
        assert_eq!(src.to_string(), io.to_string());
    }

    #[test]
    fn slowdown_stretches_flow() {
        let job = || burst_workload(1, 4, 500_000);
        let fast = run_workload(&RuntimeConfig::new(1, RtPolicy::AdmitFirst), &job());
        let slow = run_workload(
            &RuntimeConfig::new(1, RtPolicy::AdmitFirst)
                .with_faults(FaultPlan::none().slowdown(0, 250_000)),
            &job(),
        );
        assert!(fast.all_completed() && slow.all_completed());
        // Quarter speed adds ~3 chunk-times of sleep per chunk; timing
        // noise makes exact ratios flaky, so only require a clear gap.
        assert!(
            slow.elapsed > fast.elapsed + Duration::from_millis(2),
            "slow {:?} vs fast {:?}",
            slow.elapsed,
            fast.elapsed
        );
    }

    #[test]
    fn retry_does_not_count_toward_steal_k() {
        // Behavioural proxy for the Steal::Retry fix: with a huge k and a
        // single job in the queue, the only path to admission for m=1 is
        // accumulating genuine failures; the run must still finish.
        let cfg = RuntimeConfig::new(1, RtPolicy::StealKFirst { k: 64 });
        let r = run_workload(&cfg, &burst_workload(2, 2, 500));
        assert!(r.all_completed());
    }

    #[test]
    fn worker_stats_partition_aggregates() {
        let cfg = RuntimeConfig::new(3, RtPolicy::StealKFirst { k: 4 });
        let r = run_workload(&cfg, &burst_workload(16, 4, 2_000));
        assert_eq!(r.worker_stats.len(), 3);
        let sum = |f: fn(&RtWorkerStats) -> u64| r.worker_stats.iter().map(f).sum::<u64>();
        assert_eq!(sum(|w| w.tasks_executed), r.stats.tasks_executed);
        assert_eq!(sum(|w| w.steal_attempts), r.stats.steal_attempts);
        assert_eq!(sum(|w| w.successful_steals), r.stats.successful_steals);
        assert_eq!(sum(|w| w.admissions), r.stats.admissions);
        assert_eq!(sum(|w| w.task_panics), r.stats.task_panics);
    }

    #[test]
    fn observe_into_reports_latency_and_counters() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &burst_workload(6, 2, 2_000));
        let mut rec = parflow_obs::AggregatingRecorder::new();
        r.observe_into(&mut rec);
        assert_eq!(
            rec.counter_value("rt.tasks_executed", None),
            r.stats.tasks_executed
        );
        let per_worker: u64 = (0..2)
            .map(|p| rec.counter_value("rt.worker.tasks_executed", Some(p)))
            .sum();
        assert_eq!(per_worker, r.stats.tasks_executed);
        // One latency sample per job, summarized as a histogram.
        assert_eq!(rec.samples("rt.job_flow_ms").len(), 6);
        let report = rec.report();
        assert!(report.histograms.iter().any(|h| h.name == "rt.job_flow_ms"));
        // Disabled recorder: nothing recorded, nothing perturbed.
        let mut null = parflow_obs::NullRecorder;
        r.observe_into(&mut null);
    }

    #[test]
    fn flow_histogram_covers_all_jobs() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &burst_workload(5, 2, 2_000));
        let h = r.flow_histogram(8).expect("non-empty run");
        assert_eq!(h.total(), 5);
        assert_eq!(h.nan(), 0);
        let empty = run_workload(&cfg, &[]);
        assert!(empty.flow_histogram(8).is_none());
    }

    #[test]
    fn fault_free_config_reports_no_events() {
        let cfg = RuntimeConfig::new(2, RtPolicy::StealKFirst { k: 4 });
        let r = run_workload(&cfg, &burst_workload(8, 4, 1_000));
        assert!(r.fault_events.is_empty());
        assert_eq!(r.stats.task_panics, 0);
        assert_eq!(r.stats.orphaned_tasks, 0);
        assert!(!r.aborted);
    }
}
