//! The multithreaded work-stealing executor.
//!
//! This is the systems-level counterpart of the paper's extended-TBB
//! runtime: per-worker crossbeam deques (LIFO for the owner, FIFO steals
//! from the other end), a global `Injector` used as the FIFO admission
//! queue, and the two admission policies:
//!
//! * **admit-first** — a worker whose deque is empty admits a queued job
//!   whenever one exists and steals only otherwise;
//! * **steal-k-first** — it first makes up to `k` random steal attempts and
//!   admits only after `k` consecutive failures.
//!
//! On admission the worker expands the job's parallel-for into chunk tasks
//! pushed onto its own deque (TBB/Cilk spawn semantics) and immediately
//! executes one.

use crate::task::{spin_kernel, JobShape, JobSpec, JobState, Task, TaskKind};
use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Admission policy of the real runtime (mirrors
/// `parflow_core::StealPolicy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtPolicy {
    /// Admit whenever the global queue is non-empty; steal otherwise.
    AdmitFirst,
    /// Admit only after `k` consecutive failed steal attempts.
    StealKFirst {
        /// Failed-steal threshold.
        k: u32,
    },
}

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Admission policy.
    pub policy: RtPolicy,
    /// RNG seed for victim selection.
    pub seed: u64,
}

impl RuntimeConfig {
    /// `workers` threads with the given policy.
    pub fn new(workers: usize, policy: RtPolicy) -> Self {
        assert!(workers > 0, "need at least one worker");
        RuntimeConfig {
            workers,
            policy,
            seed: 0x5eed,
        }
    }
}

/// Per-run statistics aggregated across workers.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeStats {
    /// Chunk tasks executed.
    pub tasks_executed: u64,
    /// Steal attempts (successful + failed).
    pub steal_attempts: u64,
    /// Successful steals.
    pub successful_steals: u64,
    /// Jobs admitted from the global queue.
    pub admissions: u64,
}

/// Result of one job in a runtime run.
#[derive(Clone, Copy, Debug)]
pub struct RtJobResult {
    /// Job index (submission order).
    pub id: u32,
    /// Wall-clock flow time.
    pub flow: Duration,
}

/// Outcome of a whole workload run.
#[derive(Clone, Debug)]
pub struct RuntimeResult {
    /// Per-job results, in submission order.
    pub jobs: Vec<RtJobResult>,
    /// Aggregated counters.
    pub stats: RuntimeStats,
    /// Total wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RuntimeResult {
    /// Maximum flow time over all jobs.
    pub fn max_flow(&self) -> Duration {
        self.jobs.iter().map(|j| j.flow).max().unwrap_or_default()
    }

    /// Mean flow time.
    pub fn mean_flow(&self) -> Duration {
        if self.jobs.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.jobs.iter().map(|j| j.flow).sum();
        total / self.jobs.len() as u32
    }
}

struct Shared {
    injector: Injector<Arc<JobState>>,
    stealers: Vec<Stealer<Task>>,
    done: AtomicBool,
    completed: AtomicUsize,
    total_jobs: usize,
    base: Instant,
    tasks_executed: AtomicU64,
    steal_attempts: AtomicU64,
    successful_steals: AtomicU64,
    admissions: AtomicU64,
}

/// Run a workload: `(arrival offset, spec)` pairs, offsets non-decreasing.
///
/// Spawns `config.workers` worker threads plus a submitter thread that
/// releases jobs at their arrival offsets; blocks until every job
/// completes and returns per-job wall-clock flow times.
pub fn run_workload(
    config: &RuntimeConfig,
    workload: &[(Duration, JobSpec)],
) -> RuntimeResult {
    let n = workload.len();
    let deques: Vec<Deque<Task>> = (0..config.workers).map(|_| Deque::new_lifo()).collect();
    let stealers: Vec<Stealer<Task>> = deques.iter().map(|d| d.stealer()).collect();
    let base = Instant::now();
    let shared = Arc::new(Shared {
        injector: Injector::new(),
        stealers,
        done: AtomicBool::new(n == 0),
        completed: AtomicUsize::new(0),
        total_jobs: n,
        base,
        tasks_executed: AtomicU64::new(0),
        steal_attempts: AtomicU64::new(0),
        successful_steals: AtomicU64::new(0),
        admissions: AtomicU64::new(0),
    });

    let states: Vec<Arc<JobState>> = workload
        .iter()
        .enumerate()
        .map(|(i, &(_, spec))| Arc::new(JobState::new(i as u32, spec)))
        .collect();

    // The submitter releases jobs at their arrival offsets.
    let submitter = {
        let shared = Arc::clone(&shared);
        let states = states.clone();
        let offsets: Vec<Duration> = workload.iter().map(|&(d, _)| d).collect();
        std::thread::spawn(move || {
            for (state, offset) in states.into_iter().zip(offsets) {
                let target = shared.base + offset;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                state
                    .arrival_ns
                    .store(shared.base.elapsed().as_nanos() as u64, Ordering::Release);
                shared.injector.push(state);
            }
        })
    };

    // Worker threads.
    let mut handles = Vec::with_capacity(config.workers);
    let deques: Vec<Mutex<Option<Deque<Task>>>> =
        deques.into_iter().map(|d| Mutex::new(Some(d))).collect();
    let deques = Arc::new(deques);
    for p in 0..config.workers {
        let shared = Arc::clone(&shared);
        let deques = Arc::clone(&deques);
        let policy = config.policy;
        let seed = config.seed.wrapping_add(p as u64);
        handles.push(std::thread::spawn(move || {
            let local = deques[p].lock().take().expect("deque taken once");
            worker_loop(p, &local, policy, seed, &shared);
        }));
    }

    submitter.join().expect("submitter thread panicked");
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let jobs = states
        .iter()
        .map(|s| RtJobResult {
            id: s.id,
            flow: Duration::from_nanos(s.flow_ns().expect("job completed")),
        })
        .collect();
    RuntimeResult {
        jobs,
        stats: RuntimeStats {
            tasks_executed: shared.tasks_executed.load(Ordering::Relaxed),
            steal_attempts: shared.steal_attempts.load(Ordering::Relaxed),
            successful_steals: shared.successful_steals.load(Ordering::Relaxed),
            admissions: shared.admissions.load(Ordering::Relaxed),
        },
        elapsed: base.elapsed(),
    }
}

fn execute(task: Task, local: &Deque<Task>, shared: &Shared) {
    match task.kind {
        TaskKind::Spawn { depth } => {
            // Fork: expand into two children on the executing worker's
            // deque (Cilk/TBB spawn semantics; stolen spawns expand on the
            // thief). Spawn strands carry no measurable work themselves.
            let child_kind = if depth <= 1 {
                TaskKind::Chunk
            } else {
                TaskKind::Spawn { depth: depth - 1 }
            };
            for _ in 0..2 {
                local.push(Task {
                    job: Arc::clone(&task.job),
                    kind: child_kind,
                });
            }
        }
        TaskKind::Chunk => {
            let out = spin_kernel(task.job.iters_per_chunk, task.job.id as u64 + 1);
            std::hint::black_box(out);
            shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
            if task.job.finish_chunk(shared.base) {
                let done = shared.completed.fetch_add(1, Ordering::AcqRel) + 1;
                if done == shared.total_jobs {
                    shared.done.store(true, Ordering::Release);
                }
            }
        }
    }
}

/// Admit one job from the global queue, expanding its chunks onto `local`.
/// Returns false if the queue was empty.
fn try_admit(local: &Deque<Task>, shared: &Shared) -> bool {
    loop {
        match shared.injector.steal() {
            Steal::Success(job) => {
                shared.admissions.fetch_add(1, Ordering::Relaxed);
                match job.shape {
                    JobShape::Flat => {
                        for _ in 0..job.chunks {
                            local.push(Task {
                                job: Arc::clone(&job),
                                kind: TaskKind::Chunk,
                            });
                        }
                    }
                    JobShape::ForkJoin { depth } => {
                        let kind = if depth == 0 {
                            TaskKind::Chunk
                        } else {
                            TaskKind::Spawn { depth }
                        };
                        local.push(Task {
                            job: Arc::clone(&job),
                            kind,
                        });
                    }
                }
                return true;
            }
            Steal::Empty => return false,
            Steal::Retry => continue,
        }
    }
}

fn worker_loop(p: usize, local: &Deque<Task>, policy: RtPolicy, seed: u64, shared: &Shared) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fails: u32 = 0;
    let m = shared.stealers.len();
    loop {
        if let Some(task) = local.pop() {
            fails = 0;
            execute(task, local, shared);
            continue;
        }

        let admit_now = match policy {
            RtPolicy::AdmitFirst => true,
            RtPolicy::StealKFirst { k } => fails >= k,
        };
        if admit_now && try_admit(local, shared) {
            fails = 0;
            continue;
        }

        // Steal attempt from a random other worker.
        if m > 1 {
            shared.steal_attempts.fetch_add(1, Ordering::Relaxed);
            let mut victim = rng.gen_range(0..m - 1);
            if victim >= p {
                victim += 1;
            }
            match shared.stealers[victim].steal() {
                Steal::Success(task) => {
                    shared.successful_steals.fetch_add(1, Ordering::Relaxed);
                    fails = 0;
                    execute(task, local, shared);
                    continue;
                }
                Steal::Empty | Steal::Retry => {
                    fails = fails.saturating_add(1);
                }
            }
        } else {
            fails = fails.saturating_add(1);
        }

        // For steal-k-first the threshold may now be reached even though the
        // loop above already tried; without this a single worker (m=1) would
        // never admit.
        if let RtPolicy::StealKFirst { k } = policy {
            if fails >= k && try_admit(local, shared) {
                fails = 0;
                continue;
            }
        }

        if shared.done.load(Ordering::Acquire) {
            break;
        }
        // Back off a little once the system looks drained to avoid burning
        // a full core per worker during long arrival gaps.
        if fails > 0 && fails.is_multiple_of(1024) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_workload(n: usize, chunks: usize, iters: u64) -> Vec<(Duration, JobSpec)> {
        (0..n)
            .map(|_| {
                (
                    Duration::ZERO,
                    JobSpec {
                        chunks,
                        iters_per_chunk: iters,
                        shape: crate::task::JobShape::Flat,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn fork_join_jobs_complete() {
        let cfg = RuntimeConfig::new(3, RtPolicy::AdmitFirst);
        let workload: Vec<(Duration, JobSpec)> = (0..8)
            .map(|_| (Duration::ZERO, JobSpec::fork_join(8_000, 4)))
            .collect();
        let r = run_workload(&cfg, &workload);
        assert_eq!(r.jobs.len(), 8);
        // 16 leaves per job; spawn strands are not counted as tasks.
        assert_eq!(r.stats.tasks_executed, 8 * 16);
        assert!(r.jobs.iter().all(|j| j.flow > Duration::ZERO));
    }

    #[test]
    fn fork_join_and_flat_mix() {
        let cfg = RuntimeConfig::new(2, RtPolicy::StealKFirst { k: 4 });
        let workload = vec![
            (Duration::ZERO, JobSpec::fork_join(4_000, 3)),
            (Duration::ZERO, JobSpec::split(4_000, 4)),
            (Duration::ZERO, JobSpec::fork_join(4_000, 0)),
        ];
        let r = run_workload(&cfg, &workload);
        assert_eq!(r.jobs.len(), 3);
        assert_eq!(r.stats.tasks_executed, 8 + 4 + 1);
    }

    #[test]
    fn empty_workload() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &[]);
        assert!(r.jobs.is_empty());
        assert_eq!(r.max_flow(), Duration::ZERO);
    }

    #[test]
    fn single_job_completes() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &burst_workload(1, 4, 10_000));
        assert_eq!(r.jobs.len(), 1);
        assert!(r.jobs[0].flow > Duration::ZERO);
        assert_eq!(r.stats.tasks_executed, 4);
        assert_eq!(r.stats.admissions, 1);
    }

    #[test]
    fn admit_first_many_jobs() {
        let cfg = RuntimeConfig::new(4, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &burst_workload(32, 8, 2_000));
        assert_eq!(r.jobs.len(), 32);
        assert_eq!(r.stats.tasks_executed, 32 * 8);
        assert_eq!(r.stats.admissions, 32);
        assert!(r.jobs.iter().all(|j| j.flow > Duration::ZERO));
    }

    #[test]
    fn steal_k_first_many_jobs() {
        let cfg = RuntimeConfig::new(4, RtPolicy::StealKFirst { k: 8 });
        let r = run_workload(&cfg, &burst_workload(32, 8, 2_000));
        assert_eq!(r.jobs.len(), 32);
        assert_eq!(r.stats.tasks_executed, 32 * 8);
        assert_eq!(r.stats.admissions, 32);
    }

    #[test]
    fn single_worker_still_completes() {
        let cfg = RuntimeConfig::new(1, RtPolicy::StealKFirst { k: 4 });
        let r = run_workload(&cfg, &burst_workload(4, 2, 1_000));
        assert_eq!(r.jobs.len(), 4);
        assert_eq!(r.stats.tasks_executed, 8);
    }

    #[test]
    fn staggered_arrivals_respected() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let workload = vec![
            (Duration::ZERO, JobSpec::split(200, 2)),
            (
                Duration::from_millis(5),
                JobSpec::split(200, 2),
            ),
        ];
        let start = Instant::now();
        let r = run_workload(&cfg, &workload);
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(r.jobs.len(), 2);
        // The second job arrived 5ms in; its flow should be small (machine
        // idle), certainly below the total elapsed time.
        assert!(r.jobs[1].flow <= r.elapsed);
    }

    #[test]
    fn mean_and_max_flow() {
        let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
        let r = run_workload(&cfg, &burst_workload(8, 2, 5_000));
        assert!(r.mean_flow() <= r.max_flow());
        assert!(r.max_flow() > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = RuntimeConfig::new(0, RtPolicy::AdmitFirst);
    }
}
