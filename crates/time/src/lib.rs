//! # parflow-time
//!
//! Exact time arithmetic for the parflow scheduling simulator.
//!
//! The SPAA 2016 paper analyzes schedulers under *resource augmentation*: the
//! algorithm runs at speed `s = 1 + ε` while the optimal schedule runs at
//! speed 1. Its execution model is discrete: one *time step* (here: *round*)
//! is the time in which an s-speed processor executes one unit of work, so a
//! speed-`s` schedule packs `s·T` rounds into `T` wall-clock ticks.
//!
//! This crate provides:
//!
//! * [`Rational`] — exact rational arithmetic (`i128` num/den) used for all
//!   wall-time and flow-time values;
//! * [`Speed`] — an exact `num/den` processor speed with the round ↔
//!   wall-time conversions and arrival-availability tests the engine needs.
//!
//! Keeping this exact (rather than `f64`) makes simulations bit-reproducible
//! and lets property tests state invariants as equalities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rational;
mod speed;

pub use rational::{gcd, lcm, Rational};
pub use speed::{Round, Speed, Ticks};

/// Work measured in integer units: the time a unit-speed processor needs to
/// process it equals the number of units.
pub type Work = u64;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rational() -> impl Strategy<Value = Rational> {
        (-1_000_000i128..1_000_000, 1i128..1_000_000).prop_map(|(n, d)| Rational::new(n, d))
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn add_associates(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn mul_commutes(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn distributive(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn sub_inverse(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!((a + b) - b, a);
        }

        #[test]
        fn div_inverse(a in arb_rational(), b in arb_rational()) {
            prop_assume!(!b.is_zero());
            prop_assert_eq!((a * b) / b, a);
        }

        #[test]
        fn normalized_invariant(a in arb_rational()) {
            prop_assert!(a.den() > 0);
            if !a.is_zero() {
                prop_assert_eq!(gcd(a.num(), a.den()), 1);
            }
        }

        #[test]
        fn floor_ceil_bracket(a in arb_rational()) {
            let f = Rational::from_int(a.floor());
            let c = Rational::from_int(a.ceil());
            prop_assert!(f <= a && a <= c);
            prop_assert!(c - f <= Rational::ONE);
        }

        #[test]
        fn ordering_consistent_with_f64(a in arb_rational(), b in arb_rational()) {
            // f64 has enough precision for these small operands.
            let (x, y) = (a.to_f64(), b.to_f64());
            if (x - y).abs() > 1e-6 {
                prop_assert_eq!(a < b, x < y);
            }
        }

        #[test]
        fn speed_round_trip(num in 1u64..100, den in 1u64..100, r in 0u64..10_000) {
            let s = Speed::new(num, den);
            // round_start(r) is monotone in r and round_end(r) == round_start(r+1)
            prop_assert!(s.round_start(r) < s.round_end(r));
            prop_assert_eq!(s.round_end(r), s.round_start(r + 1));
        }

        #[test]
        fn speed_availability_monotone(num in 1u64..100, den in 1u64..100,
                                       arrival in 0u64..10_000, r in 0u64..20_000) {
            let s = Speed::new(num, den);
            if s.arrived_by_round(arrival, r) {
                prop_assert!(s.arrived_by_round(arrival, r + 1));
            }
        }

        #[test]
        fn flow_time_positive(num in 1u64..100, den in 1u64..100,
                              arrival in 0u64..1_000) {
            let s = Speed::new(num, den);
            let r0 = s.first_round_at_or_after(arrival);
            // finishing in the first available round yields positive flow
            prop_assert!(s.flow_time(arrival, r0).is_positive());
        }
    }
}
