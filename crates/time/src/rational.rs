//! Exact rational arithmetic used throughout the simulator.
//!
//! The scheduling engine works in integer *rounds*; converting a round count
//! at speed `s = num/den` back to wall-clock time produces rationals. Doing
//! this conversion exactly (instead of in `f64`) keeps every simulation
//! bit-deterministic and lets property tests assert equalities rather than
//! approximate comparisons.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Greatest common divisor (non-negative result).
#[inline]
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Panics on overflow.
#[inline]
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// An exact rational number with `i128` numerator and denominator.
///
/// Invariants: the denominator is strictly positive and `gcd(num, den) == 1`.
/// Arithmetic panics on overflow (the simulator's magnitudes — work in units,
/// times in ticks — stay far below `i128` range, so overflow indicates a bug).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Create a new rational `num/den`. Panics if `den == 0`.
    #[inline]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        // Integer fast path: already normalized, skip the gcd entirely.
        // This is the dominant case in the engines (unit speed, integer
        // rounds), so it pays to special-case it.
        if den == 1 {
            return Rational { num, den: 1 };
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Rational { num: 0, den: 1 };
        }
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Construct from an integer.
    #[inline]
    pub fn from_int(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    /// Numerator (normalized; carries the sign).
    #[inline]
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (normalized; strictly positive).
    #[inline]
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Convert to `f64` for reporting. Exact representation is kept
    /// internally; this is only for human-facing output.
    #[inline]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True if the value is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True if strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Floor to an integer.
    #[inline]
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to an integer.
    #[inline]
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Absolute value.
    #[inline]
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The reciprocal. Panics if the value is zero.
    #[inline]
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// `self * n / d` in one normalized step.
    #[inline]
    pub fn mul_ratio(&self, n: i128, d: i128) -> Rational {
        Rational::new(
            self.num.checked_mul(n).expect("rational overflow"),
            self.den.checked_mul(d).expect("rational overflow"),
        )
    }

    /// Best rational approximation of `x` with denominator at most
    /// `max_den`, via continued fractions. Useful for turning measured
    /// floating-point quantities (e.g. an empirical ε) into the exact
    /// [`Rational`]/`Speed` values the engine requires.
    ///
    /// ```
    /// use parflow_time::Rational;
    /// assert_eq!(Rational::approximate(std::f64::consts::PI, 10),
    ///            Rational::new(22, 7));
    /// assert_eq!(Rational::approximate(0.1, 100), Rational::new(1, 10));
    /// ```
    ///
    /// Panics if `x` is not finite.
    pub fn approximate(x: f64, max_den: i128) -> Rational {
        assert!(x.is_finite(), "cannot approximate a non-finite value");
        assert!(max_den >= 1);
        let negative = x < 0.0;
        let mut x = x.abs();
        // Convergents h/k of the continued fraction expansion.
        let (mut h0, mut k0, mut h1, mut k1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a >= 1e30 {
                break;
            }
            let ai = a as i128;
            let h2 = ai.saturating_mul(h1).saturating_add(h0);
            let k2 = ai.saturating_mul(k1).saturating_add(k0);
            if k2 > max_den {
                break;
            }
            h0 = h1;
            k0 = k1;
            h1 = h2;
            k1 = k2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if k1 == 0 {
            return Rational::ZERO;
        }
        let r = Rational::new(h1, k1);
        if negative {
            -r
        } else {
            r
        }
    }

    /// Minimum of two rationals.
    #[inline]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    #[inline]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialEq for Rational {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Normalized representation makes structural equality correct.
        self.num == other.num && self.den == other.den
    }
}

impl Eq for Rational {}

impl PartialOrd for Rational {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Equal denominators (notably den == 1 on both sides) order by
        // numerator alone — no multiplication, no overflow risk.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        let lhs = self.num.checked_mul(other.den).expect("rational overflow");
        let rhs = other.num.checked_mul(self.den).expect("rational overflow");
        lhs.cmp(&rhs)
    }
}

impl std::hash::Hash for Rational {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl Add for Rational {
    type Output = Rational;
    #[inline]
    fn add(self, rhs: Rational) -> Rational {
        // Integer + integer: plain checked add, result already normalized.
        if self.den == 1 && rhs.den == 1 {
            return Rational {
                num: self.num.checked_add(rhs.num).expect("rational overflow"),
                den: 1,
            };
        }
        // Same denominator: add numerators and reduce once against the
        // shared denominator — one gcd on small operands instead of a
        // cross-multiplied construction.
        if self.den == rhs.den {
            let num = self.num.checked_add(rhs.num).expect("rational overflow");
            let g = gcd(num, self.den);
            if g <= 1 {
                return Rational { num, den: self.den };
            }
            return Rational {
                num: num / g,
                den: self.den / g,
            };
        }
        Rational::new(
            self.num
                .checked_mul(rhs.den)
                .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
                .expect("rational overflow"),
            self.den.checked_mul(rhs.den).expect("rational overflow"),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    #[inline]
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    #[inline]
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    #[inline]
    fn mul(self, rhs: Rational) -> Rational {
        // Integer × integer: plain checked multiply, already normalized.
        if self.den == 1 && rhs.den == 1 {
            return Rational {
                num: self.num.checked_mul(rhs.num).expect("rational overflow"),
                den: 1,
            };
        }
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rational::new(
            (self.num / g1)
                .checked_mul(rhs.num / g2)
                .expect("rational overflow"),
            (self.den / g2)
                .checked_mul(rhs.den / g1)
                .expect("rational overflow"),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b == a * (1/b) by definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl AddAssign for Rational {
    #[inline]
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    #[inline]
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational::from_int(v)
    }
}

impl From<u64> for Rational {
    fn from(v: u64) -> Self {
        Rational::from_int(v as i128)
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v as i128)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(7, 13), 91);
    }

    #[test]
    fn normalization() {
        let r = Rational::new(6, 8);
        assert_eq!(r.num(), 3);
        assert_eq!(r.den(), 4);
        let r = Rational::new(-6, 8);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 4);
        let r = Rational::new(6, -8);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 4);
        let r = Rational::new(-6, -8);
        assert_eq!(r.num(), 3);
        assert_eq!(r.den(), 4);
        let r = Rational::new(0, -5);
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.den(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn add_sub() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(b - a, Rational::new(-1, 6));
    }

    #[test]
    fn mul_div() {
        let a = Rational::new(2, 3);
        let b = Rational::new(9, 4);
        assert_eq!(a * b, Rational::new(3, 2));
        assert_eq!(a / b, Rational::new(8, 27));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(2, 4) == Rational::new(1, 2));
        assert!(Rational::new(7, 2) > Rational::from_int(3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip(), Rational::new(-4, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn to_f64() {
        assert!((Rational::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
        assert!((Rational::new(-3, 2).to_f64() + 1.5).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::from_int(7).to_string(), "7");
        assert_eq!(Rational::new(-6, 8).to_string(), "-3/4");
    }

    #[test]
    fn min_max() {
        let a = Rational::new(1, 2);
        let b = Rational::new(2, 3);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn approximate_exact_fractions() {
        assert_eq!(Rational::approximate(0.5, 100), Rational::new(1, 2));
        assert_eq!(Rational::approximate(0.25, 100), Rational::new(1, 4));
        assert_eq!(Rational::approximate(1.5, 100), Rational::new(3, 2));
        assert_eq!(Rational::approximate(-0.75, 100), Rational::new(-3, 4));
        assert_eq!(Rational::approximate(7.0, 100), Rational::from_int(7));
        assert_eq!(Rational::approximate(0.0, 100), Rational::ZERO);
    }

    #[test]
    fn approximate_pi_convergents() {
        // Classic: 22/7 and 355/113.
        assert_eq!(
            Rational::approximate(std::f64::consts::PI, 10),
            Rational::new(22, 7)
        );
        assert_eq!(
            Rational::approximate(std::f64::consts::PI, 200),
            Rational::new(355, 113)
        );
    }

    #[test]
    fn approximate_respects_max_den() {
        for max_den in [1i128, 7, 50, 1000] {
            let r = Rational::approximate(0.1234567, max_den);
            assert!(r.den() <= max_den, "den {} > {max_den}", r.den());
            assert!((r.to_f64() - 0.1234567).abs() <= 1.0 / max_den as f64);
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn approximate_nan_panics() {
        let _ = Rational::approximate(f64::NAN, 10);
    }

    #[test]
    fn mul_ratio() {
        let a = Rational::new(3, 5);
        assert_eq!(a.mul_ratio(10, 9), Rational::new(2, 3));
    }

    #[test]
    fn fast_paths_match_generic() {
        // Integer/same-den fast paths must agree with the generic route
        // (construct via new() with un-normalized inputs to force it).
        for (a, b) in [(3i128, 4i128), (-7, 2), (0, 5), (100, -100)] {
            let fast = Rational::from_int(a) + Rational::from_int(b);
            let slow = Rational::new(a * 6, 6) + Rational::new(b * 6, 6);
            assert_eq!(fast, slow);
            let fast = Rational::from_int(a) * Rational::from_int(b);
            let slow = Rational::new(a * 6, 6) * Rational::new(b * 6, 6);
            assert_eq!(fast, slow);
        }
        // Same-denominator adds reduce fully: 1/4 + 1/4 = 1/2.
        assert_eq!(
            Rational::new(1, 4) + Rational::new(1, 4),
            Rational::new(1, 2)
        );
        // Same-denominator adds that cancel to an integer.
        assert_eq!(Rational::new(1, 3) + Rational::new(2, 3), Rational::ONE);
        assert_eq!(Rational::new(5, 6) + Rational::new(-5, 6), Rational::ZERO);
        // Same-denominator ordering.
        assert!(Rational::new(2, 7) < Rational::new(3, 7));
        assert!(Rational::from_int(-2) < Rational::from_int(3));
    }

    #[test]
    fn integer_predicates() {
        assert!(Rational::new(8, 4).is_integer());
        assert!(!Rational::new(8, 3).is_integer());
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::ONE.is_positive());
        assert!((-Rational::ONE).is_negative());
    }
}
