//! Processor speed with resource augmentation, and the round ↔ wall-time map.
//!
//! Following the paper (Section 3): *"We define one time step as the time
//! period for an s-speed processor to execute one unit of work. In other
//! words, in one time step m processors with speed s can finish m work of
//! jobs."* The engine therefore advances in integer **rounds**; round `r` of
//! a speed-`s = num/den` schedule occupies the wall-clock interval
//! `[r·den/num, (r+1)·den/num)`.
//!
//! All availability tests ("has job J arrived by the start of round r?") and
//! all flow-time computations are done exactly with integer cross
//! multiplication, so no floating point enters the engine.

use crate::rational::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Wall-clock time measured in integer ticks (the unit in which arrival
/// times are specified and in which a speed-1 processor executes exactly one
/// unit of work per tick).
pub type Ticks = u64;

/// A scheduling round index (one unit of work per processor per round).
pub type Round = u64;

/// Processor speed expressed as the exact ratio `num/den > 0`.
///
/// Resource augmentation `s = 1 + ε` with rational `ε` is constructed via
/// [`Speed::augmented`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Speed {
    num: u64,
    den: u64,
}

impl Speed {
    /// Unit speed (no augmentation): the speed the optimal schedule runs at.
    pub const ONE: Speed = Speed { num: 1, den: 1 };

    /// Create a speed `num/den`. Panics if either part is zero.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "speed must be positive");
        let g = crate::rational::gcd(num as i128, den as i128) as u64;
        Speed {
            num: num / g,
            den: den / g,
        }
    }

    /// The speed `1 + eps` where `eps = eps_num / eps_den`.
    ///
    /// ```
    /// use parflow_time::Speed;
    /// assert_eq!(Speed::augmented(1, 10), Speed::new(11, 10)); // 1 + 1/10
    /// assert_eq!(Speed::augmented(0, 5), Speed::ONE);
    /// ```
    pub fn augmented(eps_num: u64, eps_den: u64) -> Self {
        assert!(eps_den > 0, "epsilon denominator must be positive");
        Speed::new(eps_den + eps_num, eps_den)
    }

    /// Integer speed `s`.
    pub fn integer(s: u64) -> Self {
        Speed::new(s, 1)
    }

    /// Numerator of the normalized ratio.
    #[inline]
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Denominator of the normalized ratio.
    #[inline]
    pub fn den(&self) -> u64 {
        self.den
    }

    /// The speed as an exact rational.
    #[inline]
    pub fn as_rational(&self) -> Rational {
        Rational::new(self.num as i128, self.den as i128)
    }

    /// The speed as `f64`, for reporting only.
    #[inline]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Wall-clock time at which round `r` starts: `r · den / num`.
    #[inline]
    pub fn round_start(&self, r: Round) -> Rational {
        // Integer speeds produce integer round boundaries; skip the
        // rational normalization (this sits under every flow-time
        // computation the engines make).
        if self.num == 1 {
            return Rational::from_int(r as i128 * self.den as i128);
        }
        Rational::new(r as i128 * self.den as i128, self.num as i128)
    }

    /// Wall-clock time at which round `r` ends (start of round `r+1`).
    #[inline]
    pub fn round_end(&self, r: Round) -> Rational {
        self.round_start(r + 1)
    }

    /// True iff a job arriving at wall-clock tick `arrival` is available at
    /// the *start* of round `r`, i.e. `arrival ≤ r·den/num`.
    #[inline]
    pub fn arrived_by_round(&self, arrival: Ticks, r: Round) -> bool {
        (arrival as u128) * (self.num as u128) <= (r as u128) * (self.den as u128)
    }

    /// The first round whose start time is `≥ arrival`:
    /// `ceil(arrival · num / den)`.
    #[inline]
    pub fn first_round_at_or_after(&self, arrival: Ticks) -> Round {
        let n = (arrival as u128) * (self.num as u128);
        let d = self.den as u128;
        n.div_ceil(d) as Round
    }

    /// Flow time of a job that arrived at tick `arrival` and whose last unit
    /// of work completed during round `last_round` (completion time is the
    /// *end* of that round).
    #[inline]
    pub fn flow_time(&self, arrival: Ticks, last_round: Round) -> Rational {
        self.round_end(last_round) - Rational::from_int(arrival as i128)
    }

    /// Number of complete rounds that fit in `t` wall-clock ticks:
    /// `floor(t · num / den)`.
    #[inline]
    pub fn rounds_in(&self, t: Ticks) -> Round {
        ((t as u128 * self.num as u128) / self.den as u128) as Round
    }
}

impl Default for Speed {
    fn default() -> Self {
        Speed::ONE
    }
}

impl fmt::Display for Speed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}x", self.num)
        } else {
            write!(f, "{}/{}x", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        let s = Speed::new(6, 4);
        assert_eq!(s.num(), 3);
        assert_eq!(s.den(), 2);
        assert_eq!(s, Speed::new(3, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_panics() {
        let _ = Speed::new(0, 1);
    }

    #[test]
    fn augmented_speed() {
        // 1 + 1/10 = 11/10
        let s = Speed::augmented(1, 10);
        assert_eq!(s.num(), 11);
        assert_eq!(s.den(), 10);
        // 1 + 0 = 1
        assert_eq!(Speed::augmented(0, 7), Speed::ONE);
        // 1 + 2 = 3
        assert_eq!(Speed::augmented(2, 1), Speed::integer(3));
    }

    #[test]
    fn round_boundaries_unit_speed() {
        let s = Speed::ONE;
        assert_eq!(s.round_start(0), Rational::ZERO);
        assert_eq!(s.round_start(5), Rational::from_int(5));
        assert_eq!(s.round_end(5), Rational::from_int(6));
    }

    #[test]
    fn round_boundaries_augmented() {
        // speed 11/10: round r starts at 10r/11.
        let s = Speed::new(11, 10);
        assert_eq!(s.round_start(11), Rational::from_int(10));
        assert_eq!(s.round_start(1), Rational::new(10, 11));
    }

    #[test]
    fn arrival_availability() {
        let s = Speed::new(11, 10);
        // Job arriving at tick 10 is available exactly at round 11 start.
        assert!(s.arrived_by_round(10, 11));
        assert!(!s.arrived_by_round(10, 10));
        assert_eq!(s.first_round_at_or_after(10), 11);
        // Arrival at 0 is available from round 0.
        assert!(s.arrived_by_round(0, 0));
        assert_eq!(s.first_round_at_or_after(0), 0);
    }

    #[test]
    fn first_round_consistent_with_arrived_by() {
        for (num, den) in [(1, 1), (11, 10), (3, 2), (21, 20), (2, 1), (5, 3)] {
            let s = Speed::new(num, den);
            for arrival in [0u64, 1, 2, 3, 7, 10, 100, 1000] {
                let r0 = s.first_round_at_or_after(arrival);
                assert!(s.arrived_by_round(arrival, r0), "{s} arrival {arrival}");
                if r0 > 0 {
                    assert!(
                        !s.arrived_by_round(arrival, r0 - 1),
                        "{s} arrival {arrival}"
                    );
                }
            }
        }
    }

    #[test]
    fn flow_time_unit_speed() {
        let s = Speed::ONE;
        // Arrive at 3, finish during round 7 → completion 8, flow 5.
        assert_eq!(s.flow_time(3, 7), Rational::from_int(5));
    }

    #[test]
    fn flow_time_augmented() {
        let s = Speed::new(3, 2); // rounds are 2/3 wall ticks long
                                  // Finish during round 2 → completion (3)·2/3 = 2; arrived at 0 → flow 2.
        assert_eq!(s.flow_time(0, 2), Rational::from_int(2));
        // Finish during round 0 → completion 2/3.
        assert_eq!(s.flow_time(0, 0), Rational::new(2, 3));
    }

    #[test]
    fn rounds_in_window() {
        let s = Speed::new(3, 2);
        // 2 ticks of wall time contain 3 rounds at speed 3/2.
        assert_eq!(s.rounds_in(2), 3);
        assert_eq!(Speed::ONE.rounds_in(7), 7);
    }

    #[test]
    fn display() {
        assert_eq!(Speed::ONE.to_string(), "1x");
        assert_eq!(Speed::new(11, 10).to_string(), "11/10x");
        assert_eq!(Speed::integer(2).to_string(), "2x");
    }
}
