//! Chaos suite: kill workers mid-stream and prove the service's two core
//! promises hold anyway.
//!
//! 1. **Exactly-once**: no admitted job is lost and none is counted
//!    twice, across worker deaths, restarts and re-admission races.
//! 2. **Digest determinism**: the merged report is byte-identical for the
//!    same seed and submission stream regardless of worker count (1, 2,
//!    8), across reruns, and regardless of whether chaos (count-based
//!    kills, poisoned submissions) fired along the way.

use parflow_serve::admission::Outcome;
use parflow_serve::protocol::Submission;
use parflow_serve::supervisor::{FaultSpec, ServeConfig, ServeReport, Supervisor};

/// A deterministic 120-job stream: xorshift arrivals/works, no clocks.
fn stream(poison_every: u64) -> Vec<Submission> {
    let mut subs = Vec::new();
    let mut x: u64 = 0x1234_5678_9abc_def1;
    let mut t: u64 = 0;
    for id in 0..120u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += x % 9;
        subs.push(Submission {
            id,
            arrival: t,
            work: 1 + x % 20,
            poison: poison_every > 0 && (id + 1) % poison_every == 0,
        });
    }
    subs
}

fn run_once(workers: usize, faults: Vec<FaultSpec>, subs: &[Submission]) -> ServeReport {
    let mut cfg = ServeConfig::new(workers);
    cfg.iters_per_unit = 1;
    cfg.backoff_base_ms = 0;
    cfg.backoff_cap_ms = 1;
    cfg.max_restarts = 8;
    cfg.capacity_slots = 4;
    cfg.queue_cap = 256;
    cfg.slo_ticks = Some(10_000);
    cfg.seed = 99;
    cfg.faults = faults;
    let mut sup = Supervisor::new(cfg).expect("config valid");
    for sub in subs {
        let outcome = sup.offer(*sub);
        assert!(
            matches!(outcome, Outcome::Admitted { .. }),
            "this stream fits the queue and SLO; got {outcome:?} for id {}",
            sub.id
        );
        sup.pump();
    }
    sup.finish()
}

fn faults_for(workers: usize) -> Vec<FaultSpec> {
    // Kill worker 0 early and (when present) worker 1 a little later —
    // mid-stream, while the queue is still being fed.
    let mut faults = vec![FaultSpec {
        worker: 0,
        after_orders: 4,
    }];
    if workers > 1 {
        faults.push(FaultSpec {
            worker: 1,
            after_orders: 7,
        });
    }
    faults
}

#[test]
fn zero_lost_zero_duplicated_under_kills() {
    let subs = stream(0);
    for workers in [1usize, 2, 8] {
        let report = run_once(workers, faults_for(workers), &subs);
        assert_eq!(report.admitted, 120, "workers={workers}");
        assert_eq!(
            report.completed, 120,
            "workers={workers}: every admitted job completes exactly once"
        );
        assert_eq!(report.lost, 0, "workers={workers}");
        // The chaos actually fired: deaths and restarts are visible in the
        // live report (and only there).
        let deaths = report
            .live
            .counters
            .iter()
            .find(|(k, _)| k == "serve.worker_deaths")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(deaths >= 1, "workers={workers}: expected at least one kill");
    }
}

#[test]
fn merged_digest_is_sharding_and_chaos_invariant() {
    let subs = stream(0);
    let mut digests = Vec::new();
    let mut jsons = Vec::new();
    for workers in [1usize, 2, 8] {
        // With chaos...
        let chaotic = run_once(workers, faults_for(workers), &subs);
        // ...and completely fault-free.
        let calm = run_once(workers, Vec::new(), &subs);
        digests.push((workers, "chaos", chaotic.digest.clone()));
        digests.push((workers, "calm", calm.digest.clone()));
        jsons.push(chaotic.merged.to_json());
        jsons.push(calm.merged.to_json());
    }
    let (_, _, reference) = digests[0].clone();
    for (workers, mode, d) in &digests {
        assert_eq!(
            d, &reference,
            "digest diverged at workers={workers} mode={mode}"
        );
    }
    for j in &jsons {
        assert_eq!(j, &jsons[0], "merged reports must be byte-identical");
    }
}

#[test]
fn rerun_is_byte_identical() {
    let subs = stream(0);
    let a = run_once(2, faults_for(2), &subs);
    let b = run_once(2, faults_for(2), &subs);
    assert_eq!(a.merged.to_json(), b.merged.to_json());
    assert_eq!(a.digest, b.digest);
}

#[test]
fn poisoned_stream_converges_to_the_same_digest() {
    // Poison kills the executing worker mid-job on first attempt; the job
    // is re-admitted (poison stripped) and completes. The merged report is
    // a function of (arrival, work, id) only, so the digest must match the
    // unpoisoned stream exactly.
    let clean = run_once(2, Vec::new(), &stream(0));
    let poisoned = run_once(2, Vec::new(), &stream(40)); // ids 39, 79, 119
    assert_eq!(poisoned.completed, 120);
    assert_eq!(poisoned.lost, 0);
    assert_eq!(poisoned.digest, clean.digest);
    let deaths = poisoned
        .live
        .counters
        .iter()
        .find(|(k, _)| k == "serve.worker_deaths")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    // The exact death count is timing-dependent: if a second pill is still
    // queued in a dying worker's inbox, it is re-admitted with the poison
    // stripped and never kills anyone. At least the first pill always does.
    assert!(
        deaths >= 1,
        "poison pills must kill at least once; got {deaths}"
    );
}
