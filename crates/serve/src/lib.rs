//! # parflow-serve
//!
//! A long-lived, crash-tolerant streaming admission service in front of
//! the runtime's execution kernels — the "production wrapper" around the
//! paper's admission question: *which jobs do you accept, and when, so
//! that maximum flow time stays bounded?*
//!
//! The crate is four layers, each its own module:
//!
//! * [`protocol`] — jsonl wire format with idempotent submission ids;
//! * [`admission`] — a deterministic virtual-time ledger deciding
//!   admit / shed / reject-SLO purely from the submission stream;
//! * [`worker`] — the `WorkerHandle` trait and the in-process
//!   `ThreadWorker` executor (bounded inbox, heartbeat, deterministic
//!   crash hooks);
//! * [`supervisor`] — sharding, death detection, capped-backoff restarts,
//!   exactly-once re-admission, and the merged/live report split.
//!
//! [`ingest`] feeds a supervisor from a replayable jsonl source or a TCP
//! socket, and [`cli`] is the shared command surface of the
//! `parflow-serve` binary and the root `parflow serve` subcommand.
//!
//! **The determinism contract** (pinned by `tests/chaos.rs` and the CI
//! smoke step): same seed + same jsonl stream ⇒ byte-identical merged
//! report digest, regardless of worker count and of crash/restart chaos.
//! See `docs/SERVE.md` for the full design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cli;
pub mod ingest;
pub mod protocol;
pub mod supervisor;
pub mod worker;

pub use admission::{AdmissionConfig, AdmissionLedger, Outcome};
pub use ingest::{run_jsonl, run_tcp_listener, IngestStats};
pub use protocol::{parse_submission, ParseError, Submission};
pub use supervisor::{FaultSpec, ServeConfig, ServeReport, Supervisor};
pub use worker::{Completion, SubmitError, ThreadWorker, WorkOrder, WorkerConfig, WorkerHandle};
