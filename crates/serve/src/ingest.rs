//! Ingest: feed a [`Supervisor`] from a replayable submission source.
//!
//! Two sources share one line-oriented code path:
//!
//! * **jsonl** (file or stdin) — the deterministic mode. Replaying the
//!   same file through the same config reproduces the same merged digest,
//!   which is what the CI smoke step and the chaos tests assert.
//! * **TCP** — the live mode. Connections are served sequentially; each
//!   connection streams jsonl lines and receives one acknowledgement line
//!   per submission (`ok <outcome>` / `err <reason>`), so a client can
//!   observe sheds and SLO rejections instead of discovering them never.
//!
//! Malformed lines are counted and skipped (`IngestStats::parse_errors`),
//! never fatal: a bad client must not take the service down. I/O errors
//! on the transport itself surface as [`RuntimeError::Io`].

use crate::admission::Outcome;
use crate::protocol::parse_submission;
use crate::supervisor::Supervisor;
use parflow_runtime::RuntimeError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

/// What one ingest pass consumed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Lines offered to the supervisor.
    pub offered: u64,
    /// Malformed lines counted and skipped.
    pub parse_errors: u64,
}

/// Render an outcome as a one-word ack token for the live protocol.
fn outcome_token(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Admitted { .. } => "admitted",
        Outcome::Shed { .. } => "shed",
        Outcome::RejectedSlo { .. } => "rejected-slo",
        Outcome::Duplicate => "duplicate",
    }
}

/// Feed every jsonl line from `reader` into the supervisor, pumping as we
/// go. Blank lines and `#` comments are skipped silently; malformed lines
/// are counted. This is the deterministic replay path.
pub fn run_jsonl<R: BufRead>(sup: &mut Supervisor, reader: R) -> Result<IngestStats, RuntimeError> {
    let mut stats = IngestStats::default();
    for line in reader.lines() {
        let line = line.map_err(|e| RuntimeError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_submission(trimmed) {
            Ok(sub) => {
                stats.offered += 1;
                sup.offer(sub);
            }
            Err(_) => stats.parse_errors += 1,
        }
        sup.pump();
    }
    Ok(stats)
}

/// Serve jsonl submissions over TCP: accept `max_conns` connections
/// sequentially, acking each line. The caller binds the listener (so
/// tests can bind port 0) and finishes the supervisor afterwards.
pub fn run_tcp_listener(
    sup: &mut Supervisor,
    listener: &TcpListener,
    max_conns: usize,
) -> Result<IngestStats, RuntimeError> {
    let mut stats = IngestStats::default();
    for _ in 0..max_conns {
        let (stream, _) = listener
            .accept()
            .map_err(|e| RuntimeError::Io(e.to_string()))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| RuntimeError::Io(e.to_string()))?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break, // client went away; the service lives on
            };
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let ack = match parse_submission(trimmed) {
                Ok(sub) => {
                    stats.offered += 1;
                    format!("ok {}\n", outcome_token(&sup.offer(sub)))
                }
                Err(e) => {
                    stats.parse_errors += 1;
                    format!("err {e}\n")
                }
            };
            if writer.write_all(ack.as_bytes()).is_err() {
                break;
            }
            sup.pump();
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::ServeConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn quick_sup(workers: usize) -> Supervisor {
        let mut cfg = ServeConfig::new(workers);
        cfg.iters_per_unit = 1;
        Supervisor::new(cfg).expect("config valid")
    }

    #[test]
    fn jsonl_replay_counts_and_skips() {
        let input = "\
# a comment
{\"id\": 0, \"arrival\": 0, \"work\": 3}

{\"id\": 1, \"arrival\": 5, \"work\": 3}
this line is garbage
{\"id\": 2, \"arrival\": 9, \"work\": 3}
";
        let mut sup = quick_sup(2);
        let stats = run_jsonl(&mut sup, input.as_bytes()).expect("ingest ok");
        assert_eq!(stats.offered, 3);
        assert_eq!(stats.parse_errors, 1);
        let report = sup.finish();
        assert_eq!(report.admitted, 3);
        assert_eq!(report.completed, 3);
    }

    #[test]
    fn tcp_acks_every_line() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr");
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut w = stream.try_clone().expect("clone");
            let mut lines = BufReader::new(stream).lines();
            let mut acks = Vec::new();
            for line in [
                "{\"id\": 0, \"arrival\": 0, \"work\": 2}",
                "not json",
                "{\"id\": 0, \"arrival\": 1, \"work\": 2}",
            ] {
                w.write_all(line.as_bytes()).expect("send");
                w.write_all(b"\n").expect("send nl");
                w.flush().expect("flush");
                acks.push(lines.next().expect("ack line").expect("ack io"));
            }
            drop(w);
            acks
        });
        let mut sup = quick_sup(1);
        let stats = run_tcp_listener(&mut sup, &listener, 1).expect("serve ok");
        let acks = client.join().expect("client thread");
        assert_eq!(stats.offered, 2);
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(acks[0], "ok admitted");
        assert!(acks[1].starts_with("err "), "{}", acks[1]);
        assert_eq!(acks[2], "ok duplicate");
        let report = sup.finish();
        assert_eq!(report.completed, 1);
    }
}
