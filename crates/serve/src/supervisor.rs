//! The supervision layer: shard admitted jobs across workers, watch the
//! workers, and restart what dies without ever losing or double-counting
//! a job.
//!
//! ## State machine (per worker slot)
//!
//! ```text
//!           spawn                 death detected
//!   Running ------> Dispatchable -----------------> Draining
//!     ^                                                |
//!     |  backoff elapsed        restarts exhausted     v
//!   Restarting <----------------------------------- (re-admit unacked)
//!     |                                                |
//!     +---- restarts left ------------+----------------+
//!                                     v
//!                                  Retired
//! ```
//!
//! Death is detected two ways: the worker thread has exited
//! (`is_finished`, the primary signal — a crashed loop returns), or the
//! heartbeat watchdog sees no progress for `stall_polls` consecutive pumps
//! while the worker holds work (a hung thread). On death the supervisor
//! drains the dead worker's final acknowledgements, re-admits every
//! unacknowledged order (poison stripped, so a poisoned job completes on
//! retry), and schedules a restart under capped exponential backoff with
//! deterministic seeded jitter. A worker that exhausts `max_restarts` is
//! retired; its work re-routes to the survivors.
//!
//! ## Exactly-once accounting
//!
//! Dispatch is at-least-once (re-admission can race a slow
//! acknowledgement); the completion set deduplicates by submission id, so
//! the merged report counts every admitted job exactly once. Duplicates
//! are themselves counted — in the live report, because whether a race
//! happens depends on timing and sharding.
//!
//! ## Two reports, one digest
//!
//! [`ServeReport::merged`] contains only sharding-invariant data (the
//! admission ledger's counters, the deduplicated completion count, virtual
//! flows, a kernel-checksum fold) and is the digest the CI smoke and chaos
//! tests compare across worker counts. [`ServeReport::live`] holds
//! everything timing- or topology-dependent: restarts, re-admissions,
//! duplicates, wall-clock flows, per-worker counters.
//!
//! This file is in the `parflow-lint` L3 (`panicking`) scope: the serving
//! loop must never panic.

use crate::admission::{AdmissionConfig, AdmissionLedger, Outcome};
use crate::protocol::Submission;
use crate::worker::{SubmitError, ThreadWorker, WorkOrder, WorkerConfig, WorkerHandle};
use parflow_obs::{AggregatingRecorder, ObsReport, Recorder};
use parflow_runtime::RuntimeError;
use parflow_time::Ticks;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};

/// Deterministic chaos: worker `worker` dies after acknowledging
/// `after_orders` orders — first incarnation only, so restarts recover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Worker index the fault applies to.
    pub worker: usize,
    /// Acknowledged-order count after which the incarnation dies.
    pub after_orders: u64,
}

impl FaultSpec {
    /// Parse a comma-separated `worker:after` list, e.g. `"0:5,2:9"`.
    pub fn parse_list(s: &str) -> Result<Vec<FaultSpec>, String> {
        let mut out = Vec::new();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let mut halves = part.trim().splitn(2, ':');
            let worker = halves
                .next()
                .and_then(|w| w.parse::<usize>().ok())
                .ok_or_else(|| format!("bad fault spec `{part}` (want worker:after)"))?;
            let after_orders = halves
                .next()
                .and_then(|a| a.parse::<u64>().ok())
                .ok_or_else(|| format!("bad fault spec `{part}` (want worker:after)"))?;
            out.push(FaultSpec {
                worker,
                after_orders,
            });
        }
        Ok(out)
    }
}

/// Supervisor configuration. `new(workers)` gives defaults sized for
/// tests and the CLI; all fields are public for direct construction.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker shards.
    pub workers: usize,
    /// Virtual capacity slots of the admission ledger (modelled `m`).
    pub capacity_slots: usize,
    /// Bound on admitted jobs in the system (ledger sheds beyond it).
    pub queue_cap: usize,
    /// Flow-time SLO in ticks; `None` disables deadline rejection.
    pub slo_ticks: Option<Ticks>,
    /// Seed for the restart-jitter stream (and nothing else).
    pub seed: u64,
    /// Spin-kernel iterations per work unit.
    pub iters_per_unit: u64,
    /// Per-worker bounded inbox depth.
    pub inbox_cap: usize,
    /// Restarts allowed per worker before it is retired.
    pub max_restarts: u32,
    /// Backoff base in milliseconds (doubles per consecutive restart).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Watchdog: pumps without heartbeat progress (while holding work)
    /// before a live-looking worker is declared hung.
    pub stall_polls: u64,
    /// Wall-clock bound on `finish`'s drain loop.
    pub drain_timeout_ms: u64,
    /// Deterministic kill schedule (first incarnations only).
    pub faults: Vec<FaultSpec>,
}

impl ServeConfig {
    /// Defaults: paper-machine ledger (16 slots), queue cap 64, no SLO,
    /// instant-ish restarts suitable for tests and CI.
    pub fn new(workers: usize) -> ServeConfig {
        ServeConfig {
            workers: workers.max(1),
            capacity_slots: 16,
            queue_cap: 64,
            slo_ticks: None,
            seed: 0,
            iters_per_unit: 200,
            inbox_cap: 32,
            max_restarts: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 100,
            stall_polls: 100_000,
            drain_timeout_ms: 30_000,
            faults: Vec::new(),
        }
    }

    /// Validate cross-field invariants (fault indices in range).
    pub fn validate(&self) -> Result<(), RuntimeError> {
        for f in &self.faults {
            if f.worker >= self.workers {
                return Err(RuntimeError::InvalidFaultPlan(format!(
                    "fault references worker {} but the service has {} workers",
                    f.worker, self.workers
                )));
            }
        }
        Ok(())
    }
}

/// An admitted order not yet acknowledged.
#[derive(Debug)]
struct Outstanding {
    order: WorkOrder,
    offered: Instant,
    assigned_to: Option<usize>,
}

/// One worker slot across incarnations.
#[derive(Debug)]
struct Slot {
    handle: Option<ThreadWorker>,
    incarnation: u32,
    restarts_used: u32,
    retired: bool,
    restart_at: Option<Instant>,
    last_hb: u64,
    stalled: u64,
}

/// Final accounting of one service run. See the module docs for the
/// merged/live split.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Sharding-invariant report (what [`ServeReport::digest`] hashes).
    pub merged: ObsReport,
    /// Timing/topology-dependent telemetry (excluded from the digest).
    pub live: ObsReport,
    /// `merged.digest()`: byte-identical across worker counts and chaos.
    pub digest: String,
    /// Submissions offered (including duplicates).
    pub submitted: u64,
    /// Jobs the ledger admitted.
    pub admitted: u64,
    /// Admitted jobs acknowledged exactly once.
    pub completed: u64,
    /// Submissions shed at the queue bound.
    pub shed: u64,
    /// Submissions rejected against the SLO.
    pub rejected_slo: u64,
    /// Idempotent re-sends of known ids.
    pub duplicate_submissions: u64,
    /// Admitted jobs that could not be completed (all workers retired).
    pub lost: u64,
}

impl ServeReport {
    /// Human-readable one-paragraph summary for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "submitted {} | admitted {} | completed {} | shed {} | rejected-slo {} | dup {} | lost {}\nmerged digest: {}",
            self.submitted,
            self.admitted,
            self.completed,
            self.shed,
            self.rejected_slo,
            self.duplicate_submissions,
            self.lost,
            self.digest
        )
    }
}

/// The supervisor: admission ledger + worker fleet + re-admission logic.
/// Drive it with [`Supervisor::offer`] per submission and
/// [`Supervisor::pump`] in between; [`Supervisor::finish`] drains and
/// reports.
#[derive(Debug)]
pub struct Supervisor {
    cfg: ServeConfig,
    ledger: AdmissionLedger,
    slots: Vec<Slot>,
    dispatch: VecDeque<WorkOrder>,
    outstanding: BTreeMap<u64, Outstanding>,
    completed: BTreeSet<u64>,
    merged: AggregatingRecorder,
    live: AggregatingRecorder,
    jitter: SmallRng,
    rr: usize,
    checksum_xor: u64,
    duplicate_submissions: u64,
}

impl Supervisor {
    /// Validate the config and spawn the initial worker fleet.
    pub fn new(cfg: ServeConfig) -> Result<Supervisor, RuntimeError> {
        cfg.validate()?;
        let jitter = SmallRng::seed_from_u64(cfg.seed);
        let ledger = AdmissionLedger::new(AdmissionConfig {
            capacity_slots: cfg.capacity_slots,
            queue_cap: cfg.queue_cap,
            slo_ticks: cfg.slo_ticks,
        });
        let mut sup = Supervisor {
            slots: Vec::new(),
            ledger,
            dispatch: VecDeque::new(),
            outstanding: BTreeMap::new(),
            completed: BTreeSet::new(),
            merged: AggregatingRecorder::new(),
            live: AggregatingRecorder::new(),
            jitter,
            rr: 0,
            checksum_xor: 0,
            duplicate_submissions: 0,
            cfg,
        };
        for w in 0..sup.cfg.workers {
            let slot = Slot {
                handle: Some(sup.spawn_worker(w, 0)),
                incarnation: 0,
                restarts_used: 0,
                retired: false,
                restart_at: None,
                last_hb: 0,
                stalled: 0,
            };
            sup.slots.push(slot);
        }
        Ok(sup)
    }

    fn spawn_worker(&self, w: usize, incarnation: u32) -> ThreadWorker {
        // Kill schedules apply to first incarnations only: a restarted
        // worker is healthy, so chaos runs converge.
        let kill_after = if incarnation == 0 {
            self.cfg
                .faults
                .iter()
                .find(|f| f.worker == w)
                .map(|f| f.after_orders)
        } else {
            None
        };
        ThreadWorker::spawn(WorkerConfig {
            index: w,
            iters_per_unit: self.cfg.iters_per_unit,
            inbox_cap: self.cfg.inbox_cap,
            kill_after,
        })
    }

    /// Offer one submission: dedup, ledger decision, dispatch on admit.
    pub fn offer(&mut self, sub: Submission) -> Outcome {
        if self.completed.contains(&sub.id) || self.outstanding.contains_key(&sub.id) {
            // Idempotent re-send: counted in the merged report because it
            // is a pure function of the input stream.
            self.duplicate_submissions += 1;
            self.merged.counter("serve.duplicate_submission", 1);
            return Outcome::Duplicate;
        }
        let outcome = self.ledger.decide(sub.arrival, sub.work);
        if let Outcome::Admitted { virtual_flow } = outcome {
            self.merged
                .sample("serve.virtual_flow_ticks", virtual_flow as f64);
            let order = WorkOrder::from_submission(&sub);
            self.outstanding.insert(
                sub.id,
                Outstanding {
                    order,
                    offered: Instant::now(),
                    assigned_to: None,
                },
            );
            self.dispatch.push_back(order);
            self.dispatch_pending();
        }
        outcome
    }

    /// One supervision round: drain acknowledgements, detect deaths,
    /// restart due workers, dispatch pending orders.
    pub fn pump(&mut self) {
        // 1. Drain acknowledgements from every live worker.
        for w in 0..self.slots.len() {
            let comps = match &mut self.slots[w].handle {
                Some(h) => h.drain_completions(),
                None => Vec::new(),
            };
            for c in comps {
                self.apply_completion(c.id, c.checksum, c.worker);
            }
        }
        // 2. Death detection: thread exit (primary) or heartbeat stall
        //    while holding work (hung-thread watchdog).
        let mut holding = vec![false; self.slots.len()];
        for o in self.outstanding.values() {
            if let Some(w) = o.assigned_to {
                if w < holding.len() {
                    holding[w] = true;
                }
            }
        }
        let stall_limit = self.cfg.stall_polls;
        let mut deaths = Vec::new();
        for (w, slot) in self.slots.iter_mut().enumerate() {
            let dead = match slot {
                Slot {
                    handle: Some(h),
                    last_hb,
                    stalled,
                    ..
                } => {
                    if h.is_finished() {
                        true
                    } else {
                        let hb = h.heartbeat();
                        if hb == *last_hb && holding.get(w) == Some(&true) {
                            *stalled += 1;
                        } else {
                            *stalled = 0;
                        }
                        *last_hb = hb;
                        *stalled > stall_limit
                    }
                }
                _ => false,
            };
            if dead {
                deaths.push(w);
            }
        }
        for w in deaths {
            self.handle_death(w);
        }
        // 3. Restart workers whose backoff has elapsed.
        for w in 0..self.slots.len() {
            let due = matches!(
                (&self.slots[w].handle, self.slots[w].restart_at),
                (None, Some(at)) if Instant::now() >= at
            ) && !self.slots[w].retired;
            if due {
                let incarnation = self.slots[w].incarnation + 1;
                let handle = self.spawn_worker(w, incarnation);
                let slot = &mut self.slots[w];
                slot.handle = Some(handle);
                slot.incarnation = incarnation;
                slot.restart_at = None;
                slot.last_hb = 0;
                slot.stalled = 0;
                self.live.counter("serve.restarts", 1);
                self.live.counter_at("serve.worker.restarts", w, 1);
            }
        }
        // 4. Push pending orders out.
        self.dispatch_pending();
    }

    fn apply_completion(&mut self, id: u64, checksum: u64, worker: usize) {
        if self.completed.insert(id) {
            // The kernel checksum is a pure function of (id, work, iters),
            // so a fold over the deduplicated completion set is
            // sharding-invariant — it lands in the merged report as an
            // execution-identity probe.
            self.checksum_xor ^= checksum;
            if let Some(o) = self.outstanding.remove(&id) {
                let ms = o.offered.elapsed().as_secs_f64() * 1e3;
                self.live.sample("serve.wall_flow_ms", ms);
            }
            self.live.counter("serve.completions", 1);
            self.live.counter_at("serve.worker.completed", worker, 1);
        } else {
            // At-least-once dispatch raced: executed twice, counted once.
            self.live.counter("serve.duplicate_completion", 1);
        }
    }

    /// A worker died: salvage its buffered acknowledgements, re-admit its
    /// unacknowledged orders, schedule a restart (or retire it).
    fn handle_death(&mut self, w: usize) {
        let mut handle = match self.slots[w].handle.take() {
            Some(h) => h,
            None => return,
        };
        // Acks sent before the crash are still buffered in the channel;
        // losing them would turn a clean completion into a duplicate run.
        for c in handle.drain_completions() {
            self.apply_completion(c.id, c.checksum, c.worker);
        }
        handle.shutdown();
        self.live.counter("serve.worker_deaths", 1);
        self.live.counter_at("serve.worker.deaths", w, 1);
        // Exactly-once re-admission: everything assigned and unacked goes
        // back to the dispatch queue, poison stripped so retries converge.
        let ids: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.assigned_to == Some(w))
            .map(|(&id, _)| id)
            .collect();
        self.live.counter("serve.readmitted", ids.len() as u64);
        for id in ids {
            if let Some(o) = self.outstanding.get_mut(&id) {
                o.assigned_to = None;
                o.order.poison = false;
                self.dispatch.push_back(o.order);
            }
        }
        let used = self.slots[w].restarts_used;
        if used < self.cfg.max_restarts {
            let delay = self.backoff_delay(used + 1);
            let slot = &mut self.slots[w];
            slot.restarts_used = used + 1;
            slot.restart_at = Some(Instant::now() + delay);
        } else {
            self.slots[w].retired = true;
            self.live.counter("serve.workers_retired", 1);
        }
    }

    /// Capped exponential backoff with deterministic seeded jitter.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .cfg
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.cfg.backoff_cap_ms);
        let jitter = if capped > 0 {
            self.jitter.gen_range(0..=capped / 4)
        } else {
            0
        };
        Duration::from_millis(capped + jitter)
    }

    /// Round-robin dispatch with backpressure: a full inbox rotates to the
    /// next worker; when everyone is full the order waits in the queue.
    fn dispatch_pending(&mut self) {
        let n = self.slots.len();
        if n == 0 {
            return;
        }
        let mut full = vec![false; n];
        while let Some(order) = self.dispatch.pop_front() {
            let mut placed = false;
            for step in 0..n {
                let w = (self.rr + step) % n;
                if full[w] {
                    continue;
                }
                let outcome = match &mut self.slots[w].handle {
                    Some(h) => h.try_submit(order),
                    None => continue,
                };
                match outcome {
                    Ok(()) => {
                        if let Some(o) = self.outstanding.get_mut(&order.id) {
                            o.assigned_to = Some(w);
                        }
                        self.rr = (w + 1) % n;
                        placed = true;
                        break;
                    }
                    Err(SubmitError::Full(_)) => full[w] = true,
                    Err(SubmitError::Dead(_)) => {} // next pump reaps it
                }
            }
            if !placed {
                self.dispatch.push_front(order);
                return;
            }
        }
    }

    /// Admitted-but-unacknowledged jobs right now.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Jobs acknowledged (exactly-once) so far.
    pub fn completed_jobs(&self) -> u64 {
        self.completed.len() as u64
    }

    /// Drain everything in flight (bounded by `drain_timeout_ms`), shut
    /// the fleet down, and produce the final report pair.
    pub fn finish(mut self) -> ServeReport {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.drain_timeout_ms);
        loop {
            self.pump();
            if self.outstanding.is_empty() && self.dispatch.is_empty() {
                break;
            }
            let recoverable = self.slots.iter().any(|s| s.handle.is_some() || !s.retired);
            if !recoverable || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        for w in 0..self.slots.len() {
            let comps = match &mut self.slots[w].handle {
                Some(h) => {
                    h.shutdown();
                    h.drain_completions()
                }
                None => Vec::new(),
            };
            for c in comps {
                self.apply_completion(c.id, c.checksum, c.worker);
            }
            self.slots[w].handle = None;
        }
        // Merged report: ledger state + deduplicated completions. Nothing
        // here depends on worker count, timing, or restart history.
        self.ledger.record_merged(&mut self.merged);
        let completed = self.completed.len() as u64;
        let lost = (self.outstanding.len() + self.dispatch.len()) as u64;
        self.merged.counter("serve.completed", completed);
        self.merged.counter("serve.lost", lost);
        self.merged
            .gauge("serve.checksum_xor_b32", (self.checksum_xor as u32) as f64);
        // Live report: topology and timing.
        self.live.gauge("serve.workers", self.cfg.workers as f64);
        self.live
            .gauge("serve.inbox_cap", self.cfg.inbox_cap as f64);
        let merged = self.merged.report();
        let digest = merged.digest();
        ServeReport {
            live: self.live.report(),
            merged,
            digest,
            submitted: self.ledger.submitted(),
            admitted: self.ledger.admitted(),
            completed,
            shed: self.ledger.shed(),
            rejected_slo: self.ledger.rejected_slo(),
            duplicate_submissions: self.duplicate_submissions,
            lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(id: u64, arrival: Ticks, work: u64) -> Submission {
        Submission {
            id,
            arrival,
            work,
            poison: false,
        }
    }

    fn quick_cfg(workers: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(workers);
        cfg.iters_per_unit = 1;
        cfg.backoff_base_ms = 0;
        cfg.backoff_cap_ms = 1;
        cfg
    }

    #[test]
    fn completes_everything_admitted() {
        let mut sup = Supervisor::new(quick_cfg(2)).expect("config valid");
        for id in 0..50u64 {
            assert!(matches!(
                sup.offer(sub(id, id * 10, 5)),
                Outcome::Admitted { .. }
            ));
        }
        let report = sup.finish();
        assert_eq!(report.admitted, 50);
        assert_eq!(report.completed, 50);
        assert_eq!(report.lost, 0);
        assert_eq!(report.shed, 0);
    }

    #[test]
    fn duplicate_ids_are_idempotent() {
        let mut sup = Supervisor::new(quick_cfg(1)).expect("config valid");
        assert!(matches!(sup.offer(sub(7, 0, 5)), Outcome::Admitted { .. }));
        assert_eq!(sup.offer(sub(7, 1, 5)), Outcome::Duplicate);
        let report = sup.finish();
        assert_eq!(report.completed, 1);
        assert_eq!(report.duplicate_submissions, 1);
    }

    #[test]
    fn invalid_fault_plan_is_rejected() {
        let mut cfg = quick_cfg(2);
        cfg.faults = vec![FaultSpec {
            worker: 5,
            after_orders: 1,
        }];
        match Supervisor::new(cfg) {
            Err(RuntimeError::InvalidFaultPlan(msg)) => {
                assert!(msg.contains("worker 5"), "{msg}")
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(
            FaultSpec::parse_list("0:5, 2:9"),
            Ok(vec![
                FaultSpec {
                    worker: 0,
                    after_orders: 5
                },
                FaultSpec {
                    worker: 2,
                    after_orders: 9
                },
            ])
        );
        assert_eq!(FaultSpec::parse_list(""), Ok(vec![]));
        assert!(FaultSpec::parse_list("nope").is_err());
        assert!(FaultSpec::parse_list("1").is_err());
    }

    #[test]
    fn overload_sheds_but_stays_live() {
        let mut cfg = quick_cfg(2);
        cfg.capacity_slots = 1;
        cfg.queue_cap = 4;
        let mut sup = Supervisor::new(cfg).expect("config valid");
        // A burst far beyond the queue bound, all at t=0.
        for id in 0..100u64 {
            sup.offer(sub(id, 0, 50));
        }
        let report = sup.finish();
        assert!(report.shed > 0, "overload must shed");
        assert_eq!(report.admitted + report.shed, 100);
        assert_eq!(report.completed, report.admitted, "admitted jobs finish");
        assert_eq!(report.lost, 0);
    }

    #[test]
    fn slo_bounds_admitted_virtual_flow() {
        let mut cfg = quick_cfg(1);
        cfg.capacity_slots = 1;
        cfg.queue_cap = 1000;
        cfg.slo_ticks = Some(100);
        let mut sup = Supervisor::new(cfg).expect("config valid");
        for id in 0..50u64 {
            sup.offer(sub(id, 0, 30));
        }
        let report = sup.finish();
        assert!(report.rejected_slo > 0);
        // Every admitted flow obeys the SLO by construction: check the
        // merged histogram's max.
        let hist = report
            .merged
            .histograms
            .iter()
            .find(|h| h.name == "serve.virtual_flow_ticks")
            .expect("flow histogram present");
        assert!(hist.max <= 100.0, "max admitted flow {} > SLO", hist.max);
    }

    #[test]
    fn worker_death_recovers_exactly_once() {
        let mut cfg = quick_cfg(2);
        cfg.faults = vec![FaultSpec {
            worker: 0,
            after_orders: 3,
        }];
        let mut sup = Supervisor::new(cfg).expect("config valid");
        for id in 0..40u64 {
            sup.offer(sub(id, id, 10));
            sup.pump();
        }
        let report = sup.finish();
        assert_eq!(report.admitted, 40);
        assert_eq!(report.completed, 40, "deaths must not lose jobs");
        assert_eq!(report.lost, 0);
    }
}
