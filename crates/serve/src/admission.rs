//! The deterministic admission ledger.
//!
//! Every submission passes through one virtual-time FIFO model **before**
//! it touches a worker: `capacity_slots` unit-speed servers, a bound of
//! `queue_cap` jobs in the system, and an optional flow-time SLO. The
//! ledger decides [`Outcome::Admitted`], [`Outcome::Shed`] (queue full —
//! explicit, never a silent drop) or [`Outcome::RejectedSlo`] (the job's
//! *predicted* FIFO flow already exceeds the SLO, so admitting it would
//! only burn capacity on a response nobody will wait for).
//!
//! The ledger is a pure function of the submission stream — it never reads
//! a clock, a worker count, or a queue depth of the real execution layer.
//! That is the crate's central determinism argument: the merged report
//! (and its digest) is computed from ledger state plus the deduplicated
//! completion set, both sharding-invariant, so one seed and one jsonl
//! stream produce a byte-identical digest whether the service runs 1, 2 or
//! 8 workers, with or without crash/restart chaos in between.
//!
//! Liveness under overload follows from the same bounds: at most
//! `queue_cap` admitted jobs are in flight (bounded memory), excess load
//! turns into counted sheds, and every admitted job's virtual flow is
//! `<= slo_ticks` by construction.
//!
//! This file is in the `parflow-lint` L3 (`panicking`) scope: the
//! admission path must never panic.

use parflow_time::{Ticks, Work};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ledger parameters (a subset of `ServeConfig`, kept separate so the
/// ledger can be unit-tested without a supervisor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Virtual unit-speed servers (the modelled machine size `m`).
    pub capacity_slots: usize,
    /// Maximum admitted jobs in the system; arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Flow-time SLO in ticks; `None` disables deadline rejection.
    pub slo_ticks: Option<Ticks>,
}

/// The ledger's verdict on one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Dispatched to the execution layer; `virtual_flow` is the modelled
    /// FIFO flow time (and an upper bound certificate vs the SLO).
    Admitted {
        /// Predicted flow time in ticks under the ledger's FIFO model.
        virtual_flow: Ticks,
    },
    /// The system already holds `queue_cap` jobs; shed (counted, surfaced).
    Shed {
        /// Jobs in the system at the instant of the decision.
        in_system: usize,
    },
    /// Predicted flow exceeds the SLO; rejected at admission.
    RejectedSlo {
        /// The predicted flow that broke the deadline.
        predicted_flow: Ticks,
    },
    /// The submission id was already admitted or completed; idempotent
    /// re-send, nothing executed. (Issued by the supervisor's dedup layer,
    /// not by the ledger itself.)
    Duplicate,
}

/// Deterministic virtual-time admission state. See the module docs.
#[derive(Debug)]
pub struct AdmissionLedger {
    cfg: AdmissionConfig,
    /// Earliest tick at which each capacity slot frees up (min-heap).
    slots: BinaryHeap<Reverse<Ticks>>,
    /// Departure ticks of admitted jobs still in the system (min-heap).
    departures: BinaryHeap<Reverse<Ticks>>,
    /// Monotonic virtual clock (arrivals are clamped forward onto it).
    clock: Ticks,
    clamped: u64,
    submitted: u64,
    admitted: u64,
    shed: u64,
    rejected_slo: u64,
}

impl AdmissionLedger {
    /// A fresh ledger. `capacity_slots` and `queue_cap` are clamped to at
    /// least 1 so the ledger is total (config validation with real errors
    /// happens in `ServeConfig::validate`).
    pub fn new(cfg: AdmissionConfig) -> AdmissionLedger {
        let slots = cfg.capacity_slots.max(1);
        AdmissionLedger {
            cfg: AdmissionConfig {
                capacity_slots: slots,
                queue_cap: cfg.queue_cap.max(1),
                slo_ticks: cfg.slo_ticks,
            },
            slots: (0..slots).map(|_| Reverse(0)).collect(),
            departures: BinaryHeap::new(),
            clock: 0,
            clamped: 0,
            submitted: 0,
            admitted: 0,
            shed: 0,
            rejected_slo: 0,
        }
    }

    /// Decide one submission. Pure virtual time: no clock, no worker state.
    pub fn decide(&mut self, arrival: Ticks, work: Work) -> Outcome {
        self.submitted += 1;
        let t = if arrival < self.clock {
            self.clamped += 1;
            self.clock
        } else {
            arrival
        };
        self.clock = t;
        // Retire virtual departures up to now.
        while matches!(self.departures.peek(), Some(&Reverse(d)) if d <= t) {
            self.departures.pop();
        }
        if self.departures.len() >= self.cfg.queue_cap {
            self.shed += 1;
            return Outcome::Shed {
                in_system: self.departures.len(),
            };
        }
        let free = match self.slots.peek() {
            Some(&Reverse(f)) => f,
            None => 0, // unreachable: `new` seeds >= 1 slot, pops are paired with pushes
        };
        let start = t.max(free);
        let depart = start.saturating_add(work.max(1));
        let flow = depart - t;
        if let Some(slo) = self.cfg.slo_ticks {
            if flow > slo {
                self.rejected_slo += 1;
                return Outcome::RejectedSlo {
                    predicted_flow: flow,
                };
            }
        }
        self.slots.pop();
        self.slots.push(Reverse(depart));
        self.departures.push(Reverse(depart));
        self.admitted += 1;
        Outcome::Admitted { virtual_flow: flow }
    }

    /// Submissions seen so far (every `decide` call).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Jobs admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Submissions shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Submissions rejected against the SLO so far.
    pub fn rejected_slo(&self) -> u64 {
        self.rejected_slo
    }

    /// Write the ledger's counters and config gauges into a recorder.
    /// Everything written here is a pure function of the submission stream
    /// (never of worker count or timing), so it is safe to include in the
    /// digested merged report.
    pub fn record_merged(&self, rec: &mut parflow_obs::AggregatingRecorder) {
        use parflow_obs::Recorder;
        rec.counter("serve.submitted", self.submitted);
        rec.counter("serve.admitted", self.admitted);
        rec.counter("serve.shed", self.shed);
        rec.counter("serve.rejected_slo", self.rejected_slo);
        rec.counter("serve.arrival_clamped", self.clamped);
        rec.gauge("serve.capacity_slots", self.cfg.capacity_slots as f64);
        rec.gauge("serve.queue_cap", self.cfg.queue_cap as f64);
        rec.gauge(
            "serve.slo_ticks",
            self.cfg.slo_ticks.map(|s| s as f64).unwrap_or(-1.0),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(slots: usize, cap: usize, slo: Option<Ticks>) -> AdmissionConfig {
        AdmissionConfig {
            capacity_slots: slots,
            queue_cap: cap,
            slo_ticks: slo,
        }
    }

    #[test]
    fn single_slot_fifo_flows() {
        let mut l = AdmissionLedger::new(cfg(1, 100, None));
        // Back-to-back arrivals at t=0: flows accumulate 10, 20, 30.
        assert_eq!(l.decide(0, 10), Outcome::Admitted { virtual_flow: 10 });
        assert_eq!(l.decide(0, 10), Outcome::Admitted { virtual_flow: 20 });
        assert_eq!(l.decide(0, 10), Outcome::Admitted { virtual_flow: 30 });
        // After the backlog drains, flow resets to the bare work.
        assert_eq!(l.decide(100, 5), Outcome::Admitted { virtual_flow: 5 });
        assert_eq!(l.admitted(), 4);
    }

    #[test]
    fn parallel_slots_absorb_bursts() {
        let mut l = AdmissionLedger::new(cfg(2, 100, None));
        assert_eq!(l.decide(0, 10), Outcome::Admitted { virtual_flow: 10 });
        assert_eq!(l.decide(0, 10), Outcome::Admitted { virtual_flow: 10 });
        // Third job queues behind the earlier of the two slots.
        assert_eq!(l.decide(0, 10), Outcome::Admitted { virtual_flow: 20 });
    }

    #[test]
    fn queue_cap_sheds_instead_of_growing() {
        let mut l = AdmissionLedger::new(cfg(1, 2, None));
        assert!(matches!(l.decide(0, 50), Outcome::Admitted { .. }));
        assert!(matches!(l.decide(0, 50), Outcome::Admitted { .. }));
        assert_eq!(l.decide(0, 50), Outcome::Shed { in_system: 2 });
        assert_eq!(l.shed(), 1);
        // Once the system drains, admission resumes.
        assert!(matches!(l.decide(200, 1), Outcome::Admitted { .. }));
    }

    #[test]
    fn slo_rejects_predicted_violations_and_bounds_admitted_flow() {
        let mut l = AdmissionLedger::new(cfg(1, 100, Some(25)));
        assert_eq!(l.decide(0, 10), Outcome::Admitted { virtual_flow: 10 });
        assert_eq!(l.decide(0, 10), Outcome::Admitted { virtual_flow: 20 });
        // Would be flow 30 > 25: rejected, and the slot is NOT consumed.
        assert_eq!(l.decide(0, 10), Outcome::RejectedSlo { predicted_flow: 30 });
        assert_eq!(l.decide(0, 5), Outcome::Admitted { virtual_flow: 25 });
        assert_eq!(l.rejected_slo(), 1);
    }

    #[test]
    fn regressions_are_clamped_monotone() {
        let mut l = AdmissionLedger::new(cfg(1, 100, None));
        assert!(matches!(l.decide(100, 1), Outcome::Admitted { .. }));
        // Arrival going backwards is clamped to the clock (t=100).
        assert_eq!(l.decide(50, 1), Outcome::Admitted { virtual_flow: 2 });
        assert_eq!(l.clamped, 1);
    }

    #[test]
    fn zero_work_counts_as_one() {
        let mut l = AdmissionLedger::new(cfg(1, 10, None));
        assert_eq!(l.decide(0, 0), Outcome::Admitted { virtual_flow: 1 });
    }

    #[test]
    fn degenerate_config_is_clamped() {
        let mut l = AdmissionLedger::new(cfg(0, 0, None));
        assert!(matches!(l.decide(0, 1), Outcome::Admitted { .. }));
        assert!(matches!(l.decide(0, 1), Outcome::Shed { .. }));
    }

    #[test]
    fn ledger_is_replay_deterministic() {
        let run = || {
            let mut l = AdmissionLedger::new(cfg(4, 16, Some(500)));
            let mut rec = parflow_obs::AggregatingRecorder::new();
            let mut x: u64 = 0x2545_F491_4F6C_DD1D;
            let mut t = 0u64;
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                t += x % 7;
                l.decide(t, 1 + x % 90);
            }
            l.record_merged(&mut rec);
            rec.report().digest()
        };
        assert_eq!(run(), run());
    }
}
