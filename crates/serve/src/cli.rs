//! Command-line surface shared by the `parflow-serve` binary and the root
//! `parflow serve` subcommand.
//!
//! ```text
//! parflow-serve emit --n 300 --qps 2000 --dist bing --seed 42 > subs.jsonl
//! parflow-serve run  --input subs.jsonl --workers 2 --slo 5000 --digest-only
//! parflow-serve tcp  --addr 127.0.0.1:7070 --workers 4 --max-conns 1
//! ```
//!
//! `emit` renders a deterministic submission stream (the workloads crate's
//! [`JobSource`] under the hood) as jsonl; `run` replays jsonl from a file
//! or stdin (`--input -`); `tcp` serves live connections. All three are
//! plain functions returning the text they would print, so they are
//! unit-testable without process spawning.

use crate::ingest::{run_jsonl, run_tcp_listener};
use crate::protocol::Submission;
use crate::supervisor::{FaultSpec, ServeConfig, Supervisor};
use parflow_runtime::RuntimeError;
use parflow_workloads::{DistKind, WorkloadSpec};
use std::collections::BTreeMap;
use std::io::BufRead;

const USAGE: &str = "usage: parflow-serve <emit|run|tcp> [--flag value ...]\n\
  emit: --n N --qps QPS --dist bing|finance|lognormal --seed S [--poison-every K]\n\
  run:  --input PATH|- [--workers W --slots M --queue-cap Q --slo TICKS --seed S\n\
        --iters-per-unit I --chaos W:AFTER,.. --merged-json P --live-json P --digest-only]\n\
  tcp:  --addr HOST:PORT [--max-conns C + the run flags]";

/// `--key value` flags; a flag followed by another flag (or nothing) is a
/// boolean `true`, so `--digest-only` needs no operand.
struct Flags(BTreeMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, RuntimeError> {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| RuntimeError::Io(format!("expected --flag, got `{}`", args[i])))?;
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                map.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        }
        Ok(Flags(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, RuntimeError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| RuntimeError::Io(format!("bad value `{v}` for --{key}"))),
        }
    }

    fn is_set(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }
}

fn parse_dist(s: &str) -> Result<DistKind, RuntimeError> {
    match s.to_ascii_lowercase().as_str() {
        "bing" => Ok(DistKind::Bing),
        "finance" => Ok(DistKind::Finance),
        "lognormal" | "log-normal" => Ok(DistKind::LogNormal),
        other => Err(RuntimeError::Io(format!("unknown dist `{other}`"))),
    }
}

/// Dispatch one serve invocation; returns the text to print.
pub fn run(args: &[String]) -> Result<String, RuntimeError> {
    match args.first().map(String::as_str) {
        Some("emit") => emit(&args[1..]),
        Some("run") => run_replay(&args[1..]),
        Some("tcp") => run_tcp(&args[1..]),
        _ => Err(RuntimeError::Io(USAGE.to_string())),
    }
}

/// Deterministic jsonl stream from the endless [`JobSource`]: same flags,
/// same bytes, forever replayable.
///
/// [`JobSource`]: parflow_workloads::JobSource
fn emit(args: &[String]) -> Result<String, RuntimeError> {
    let flags = Flags::parse(args)?;
    let n: u64 = flags.parse_or("n", 100)?;
    let qps: f64 = flags.parse_or("qps", 2000.0)?;
    let seed: u64 = flags.parse_or("seed", 42)?;
    let poison_every: u64 = flags.parse_or("poison-every", 0)?;
    let dist = parse_dist(flags.get("dist").unwrap_or("bing"))?;
    let spec = WorkloadSpec::paper_fig2(dist, qps, n as usize, seed);
    let mut source = spec.job_source();
    let mut out = String::new();
    for _ in 0..n {
        let job = source.next_job();
        let poison = poison_every > 0 && (job.index + 1).is_multiple_of(poison_every);
        out.push_str(
            &Submission {
                id: job.index,
                arrival: job.arrival,
                work: job.work,
                poison,
            }
            .to_jsonl(),
        );
        out.push('\n');
    }
    Ok(out)
}

fn config_from(flags: &Flags) -> Result<ServeConfig, RuntimeError> {
    let mut cfg = ServeConfig::new(flags.parse_or("workers", 2)?);
    cfg.capacity_slots = flags.parse_or("slots", cfg.capacity_slots)?;
    cfg.queue_cap = flags.parse_or("queue-cap", cfg.queue_cap)?;
    cfg.seed = flags.parse_or("seed", cfg.seed)?;
    cfg.iters_per_unit = flags.parse_or("iters-per-unit", cfg.iters_per_unit)?;
    cfg.inbox_cap = flags.parse_or("inbox-cap", cfg.inbox_cap)?;
    cfg.max_restarts = flags.parse_or("max-restarts", cfg.max_restarts)?;
    if let Some(slo) = flags.get("slo") {
        cfg.slo_ticks = Some(
            slo.parse()
                .map_err(|_| RuntimeError::Io(format!("bad value `{slo}` for --slo")))?,
        );
    }
    if let Some(chaos) = flags.get("chaos") {
        cfg.faults = FaultSpec::parse_list(chaos).map_err(RuntimeError::Io)?;
    }
    Ok(cfg)
}

/// Finish the supervisor and render per the reporting flags.
fn report_out(sup: Supervisor, flags: &Flags) -> Result<String, RuntimeError> {
    let report = sup.finish();
    if let Some(path) = flags.get("merged-json") {
        std::fs::write(path, report.merged.to_json())
            .map_err(|e| RuntimeError::Io(format!("cannot write `{path}`: {e}")))?;
    }
    if let Some(path) = flags.get("live-json") {
        std::fs::write(path, report.live.to_json())
            .map_err(|e| RuntimeError::Io(format!("cannot write `{path}`: {e}")))?;
    }
    if flags.is_set("digest-only") {
        Ok(format!("{}\n", report.digest))
    } else {
        Ok(format!("{}\n", report.summary()))
    }
}

/// Replay jsonl from a file or stdin through a fresh supervisor.
fn run_replay(args: &[String]) -> Result<String, RuntimeError> {
    let flags = Flags::parse(args)?;
    let input = flags
        .get("input")
        .ok_or_else(|| RuntimeError::Io("missing required flag --input".into()))?;
    let mut sup = Supervisor::new(config_from(&flags)?)?;
    if input == "-" {
        run_jsonl(&mut sup, std::io::stdin().lock())?;
    } else {
        let file = std::fs::File::open(input)
            .map_err(|e| RuntimeError::Io(format!("cannot open `{input}`: {e}")))?;
        run_jsonl(&mut sup, std::io::BufReader::new(file))?;
    };
    report_out(sup, &flags)
}

/// Live mode: bind, serve `--max-conns` connections, then report.
fn run_tcp(args: &[String]) -> Result<String, RuntimeError> {
    let flags = Flags::parse(args)?;
    let addr = flags
        .get("addr")
        .ok_or_else(|| RuntimeError::Io("missing required flag --addr".into()))?;
    let max_conns: usize = flags.parse_or("max-conns", 1)?;
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| RuntimeError::Io(format!("cannot bind `{addr}`: {e}")))?;
    let mut sup = Supervisor::new(config_from(&flags)?)?;
    run_tcp_listener(&mut sup, &listener, max_conns)?;
    report_out(sup, &flags)
}

/// Count non-comment lines of a jsonl body (test helper for the binary).
pub fn jsonl_lines(body: &str) -> usize {
    body.as_bytes()
        .lines()
        .map_while(Result::ok)
        .filter(|l| !l.trim().is_empty() && !l.trim().starts_with('#'))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn emit_is_deterministic_and_parseable() {
        let a = run(&argv("emit --n 50 --qps 1500 --seed 7")).expect("emit");
        let b = run(&argv("emit --n 50 --qps 1500 --seed 7")).expect("emit");
        assert_eq!(a, b);
        assert_eq!(jsonl_lines(&a), 50);
        for line in a.lines() {
            crate::protocol::parse_submission(line).expect("emitted line parses");
        }
        let c = run(&argv("emit --n 50 --qps 1500 --seed 8")).expect("emit");
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn emit_poison_every() {
        let out = run(&argv("emit --n 10 --seed 1 --poison-every 3")).expect("emit");
        let poisoned = out.lines().filter(|l| l.contains("\"poison\"")).count();
        assert_eq!(poisoned, 3);
    }

    #[test]
    fn replay_digest_is_stable_across_worker_counts() {
        let stream = run(&argv("emit --n 40 --qps 2000 --seed 5")).expect("emit");
        let path = std::env::temp_dir().join("parflow_serve_cli_test.jsonl");
        std::fs::write(&path, &stream).expect("write stream");
        let base = format!(
            "run --input {} --seed 9 --iters-per-unit 1 --digest-only",
            path.display()
        );
        let d1 = run(&argv(&format!("{base} --workers 1"))).expect("run w1");
        let d2 = run(&argv(&format!("{base} --workers 2"))).expect("run w2");
        assert_eq!(d1, d2);
        assert_eq!(d1.trim().len(), 16);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_usage_is_an_io_error() {
        assert!(matches!(run(&argv("bogus")), Err(RuntimeError::Io(_))));
        assert!(matches!(run(&argv("run")), Err(RuntimeError::Io(_))));
        assert!(matches!(
            run(&argv("run --input missing.jsonl --chaos nope")),
            Err(RuntimeError::Io(_))
        ));
    }
}
