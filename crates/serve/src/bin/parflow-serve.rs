//! The `parflow-serve` binary: a thin wrapper over [`parflow_serve::cli`].
//! See `docs/SERVE.md` or run without arguments for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parflow_serve::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("parflow-serve: {e}");
            std::process::exit(2);
        }
    }
}
