//! The execution layer: `WorkerHandle` (what a supervisor needs from a
//! worker) and `ThreadWorker` (the in-process implementation used by the
//! binary, the tests and CI).
//!
//! The contract is **at-least-once dispatch, at-most-once acknowledgement**:
//! a worker may die holding unacknowledged orders (its inbox and its
//! in-flight job are lost), but it never acknowledges a job it did not
//! finish. The supervisor re-admits unacknowledged orders after a death
//! and deduplicates acknowledgements by submission id, which composes to
//! exactly-once accounting end to end.
//!
//! Chaos is deterministic by construction: a worker dies after executing a
//! fixed *count* of orders (`kill_after`, first incarnation only), or when
//! it picks up a poisoned order — never on a timer. Wall clocks here only
//! pace the idle loop; they never decide an observable outcome.

use crate::protocol::Submission;
use parflow_runtime::spin_kernel;
use parflow_time::Work;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One unit of dispatched work (an admitted submission bound for a worker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkOrder {
    /// Submission id (the idempotency key acknowledgements carry back).
    pub id: u64,
    /// Service demand in work units.
    pub work: Work,
    /// Chaos: the executing worker dies mid-job without acknowledging.
    pub poison: bool,
}

impl WorkOrder {
    /// Build an order from an admitted submission.
    pub fn from_submission(sub: &Submission) -> WorkOrder {
        WorkOrder {
            id: sub.id,
            work: sub.work,
            poison: sub.poison,
        }
    }
}

/// A finished job, acknowledged by the worker that ran it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Submission id of the finished job.
    pub id: u64,
    /// Kernel checksum (proof of execution; folded into live telemetry).
    pub checksum: u64,
    /// Index of the worker that ran the job.
    pub worker: usize,
}

/// Why a non-blocking submit did not take the order.
#[derive(Debug)]
pub enum SubmitError {
    /// Inbox full — back off and retry; the order is handed back.
    Full(WorkOrder),
    /// The worker is gone — re-admit elsewhere; the order is handed back.
    Dead(WorkOrder),
}

/// What a supervisor needs from an execution shard. Object-safe so
/// supervisors can mix implementations (in-process threads today; a
/// process or remote shard would implement the same surface).
pub trait WorkerHandle {
    /// Hand an order to the worker without blocking.
    fn try_submit(&mut self, order: WorkOrder) -> Result<(), SubmitError>;
    /// Drain every acknowledgement produced since the last call.
    fn drain_completions(&mut self) -> Vec<Completion>;
    /// Monotone liveness counter bumped by the worker loop (watchdog food).
    fn heartbeat(&self) -> u64;
    /// True once the worker thread has exited (crash or shutdown).
    fn is_finished(&mut self) -> bool;
    /// Ask the worker to stop, then join it. Idempotent.
    fn shutdown(&mut self);
}

/// Spawn parameters for one [`ThreadWorker`] incarnation.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Worker index (stable across incarnations; used in telemetry).
    pub index: usize,
    /// Spin-kernel iterations per work unit (sizes real CPU burn).
    pub iters_per_unit: u64,
    /// Bounded inbox depth (backpressure towards the supervisor).
    pub inbox_cap: usize,
    /// Chaos: die after acknowledging this many orders (`None` = never).
    pub kill_after: Option<u64>,
}

/// In-process worker: a thread with a bounded inbox, an acknowledgement
/// channel, a heartbeat, and a stop flag.
#[derive(Debug)]
pub struct ThreadWorker {
    index: usize,
    inbox: Option<SyncSender<WorkOrder>>,
    acks: Receiver<Completion>,
    heartbeat: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ThreadWorker {
    /// Spawn one worker incarnation.
    pub fn spawn(cfg: WorkerConfig) -> ThreadWorker {
        let (inbox_tx, inbox_rx) = std::sync::mpsc::sync_channel::<WorkOrder>(cfg.inbox_cap.max(1));
        let (ack_tx, ack_rx) = std::sync::mpsc::channel::<Completion>();
        let heartbeat = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let hb = Arc::clone(&heartbeat);
        let stop_flag = Arc::clone(&stop);
        let index = cfg.index;
        let iters = cfg.iters_per_unit.max(1);
        let join = std::thread::spawn(move || {
            let mut executed: u64 = 0;
            loop {
                hb.fetch_add(1, Ordering::Relaxed);
                if stop_flag.load(Ordering::Relaxed) {
                    return;
                }
                match inbox_rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(order) => {
                        if order.poison {
                            // Simulated crash mid-job: no ack, loop exits,
                            // the thread "dies" with the inbox contents.
                            return;
                        }
                        let checksum =
                            spin_kernel(order.work.max(1).saturating_mul(iters), order.id);
                        executed += 1;
                        let acked = ack_tx
                            .send(Completion {
                                id: order.id,
                                checksum,
                                worker: index,
                            })
                            .is_ok();
                        if !acked || cfg.kill_after == Some(executed) {
                            // Deterministic chaos: die after acking the
                            // N-th order; anything still in the inbox is
                            // lost and must be re-admitted.
                            return;
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
        });
        ThreadWorker {
            index,
            inbox: Some(inbox_tx),
            acks: ack_rx,
            heartbeat,
            stop,
            join: Some(join),
        }
    }

    /// Worker index (stable across incarnations).
    pub fn index(&self) -> usize {
        self.index
    }
}

impl WorkerHandle for ThreadWorker {
    fn try_submit(&mut self, order: WorkOrder) -> Result<(), SubmitError> {
        match &self.inbox {
            None => Err(SubmitError::Dead(order)),
            Some(tx) => match tx.try_send(order) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(o)) => Err(SubmitError::Full(o)),
                Err(TrySendError::Disconnected(o)) => Err(SubmitError::Dead(o)),
            },
        }
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        loop {
            match self.acks.try_recv() {
                Ok(c) => out.push(c),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return out,
            }
        }
    }

    fn heartbeat(&self) -> u64 {
        self.heartbeat.load(Ordering::Relaxed)
    }

    fn is_finished(&mut self) -> bool {
        self.join.as_ref().map(|j| j.is_finished()).unwrap_or(true)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.inbox = None; // disconnect wakes a blocked recv
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ThreadWorker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_drain(w: &mut ThreadWorker, n: usize) -> Vec<Completion> {
        let mut out = Vec::new();
        for _ in 0..10_000 {
            out.extend(w.drain_completions());
            if out.len() >= n {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        out
    }

    fn cfg(kill_after: Option<u64>) -> WorkerConfig {
        WorkerConfig {
            index: 3,
            iters_per_unit: 1,
            inbox_cap: 8,
            kill_after,
        }
    }

    #[test]
    fn executes_and_acks_in_order() {
        let mut w = ThreadWorker::spawn(cfg(None));
        for id in 0..5u64 {
            w.try_submit(WorkOrder {
                id,
                work: 3,
                poison: false,
            })
            .unwrap();
        }
        let acks = wait_drain(&mut w, 5);
        assert_eq!(
            acks.iter().map(|c| c.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(acks.iter().all(|c| c.worker == 3));
        // Checksums are the deterministic kernel output, not zero.
        assert!(acks.iter().all(|c| c.checksum != 0));
        w.shutdown();
        assert!(w.is_finished());
    }

    #[test]
    fn kill_after_dies_past_nth_ack() {
        let mut w = ThreadWorker::spawn(cfg(Some(2)));
        for id in 0..4u64 {
            let _ = w.try_submit(WorkOrder {
                id,
                work: 1,
                poison: false,
            });
        }
        let acks = wait_drain(&mut w, 2);
        assert_eq!(acks.len(), 2);
        for _ in 0..10_000 {
            if w.is_finished() {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(w.is_finished(), "worker should crash after 2 acks");
        // Orders 2 and 3 were never acknowledged.
        assert!(w.drain_completions().is_empty());
    }

    #[test]
    fn poison_kills_without_ack() {
        let mut w = ThreadWorker::spawn(cfg(None));
        w.try_submit(WorkOrder {
            id: 9,
            work: 1,
            poison: true,
        })
        .unwrap();
        for _ in 0..10_000 {
            if w.is_finished() {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(w.is_finished());
        assert!(w.drain_completions().is_empty());
    }

    #[test]
    fn dead_worker_reports_submit_dead() {
        let mut w = ThreadWorker::spawn(cfg(None));
        w.shutdown();
        match w.try_submit(WorkOrder {
            id: 1,
            work: 1,
            poison: false,
        }) {
            Err(SubmitError::Dead(o)) => assert_eq!(o.id, 1),
            other => panic!("expected Dead, got {other:?}"),
        }
    }

    #[test]
    fn heartbeat_advances_while_idle() {
        let mut w = ThreadWorker::spawn(cfg(None));
        let h0 = w.heartbeat();
        std::thread::sleep(Duration::from_millis(10));
        assert!(w.heartbeat() > h0);
        w.shutdown();
    }

    #[test]
    fn full_inbox_backpressures() {
        // kill_after(0) is never triggered; use a poison first so the
        // worker dies instantly and the inbox (cap 8) fills behind it.
        let mut w = ThreadWorker::spawn(WorkerConfig {
            index: 0,
            iters_per_unit: 1,
            inbox_cap: 2,
            kill_after: None,
        });
        w.try_submit(WorkOrder {
            id: 0,
            work: 1,
            poison: true,
        })
        .unwrap();
        // Stuff the inbox until Full or Dead shows up; both are explicit.
        let mut saw_backpressure = false;
        for id in 1..100u64 {
            match w.try_submit(WorkOrder {
                id,
                work: 1,
                poison: false,
            }) {
                Ok(()) => {}
                Err(SubmitError::Full(_)) | Err(SubmitError::Dead(_)) => {
                    saw_backpressure = true;
                    break;
                }
            }
        }
        assert!(saw_backpressure, "unbounded inbox would be a memory leak");
    }
}
