//! The wire protocol: one JSON object per line (jsonl), hand-rolled in
//! both directions so the crate works offline (the vendored `serde_json`
//! stub cannot serialize).
//!
//! A submission line looks like
//!
//! ```text
//! {"id": 7, "arrival": 1200, "work": 35}
//! {"id": 8, "arrival": 1260, "work": 90, "poison": true}
//! ```
//!
//! `id` is the client-chosen idempotency key: re-sending a line with an id
//! the service has already admitted or completed is a no-op (counted, never
//! double-executed). `arrival` is the submission's virtual-time stamp in
//! ticks and must be non-decreasing within a stream — the admission ledger
//! clamps regressions and counts them. `work` is the job's service demand
//! in work units. `poison` is a chaos hook: the worker that picks the job
//! up dies mid-execution without acknowledging it (the job is re-admitted
//! with the poison stripped, so it still completes exactly once).
//!
//! The parser is tolerant by design: it scans for the fields it knows and
//! ignores everything else, so new optional fields never break old
//! readers. A line missing a required field is a [`ParseError`], which the
//! ingest layer counts and skips — a malformed line must never take down
//! the service.

use parflow_time::{Ticks, Work};

/// One job submission, decoded from a jsonl line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Submission {
    /// Client-chosen idempotency key.
    pub id: u64,
    /// Virtual arrival time in ticks (non-decreasing within a stream).
    pub arrival: Ticks,
    /// Service demand in work units.
    pub work: Work,
    /// Chaos hook: kill the executing worker mid-job (first attempt only).
    pub poison: bool,
}

impl Submission {
    /// Serialize as one jsonl line (no trailing newline). Round-trips
    /// through [`parse_submission`]; `poison` is emitted only when set so
    /// ordinary traffic stays minimal.
    pub fn to_jsonl(&self) -> String {
        if self.poison {
            format!(
                "{{\"id\": {}, \"arrival\": {}, \"work\": {}, \"poison\": true}}",
                self.id, self.arrival, self.work
            )
        } else {
            format!(
                "{{\"id\": {}, \"arrival\": {}, \"work\": {}}}",
                self.id, self.arrival, self.work
            )
        }
    }
}

/// Why a line failed to decode (message is user-facing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad submission line: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Scan a scrubbed JSON object for `"key": <u64>`.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)?;
    let rest = line[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Scan for `"key": true|false` (absent means `false`).
fn bool_field(line: &str, key: &str) -> bool {
    let needle = format!("\"{key}\"");
    match line.find(&needle) {
        Some(at) => {
            let rest = line[at + needle.len()..].trim_start();
            matches!(rest.strip_prefix(':').map(str::trim_start),
                     Some(v) if v.starts_with("true"))
        }
        None => false,
    }
}

/// Decode one jsonl line. Unknown fields are ignored; missing required
/// fields (`id`, `arrival`, `work`) are an error.
pub fn parse_submission(line: &str) -> Result<Submission, ParseError> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err(ParseError("expected a JSON object".into()));
    }
    let id = u64_field(line, "id").ok_or_else(|| ParseError("missing or bad \"id\"".into()))?;
    let arrival = u64_field(line, "arrival")
        .ok_or_else(|| ParseError("missing or bad \"arrival\"".into()))?;
    let work =
        u64_field(line, "work").ok_or_else(|| ParseError("missing or bad \"work\"".into()))?;
    Ok(Submission {
        id,
        arrival,
        work,
        poison: bool_field(line, "poison"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for sub in [
            Submission {
                id: 0,
                arrival: 0,
                work: 1,
                poison: false,
            },
            Submission {
                id: u64::MAX,
                arrival: 123_456,
                work: 99,
                poison: true,
            },
        ] {
            assert_eq!(parse_submission(&sub.to_jsonl()), Ok(sub));
        }
    }

    #[test]
    fn tolerant_of_whitespace_order_and_unknown_fields() {
        let line = r#"  { "work":5 ,"future_field": [1,2], "arrival" : 10, "id": 3 }  "#;
        assert_eq!(
            parse_submission(line),
            Ok(Submission {
                id: 3,
                arrival: 10,
                work: 5,
                poison: false,
            })
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"id": 1, "arrival": 2}"#,
            r#"{"id": -1, "arrival": 2, "work": 3}"#,
            r#"{"id": "x", "arrival": 2, "work": 3}"#,
        ] {
            assert!(parse_submission(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn poison_variants() {
        assert!(
            !parse_submission(r#"{"id":1,"arrival":2,"work":3,"poison":false}"#)
                .map(|s| s.poison)
                .unwrap_or(true)
        );
        assert!(
            parse_submission(r#"{"id":1,"arrival":2,"work":3,"poison": true}"#)
                .map(|s| s.poison)
                .unwrap_or(false)
        );
    }
}
