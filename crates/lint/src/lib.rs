//! # parflow-lint
//!
//! Project-specific static analysis for the parflow workspace. The rules
//! protect the invariants every golden, differential and RNG-stream claim
//! in this repo rests on:
//!
//! * **L1 `nondeterminism`** — no wall clocks, OS entropy, or hash-order
//!   containers in engine/golden paths;
//! * **L2 `truncating-cast`** — no silently-truncating `as` casts on
//!   counter/accumulator widths (the PR 3 `failed_steals` u32-saturation
//!   family);
//! * **L3 `panicking`** — no `unwrap`/`expect`/panicking percentile calls
//!   in engine hot paths and worker loops, *including* helpers reachable
//!   from the declared engine entry points through the workspace call
//!   graph (see [`callgraph`]);
//! * **L4 `rng`** — only declared files may construct or advance a seeded
//!   RNG stream;
//! * **L5 `counter-overflow`** — telemetry counters accumulate with
//!   saturating/checked arithmetic, never bare `+=`;
//! * **L6 `float-determinism`** — no order-dependent float accumulation
//!   in golden-compared paths;
//! * **`unused-allow`** — inline allows that no longer suppress anything
//!   fail the lint.
//!
//! The linter runs in two passes: pass 1 lexes every collected file and
//! applies the file-scoped rules; pass 2 builds a lightweight function
//! call graph from the same lexer output and applies the reachability
//! form of L3, then audits the inline allows.
//!
//! Scope and file-level exemptions live in the workspace-root `lint.toml`;
//! individual sites are excused with `// lint: allow(<rule>) <reason>`.
//! The linter is dependency-free (hand-rolled lexer and TOML-subset
//! reader) because the workspace builds in network-isolated containers
//! where `syn`/`toml` are unavailable; the lexical pass is conservative
//! and never requires type information. See `docs/STATIC_ANALYSIS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError, RuleCfg};
pub use rules::{Diagnostic, RULES};

use std::collections::BTreeSet;
use std::path::Path;

/// Lint a set of in-memory files as one workspace: file-scoped rules on
/// each file, then the call-graph reachability pass and the unused-allow
/// audit across the whole set. Diagnostics come back sorted by
/// (file, line, rule) — the linter's own output order is deterministic by
/// construction.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    let scrubbed: Vec<lexer::Scrubbed> = files.iter().map(|(_, s)| lexer::scrub(s)).collect();
    let mut used = rules::UsedAllows::default();
    let mut out = Vec::new();
    for ((rel, source), scr) in files.iter().zip(&scrubbed) {
        out.extend(rules::lint_file(rel, source, scr, cfg, &mut used));
    }
    out.extend(callgraph::transitive_panicking(
        files, &scrubbed, cfg, &mut used,
    ));
    out.extend(rules::unused_allows(files, &scrubbed, cfg, &used));
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out.dedup();
    out
}

/// Lint one in-memory file (used by the fixture self-tests). Single-file
/// shorthand for [`lint_files`]; the call-graph pass sees only this file.
pub fn lint_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    lint_files(&[(rel_path.to_string(), source.to_string())], cfg)
}

/// Walk the workspace under `root` and lint every `.rs` file any rule
/// scopes (the union of all scopes is also the call-graph universe).
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Diagnostic>> {
    // Union of every rule's scope, deduplicated and ordered.
    let mut names: BTreeSet<String> = BTreeSet::new();
    for rule in cfg.rules.values() {
        for p in &rule.paths {
            let abs = root.join(p);
            if abs.is_file() {
                names.insert(p.clone());
            } else if abs.is_dir() {
                collect_rs(&abs, root, &mut names)?;
            }
            // Nonexistent scope entries are tolerated: scopes describe
            // intent and files move between PRs.
        }
    }
    let mut files = Vec::with_capacity(names.len());
    for rel in names {
        let source = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, source));
    }
    Ok(lint_files(&files, cfg))
}

fn collect_rs(dir: &Path, root: &Path, out: &mut BTreeSet<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.insert(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// a `lint.toml`.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("lint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
