//! # parflow-lint
//!
//! Project-specific static analysis for the parflow workspace. Four rules
//! protect the invariants every golden, differential and RNG-stream claim
//! in this repo rests on:
//!
//! * **L1 `nondeterminism`** — no wall clocks, OS entropy, or hash-order
//!   containers in engine/golden paths;
//! * **L2 `truncating-cast`** — no silently-truncating `as` casts on
//!   counter/accumulator widths (the PR 3 `failed_steals` u32-saturation
//!   family);
//! * **L3 `panicking`** — no `unwrap`/`expect`/panicking percentile calls
//!   in engine hot paths and worker loops;
//! * **L4 `rng`** — only declared files may construct or advance a seeded
//!   RNG stream.
//!
//! Scope and file-level exemptions live in the workspace-root `lint.toml`;
//! individual sites are excused with `// lint: allow(<rule>) <reason>`.
//! The linter is dependency-free (hand-rolled lexer and TOML-subset
//! reader) because the workspace builds in network-isolated containers
//! where `syn`/`toml` are unavailable; the lexical pass is conservative
//! and never requires type information. See `docs/STATIC_ANALYSIS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError, RuleCfg};
pub use rules::{Diagnostic, RULES};

use std::collections::BTreeSet;
use std::path::Path;

/// Lint one in-memory file (used by the fixture self-tests).
pub fn lint_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    let scr = lexer::scrub(source);
    rules::lint_file(rel_path, source, &scr, cfg)
}

/// Walk the workspace under `root` and lint every `.rs` file any rule
/// scopes. Diagnostics come back sorted by (file, line, rule) — the
/// linter's own output order is deterministic by construction.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Diagnostic>> {
    // Union of every rule's scope, deduplicated and ordered.
    let mut files: BTreeSet<String> = BTreeSet::new();
    for rule in cfg.rules.values() {
        for p in &rule.paths {
            let abs = root.join(p);
            if abs.is_file() {
                files.insert(p.clone());
            } else if abs.is_dir() {
                collect_rs(&abs, root, &mut files)?;
            }
            // Nonexistent scope entries are tolerated: scopes describe
            // intent and files move between PRs.
        }
    }
    let mut out = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        out.extend(lint_source(rel, &source, cfg));
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut BTreeSet<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.insert(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// a `lint.toml`.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("lint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
