//! A minimal Rust lexer for lexical linting.
//!
//! The linter does not need full parsing: every rule is a token-pattern
//! check scoped to configured paths. What it *does* need, to avoid false
//! positives, is to distinguish code from comments and string/char
//! literals, and to know which lines belong to `#[cfg(test)]` / `#[test]`
//! regions (rules only govern production code).
//!
//! [`scrub`] produces a copy of the source in which the *contents* of
//! comments and string/char literals are replaced by spaces, preserving
//! line structure exactly, so byte offsets and line numbers in the
//! scrubbed text match the original. Line comments are captured verbatim
//! on the side because `// lint: allow(<rule>) <reason>` annotations live
//! there.

/// Result of scrubbing one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// Source with comment and literal contents blanked; identical line
    /// structure to the input.
    pub code: String,
    /// For each line (0-based), the text of any `//` comment on it.
    pub line_comments: Vec<String>,
    /// For each line (0-based), whether it lies inside a test region.
    pub test_mask: Vec<bool>,
}

/// Blank out comments and string/char literal contents, keeping line
/// structure. Handles nested block comments, escapes, raw strings
/// (`r"…"`, `r#"…"#`, and their `b`-prefixed forms) and the char-literal
/// vs. lifetime ambiguity.
pub fn scrub(src: &str) -> Scrubbed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(src.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut line = 0usize;

    let mut i = 0usize;
    // Push `c` to the output, tracking lines.
    macro_rules! emit {
        ($c:expr) => {{
            let c: char = $c;
            out.push(c);
            if c == '\n' {
                line += 1;
                comments.push(String::new());
            }
        }};
    }
    // Blank one source char: newlines survive, everything else is a space.
    macro_rules! blank {
        ($c:expr) => {{
            let c: char = $c;
            emit!(if c == '\n' { '\n' } else { ' ' });
        }};
    }

    while i < n {
        let c = chars[i];
        // Line comment: capture its text (annotations live here).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                blank!(chars[i]);
                i += 1;
            }
            comments[line].push_str(&text);
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            blank!(chars[i]);
            blank!(chars[i + 1]);
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    blank!(chars[i]);
                    blank!(chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    blank!(chars[i]);
                    blank!(chars[i + 1]);
                    i += 2;
                } else {
                    blank!(chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string (r"…", r#"…"#, br#"…"#): count hashes, scan to the
        // matching close. The `r`/`b` must not continue an identifier.
        if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
            let mut j = i;
            if c == 'b' && j + 1 < n && chars[j + 1] == 'r' {
                j += 1;
            }
            if chars[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    // Emit the prefix as-is (it is code), blank the body.
                    while i <= k {
                        blank!(chars[i]);
                        i += 1;
                    }
                    'raw: while i < n {
                        if chars[i] == '"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < n && chars[i + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                for _ in 0..=hashes {
                                    blank!(chars[i]);
                                    i += 1;
                                }
                                break 'raw;
                            }
                        }
                        blank!(chars[i]);
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Ordinary (or byte) string literal.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"' && !prev_is_ident(&chars, i)) {
            if c == 'b' {
                blank!(chars[i]);
                i += 1;
            }
            blank!(chars[i]);
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    blank!(chars[i]);
                    blank!(chars[i + 1]);
                    i += 2;
                    continue;
                }
                let done = chars[i] == '"';
                blank!(chars[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals; 'a (no
        // closing quote) is a lifetime and stays in the code.
        if c == '\'' {
            let is_char_lit = if i + 1 < n && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && chars[i + 1] != '\'' && chars[i + 2] == '\''
            };
            if is_char_lit {
                blank!(chars[i]);
                i += 1;
                if i < n && chars[i] == '\\' {
                    blank!(chars[i]);
                    i += 1;
                    // Escape payload up to the closing quote.
                    while i < n && chars[i] != '\'' {
                        blank!(chars[i]);
                        i += 1;
                    }
                } else if i < n {
                    blank!(chars[i]);
                    i += 1;
                }
                if i < n && chars[i] == '\'' {
                    blank!(chars[i]);
                    i += 1;
                }
                continue;
            }
        }
        emit!(c);
        i += 1;
    }

    let num_lines = out.lines().count().max(1);
    comments.resize(num_lines, String::new());
    let test_mask = compute_test_mask(&out, num_lines);
    Scrubbed {
        code: out,
        line_comments: comments,
        test_mask,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Mark every line belonging to a `#[cfg(test)]` or `#[test]` item: from
/// the attribute to the close of the brace block that follows it (or the
/// terminating `;` for braceless items like `#[cfg(test)] mod tests;`).
fn compute_test_mask(scrubbed: &str, num_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; num_lines];
    let lines: Vec<&str> = scrubbed.lines().collect();
    let mut l = 0usize;
    while l < lines.len() {
        let t = lines[l].trim_start();
        if t.starts_with("#[cfg(test)]")
            || t.starts_with("#[test]")
            || t.starts_with("#[cfg(all(test")
        {
            // Scan forward for the opening brace of the annotated item.
            let mut depth = 0i64;
            let mut opened = false;
            let mut end = l;
            'scan: for (off, cur) in lines[l..].iter().enumerate() {
                for ch in cur.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth == 0 {
                                end = l + off;
                                break 'scan;
                            }
                        }
                        ';' if !opened && depth == 0 => {
                            end = l + off;
                            break 'scan;
                        }
                        _ => {}
                    }
                }
                end = l + off;
            }
            for m in mask.iter_mut().take((end + 1).min(num_lines)).skip(l) {
                *m = true;
            }
            l = end + 1;
        } else {
            l += 1;
        }
    }
    mask
}

/// Find word-bounded occurrences of `needle` in `hay`: the match may not
/// be preceded or followed by an identifier character (when the needle's
/// own endpoint is an identifier character).
pub fn find_word(hay: &str, needle: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let first_ident = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let last_ident = needle
        .chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = !first_ident
            || start == 0
            || !(hb[start - 1].is_ascii_alphanumeric() || hb[start - 1] == b'_');
        let post_ok =
            !last_ident || end >= hb.len() || !(hb[end].is_ascii_alphanumeric() || hb[end] == b'_');
        if pre_ok && post_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_blanked() {
        let s = scrub("let x = \"Instant::now\"; // HashMap here\nlet y = 1;");
        assert!(!s.code.contains("Instant::now"));
        assert!(!s.code.contains("HashMap"));
        assert!(s.line_comments[0].contains("HashMap"));
        assert_eq!(s.code.lines().count(), 2);
    }

    #[test]
    fn nested_block_comment() {
        let s = scrub("a /* x /* y */ z */ b\nc");
        assert!(s.code.contains('a') && s.code.contains('b') && s.code.contains('c'));
        assert!(!s.code.contains('y') && !s.code.contains('z'));
    }

    #[test]
    fn raw_string_blanked() {
        let s = scrub("let p = r#\"thread_rng() \"quoted\" \"#; let q = 2;");
        assert!(!s.code.contains("thread_rng"));
        assert!(s.code.contains("let q = 2;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_blanked() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(s.code.contains("<'a>"), "{}", s.code);
        assert!(s.code.contains("&'a str"));
        assert!(!s.code.contains('x') || !s.code.contains("'x'"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let s = scrub(src);
        assert!(!s.test_mask[0]);
        assert!(s.test_mask[1] && s.test_mask[2] && s.test_mask[3] && s.test_mask[4]);
        assert!(!s.test_mask[5]);
    }

    #[test]
    fn word_boundaries_respected() {
        assert_eq!(
            find_word("try_percentile_sorted(x)", "percentile_sorted").len(),
            0
        );
        assert_eq!(
            find_word("percentile_sorted(x)", "percentile_sorted").len(),
            1
        );
        assert_eq!(find_word("a HashMapX b", "HashMap").len(), 0);
        assert_eq!(find_word("HashMap::new()", "HashMap").len(), 1);
    }
}
