//! The project rules.
//!
//! Each rule is a lexical token-pattern check over scrubbed source (see
//! [`crate::lexer`]), scoped by `lint.toml` paths and overridable per
//! line with `// lint: allow(<rule>) <reason>` on the flagged line or the
//! line above (the reason is mandatory). Test code (`#[cfg(test)]` /
//! `#[test]` regions) is never linted: the rules protect production
//! invariants, and tests legitimately unwrap.
//!
//! | rule | invariant protected |
//! |---|---|
//! | `nondeterminism` (L1) | engine/golden paths take no input from wall clocks, OS entropy, or hash iteration order |
//! | `truncating-cast` (L2) | counters and accumulators never silently truncate (`u64 → u32` class; the PR 3 `failed_steals` saturation family) |
//! | `panicking` (L3) | engine hot paths and worker loops never panic — including helpers merely *reachable* from the declared engine entry points (see [`crate::callgraph`]) |
//! | `rng` (L4) | only declared files may construct or advance a seeded RNG stream |
//! | `counter-overflow` (L5) | telemetry counters use saturating/checked arithmetic, never bare `+=` (endless streaming runs overflow wrapping counters) |
//! | `float-determinism` (L6) | no order-dependent `f64`/`f32` iterator accumulation in golden-compared paths without a pinned iteration order |
//! | `unused-allow` | every `// lint: allow(...)` annotation still suppresses something; stale ones are configuration debt and fail the lint |
//!
//! See `docs/STATIC_ANALYSIS.md` for the full rule-to-invariant map.

use std::collections::BTreeSet;

use crate::lexer::{find_word, Scrubbed};

/// `(file, 0-based annotation line, rule)` triples whose inline allow
/// actually suppressed a diagnostic in this run. The `unused-allow` pass
/// flags every annotation that is *not* in this set.
pub type UsedAllows = BTreeSet<(String, usize, &'static str)>;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule slug (`nondeterminism`, `truncating-cast`, `panicking`, `rng`).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Rule slugs in reporting order.
pub const RULES: &[&str] = &[
    "nondeterminism",
    "truncating-cast",
    "panicking",
    "rng",
    "counter-overflow",
    "float-determinism",
    "unused-allow",
];

/// Integer types an `as` cast can silently truncate 64-bit counters into.
/// `JobId`/`NodeId` are the workspace's u32 aliases — casting an index
/// into them truncates just as silently as a literal `as u32`.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "JobId", "NodeId"];

/// L1: nondeterminism sources in determinism-scoped paths.
const NONDET_NEEDLES: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read"),
    ("SystemTime::now", "wall-clock read"),
    ("thread_rng", "OS-entropy RNG"),
    (
        "HashMap",
        "hash-order container (iteration order is nondeterministic)",
    ),
    (
        "HashSet",
        "hash-order container (iteration order is nondeterministic)",
    ),
    (
        "RandomState",
        "hash-order container (iteration order is nondeterministic)",
    ),
];

/// L3: panicking calls in hot paths.
pub(crate) const PANIC_NEEDLES: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "percentile_sorted(",
];

/// L4: RNG construction / seeding entry points.
const RNG_NEEDLES: &[&str] = &[
    "SmallRng::",
    "StdRng::",
    "from_entropy",
    "seed_from_u64",
    "from_seed",
    "from_rng",
];

/// L6: order-dependent float accumulation over iterators.
const FLOAT_NEEDLES: &[&str] = &[
    "sum::<f64>",
    "sum::<f32>",
    "product::<f64>",
    "product::<f32>",
];

/// Is line `idx` (0-based) excused from `rule` by an inline annotation on
/// the same or previous line? The annotation must carry a reason. Returns
/// the 0-based line of the annotation that grants the exemption, so the
/// caller can mark it used.
pub(crate) fn allowed(scr: &Scrubbed, idx: usize, rule: &str) -> Option<usize> {
    let probe = |i: usize| -> bool {
        scr.line_comments
            .get(i)
            .is_some_and(|c| annotation_allows(c, rule))
    };
    if probe(idx) {
        Some(idx)
    } else if idx > 0 && probe(idx - 1) {
        Some(idx - 1)
    } else {
        None
    }
}

/// Does comment text contain `lint: allow(<rule>) <reason>`?
fn annotation_allows(comment: &str, rule: &str) -> bool {
    let Some(pos) = comment.find("lint: allow(") else {
        return false;
    };
    let rest = &comment[pos + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[..close].trim() == rule && !rest[close + 1..].trim().is_empty()
}

/// Run every file-scoped rule that `cfg` scopes onto `rel_path` over one
/// file. Inline allows that actually suppress a finding are recorded in
/// `used` for the later `unused-allow` pass.
pub fn lint_file(
    rel_path: &str,
    source: &str,
    scr: &Scrubbed,
    cfg: &crate::config::Config,
    used: &mut UsedAllows,
) -> Vec<Diagnostic> {
    let raw_lines: Vec<&str> = source.lines().collect();
    let code_lines: Vec<&str> = scr.code.lines().collect();
    let mut out = Vec::new();

    let active = |rule: &str| cfg.rules.get(rule).is_some_and(|r| r.applies_to(rel_path));

    for (idx, line) in code_lines.iter().enumerate() {
        if scr.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        // Collect this line's findings per rule *first*, then consult the
        // inline allow — that is how we know whether an annotation earned
        // its keep (the `unused-allow` rule needs exactly this fact).
        let mut findings: Vec<(&'static str, String)> = Vec::new();
        if active("nondeterminism") {
            for &(needle, why) in NONDET_NEEDLES {
                if !find_word(line, needle).is_empty() {
                    findings.push((
                        "nondeterminism",
                        format!("`{needle}` in a determinism-scoped path: {why}"),
                    ));
                }
            }
        }
        if active("truncating-cast") {
            for target in narrowing_casts(line) {
                findings.push((
                    "truncating-cast",
                    format!(
                        "`as {target}` can silently truncate a 64-bit counter; \
                         widen, use `try_into`, or annotate why the value is bounded"
                    ),
                ));
            }
            if (line.contains(".as_nanos()") || line.contains(".as_micros()"))
                && !find_word(line, "u64").is_empty()
                && line.contains(" as ")
            {
                findings.push((
                    "truncating-cast",
                    "`u128 -> u64` truncation of a Duration reading; \
                     annotate the horizon that makes it safe"
                        .to_string(),
                ));
            }
        }
        if active("panicking") {
            for &needle in PANIC_NEEDLES {
                if !find_word(line, needle).is_empty() {
                    findings.push((
                        "panicking",
                        format!("`{needle}` in an engine hot path / worker loop"),
                    ));
                }
            }
        }
        if active("rng") {
            for &needle in RNG_NEEDLES {
                if !find_word(line, needle).is_empty() {
                    findings.push((
                        "rng",
                        format!(
                            "`{needle}` constructs/advances an RNG stream outside \
                             the declared RNG-owning files"
                        ),
                    ));
                }
            }
        }
        if active("counter-overflow") && line.contains("+=") {
            findings.push((
                "counter-overflow",
                "bare `+=` on a telemetry counter wraps on overflow in endless \
                 streaming runs; use `saturating_add`/`checked_add`"
                    .to_string(),
            ));
        }
        if active("float-determinism") {
            for &needle in FLOAT_NEEDLES {
                if line.contains(needle) {
                    findings.push((
                        "float-determinism",
                        format!(
                            "`{needle}` accumulates floats in iteration order; in a \
                             golden-compared path the order must be pinned — sum over \
                             an index-ordered slice and annotate why the order is fixed"
                        ),
                    ));
                }
            }
        }

        for (rule, message) in findings {
            if let Some(ann) = allowed(scr, idx, rule) {
                used.insert((rel_path.to_string(), ann, rule));
                continue;
            }
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: idx + 1,
                rule,
                message,
                snippet: raw_lines
                    .get(idx)
                    .map_or(String::new(), |l| l.trim().to_string()),
            });
        }
    }
    out
}

/// The `unused-allow` pass: every inline `lint: allow(<rule>)` annotation
/// in scope must have suppressed at least one finding this run (recorded
/// in `used`). Stale annotations are debt: they read as if a dangerous
/// site were present and excused, when actually nothing is there.
pub fn unused_allows(
    files: &[(String, String)],
    scrubbed: &[Scrubbed],
    cfg: &crate::config::Config,
    used: &UsedAllows,
) -> Vec<Diagnostic> {
    let Some(rule_cfg) = cfg.rules.get("unused-allow") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for ((rel, source), scr) in files.iter().zip(scrubbed) {
        if !rule_cfg.applies_to(rel) {
            continue;
        }
        let raw_lines: Vec<&str> = source.lines().collect();
        for (idx, comment) in scr.line_comments.iter().enumerate() {
            if scr.test_mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            for (named, has_reason) in annotations_in(comment) {
                let message = if !RULES.contains(&named.as_str()) {
                    format!("allow names unknown rule `{named}`")
                } else if !has_reason {
                    format!(
                        "allow(`{named}`) has no ` <reason>` suffix, so it suppresses \
                         nothing — add the reason or delete the annotation"
                    )
                } else if used
                    .iter()
                    .any(|(f, l, r)| f == rel && *l == idx && *r == named)
                {
                    continue;
                } else {
                    format!(
                        "stale allow: `{named}` suppresses no diagnostic on this or \
                         the next line — delete it"
                    )
                };
                out.push(Diagnostic {
                    file: rel.clone(),
                    line: idx + 1,
                    rule: "unused-allow",
                    message,
                    snippet: raw_lines
                        .get(idx)
                        .map_or(String::new(), |l| l.trim().to_string()),
                });
            }
        }
    }
    out
}

/// Every `lint: allow(<rule>)` annotation in one comment, with whether it
/// carries a reason.
fn annotations_in(comment: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        rest = &rest[close + 1..];
        // The reason runs to the next annotation (if any) or line end.
        let reason_end = rest.find("lint: allow(").unwrap_or(rest.len());
        let has_reason = !rest[..reason_end].trim().is_empty();
        if !rule.is_empty() {
            out.push((rule, has_reason));
        }
    }
    out
}

/// Narrow integer targets of `as` casts on a scrubbed line.
fn narrowing_casts(line: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    for pos in find_word(line, "as") {
        let rest = &line[pos + 2..];
        let next: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(t) = NARROW_INTS.iter().find(|t| **t == next) {
            out.push(*t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::lexer::scrub;

    fn cfg_for(rule: &str, path: &str) -> Config {
        Config::parse(&format!("[{rule}]\npaths = [\"{path}\"]\n")).unwrap()
    }

    fn run(rule: &str, src: &str) -> Vec<Diagnostic> {
        let cfg = cfg_for(rule, "x.rs");
        lint_file("x.rs", src, &scrub(src), &cfg, &mut UsedAllows::default())
    }

    #[test]
    fn narrowing_cast_detected_and_allowed() {
        let d = run("truncating-cast", "let a = b as u32;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "truncating-cast");
        let ok = run(
            "truncating-cast",
            "// lint: allow(truncating-cast) bounded by job-id width\nlet a = b as u32;\n",
        );
        assert!(ok.is_empty());
        assert!(run("truncating-cast", "let a = b as u64;\n").is_empty());
        assert!(run("truncating-cast", "let a = b as usize;\n").is_empty());
    }

    #[test]
    fn annotation_requires_reason() {
        let d = run(
            "truncating-cast",
            "// lint: allow(truncating-cast)\nlet a = b as u32;\n",
        );
        assert_eq!(d.len(), 1, "reasonless allow must not excuse the line");
    }

    #[test]
    fn string_contents_do_not_trip_rules() {
        assert!(run("nondeterminism", "let s = \"Instant::now\";\n").is_empty());
        assert_eq!(run("nondeterminism", "let t = Instant::now();\n").len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(run("panicking", src).is_empty());
    }

    #[test]
    fn duration_u128_truncation_flagged() {
        let d = run(
            "truncating-cast",
            "let ns = t.elapsed().as_nanos() as u64;\n",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn try_percentile_is_fine_percentile_is_not() {
        assert!(run("panicking", "let p = try_percentile_sorted(&v, q);\n").is_empty());
        assert_eq!(
            run("panicking", "let p = percentile_sorted(&v, q);\n").len(),
            1
        );
    }

    #[test]
    fn rng_construction_scoped() {
        assert_eq!(run("rng", "let r = SmallRng::seed_from_u64(7);\n").len(), 2);
        let cfg = Config::parse("[rng]\npaths = [\"other.rs\"]\n").unwrap();
        let src = "let r = SmallRng::seed_from_u64(7);\n";
        assert!(lint_file("x.rs", src, &scrub(src), &cfg, &mut UsedAllows::default()).is_empty());
    }

    #[test]
    fn counter_overflow_flags_bare_plus_eq() {
        let d = run("counter-overflow", "*e += v;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "counter-overflow");
        assert!(run("counter-overflow", "*e = e.saturating_add(v);\n").is_empty());
    }

    #[test]
    fn float_determinism_flags_iterator_sums() {
        let d = run(
            "float-determinism",
            "let m = vals.iter().sum::<f64>() / n;\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float-determinism");
        assert!(run("float-determinism", "let m = vals.iter().sum::<u64>();\n").is_empty());
    }

    #[test]
    fn suppressing_allow_is_recorded_as_used() {
        let cfg = cfg_for("panicking", "x.rs");
        let src =
            "// lint: allow(panicking) invariant: x is always Some here\nlet y = x.unwrap();\n";
        let mut used = UsedAllows::default();
        let d = lint_file("x.rs", src, &scrub(src), &cfg, &mut used);
        assert!(d.is_empty());
        assert!(used.contains(&("x.rs".to_string(), 0, "panicking")));
    }
}
