//! The four project rules.
//!
//! Each rule is a lexical token-pattern check over scrubbed source (see
//! [`crate::lexer`]), scoped by `lint.toml` paths and overridable per
//! line with `// lint: allow(<rule>) <reason>` on the flagged line or the
//! line above (the reason is mandatory). Test code (`#[cfg(test)]` /
//! `#[test]` regions) is never linted: the rules protect production
//! invariants, and tests legitimately unwrap.
//!
//! | rule | invariant protected |
//! |---|---|
//! | `nondeterminism` (L1) | engine/golden paths take no input from wall clocks, OS entropy, or hash iteration order |
//! | `truncating-cast` (L2) | counters and accumulators never silently truncate (`u64 → u32` class; the PR 3 `failed_steals` saturation family) |
//! | `panicking` (L3) | engine hot paths and worker loops never panic; errors go through the PR 1 error API |
//! | `rng` (L4) | only declared files may construct or advance a seeded RNG stream |
//!
//! See `docs/STATIC_ANALYSIS.md` for the full rule-to-invariant map.

use crate::lexer::{find_word, Scrubbed};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule slug (`nondeterminism`, `truncating-cast`, `panicking`, `rng`).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Rule slugs in reporting order.
pub const RULES: &[&str] = &["nondeterminism", "truncating-cast", "panicking", "rng"];

/// Integer types an `as` cast can silently truncate 64-bit counters into.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// L1: nondeterminism sources in determinism-scoped paths.
const NONDET_NEEDLES: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read"),
    ("SystemTime::now", "wall-clock read"),
    ("thread_rng", "OS-entropy RNG"),
    (
        "HashMap",
        "hash-order container (iteration order is nondeterministic)",
    ),
    (
        "HashSet",
        "hash-order container (iteration order is nondeterministic)",
    ),
    (
        "RandomState",
        "hash-order container (iteration order is nondeterministic)",
    ),
];

/// L3: panicking calls in hot paths.
const PANIC_NEEDLES: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "percentile_sorted(",
];

/// L4: RNG construction / seeding entry points.
const RNG_NEEDLES: &[&str] = &[
    "SmallRng::",
    "StdRng::",
    "from_entropy",
    "seed_from_u64",
    "from_seed",
    "from_rng",
];

/// Is line `idx` (0-based) excused from `rule` by an inline annotation on
/// the same or previous line? The annotation must carry a reason.
fn allowed(scr: &Scrubbed, idx: usize, rule: &str) -> bool {
    let probe = |i: usize| -> bool {
        scr.line_comments
            .get(i)
            .is_some_and(|c| annotation_allows(c, rule))
    };
    probe(idx) || (idx > 0 && probe(idx - 1))
}

/// Does comment text contain `lint: allow(<rule>) <reason>`?
fn annotation_allows(comment: &str, rule: &str) -> bool {
    let Some(pos) = comment.find("lint: allow(") else {
        return false;
    };
    let rest = &comment[pos + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[..close].trim() == rule && !rest[close + 1..].trim().is_empty()
}

/// Run every rule that `cfg` scopes onto `rel_path` over one file.
pub fn lint_file(
    rel_path: &str,
    source: &str,
    scr: &Scrubbed,
    cfg: &crate::config::Config,
) -> Vec<Diagnostic> {
    let raw_lines: Vec<&str> = source.lines().collect();
    let code_lines: Vec<&str> = scr.code.lines().collect();
    let mut out = Vec::new();

    let active = |rule: &str| cfg.rules.get(rule).is_some_and(|r| r.applies_to(rel_path));

    let mut push = |idx: usize, rule: &'static str, message: String| {
        out.push(Diagnostic {
            file: rel_path.to_string(),
            line: idx + 1,
            rule,
            message,
            snippet: raw_lines
                .get(idx)
                .map_or(String::new(), |l| l.trim().to_string()),
        });
    };

    for (idx, line) in code_lines.iter().enumerate() {
        if scr.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        if active("nondeterminism") && !allowed(scr, idx, "nondeterminism") {
            for &(needle, why) in NONDET_NEEDLES {
                if !find_word(line, needle).is_empty() {
                    push(
                        idx,
                        "nondeterminism",
                        format!("`{needle}` in a determinism-scoped path: {why}"),
                    );
                }
            }
        }
        if active("truncating-cast") && !allowed(scr, idx, "truncating-cast") {
            for target in narrowing_casts(line) {
                push(
                    idx,
                    "truncating-cast",
                    format!(
                        "`as {target}` can silently truncate a 64-bit counter; \
                         widen, use `try_into`, or annotate why the value is bounded"
                    ),
                );
            }
            if (line.contains(".as_nanos()") || line.contains(".as_micros()"))
                && !find_word(line, "u64").is_empty()
                && line.contains(" as ")
            {
                push(
                    idx,
                    "truncating-cast",
                    "`u128 -> u64` truncation of a Duration reading; \
                     annotate the horizon that makes it safe"
                        .to_string(),
                );
            }
        }
        if active("panicking") && !allowed(scr, idx, "panicking") {
            for &needle in PANIC_NEEDLES {
                if !find_word(line, needle).is_empty() {
                    push(
                        idx,
                        "panicking",
                        format!("`{needle}` in an engine hot path / worker loop"),
                    );
                }
            }
        }
        if active("rng") && !allowed(scr, idx, "rng") {
            for &needle in RNG_NEEDLES {
                if !find_word(line, needle).is_empty() {
                    push(
                        idx,
                        "rng",
                        format!(
                            "`{needle}` constructs/advances an RNG stream outside \
                             the declared RNG-owning files"
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Narrow integer targets of `as` casts on a scrubbed line.
fn narrowing_casts(line: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    for pos in find_word(line, "as") {
        let rest = &line[pos + 2..];
        let next: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(t) = NARROW_INTS.iter().find(|t| **t == next) {
            out.push(*t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::lexer::scrub;

    fn cfg_for(rule: &str, path: &str) -> Config {
        Config::parse(&format!("[{rule}]\npaths = [\"{path}\"]\n")).unwrap()
    }

    fn run(rule: &str, src: &str) -> Vec<Diagnostic> {
        let cfg = cfg_for(rule, "x.rs");
        lint_file("x.rs", src, &scrub(src), &cfg)
    }

    #[test]
    fn narrowing_cast_detected_and_allowed() {
        let d = run("truncating-cast", "let a = b as u32;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "truncating-cast");
        let ok = run(
            "truncating-cast",
            "// lint: allow(truncating-cast) bounded by job-id width\nlet a = b as u32;\n",
        );
        assert!(ok.is_empty());
        assert!(run("truncating-cast", "let a = b as u64;\n").is_empty());
        assert!(run("truncating-cast", "let a = b as usize;\n").is_empty());
    }

    #[test]
    fn annotation_requires_reason() {
        let d = run(
            "truncating-cast",
            "// lint: allow(truncating-cast)\nlet a = b as u32;\n",
        );
        assert_eq!(d.len(), 1, "reasonless allow must not excuse the line");
    }

    #[test]
    fn string_contents_do_not_trip_rules() {
        assert!(run("nondeterminism", "let s = \"Instant::now\";\n").is_empty());
        assert_eq!(run("nondeterminism", "let t = Instant::now();\n").len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(run("panicking", src).is_empty());
    }

    #[test]
    fn duration_u128_truncation_flagged() {
        let d = run(
            "truncating-cast",
            "let ns = t.elapsed().as_nanos() as u64;\n",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn try_percentile_is_fine_percentile_is_not() {
        assert!(run("panicking", "let p = try_percentile_sorted(&v, q);\n").is_empty());
        assert_eq!(
            run("panicking", "let p = percentile_sorted(&v, q);\n").len(),
            1
        );
    }

    #[test]
    fn rng_construction_scoped() {
        assert_eq!(run("rng", "let r = SmallRng::seed_from_u64(7);\n").len(), 2);
        let cfg = Config::parse("[rng]\npaths = [\"other.rs\"]\n").unwrap();
        let src = "let r = SmallRng::seed_from_u64(7);\n";
        assert!(lint_file("x.rs", src, &scrub(src), &cfg).is_empty());
    }
}
