//! `parflow-lint` — run the workspace lint and exit nonzero on findings.
//!
//! ```text
//! parflow-lint [--root DIR] [--config FILE] [--json PATH] [--quiet]
//! ```
//!
//! With no flags the workspace root is the nearest ancestor directory
//! containing `lint.toml`. Every diagnostic prints as
//! `path:line: [rule] message`; `--json PATH` additionally writes the
//! diagnostics as a JSON array (for CI annotation uploads) whether or
//! not any were found. Exit status is 1 when any violation is found, 2
//! on usage/configuration errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: parflow-lint [--root DIR] [--config FILE] [--json PATH] [--quiet]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs an output path"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read cwd: {e}")),
            };
            match parflow_lint::find_root(&cwd) {
                Some(r) => r,
                None => return fail("no lint.toml found in this or any parent directory"),
            }
        }
    };
    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {}: {e}", config_path.display())),
    };
    let cfg = match parflow_lint::Config::parse(&text) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let diags = match parflow_lint::lint_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => return fail(&format!("walk failed: {e}")),
    };
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, render_json(&diags)) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
    }
    if diags.is_empty() {
        if !quiet {
            println!("parflow-lint: clean ({} rules)", cfg.rules.len());
        }
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("parflow-lint: {} violation(s)", diags.len());
    ExitCode::FAILURE
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("parflow-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Render diagnostics as a JSON array (hand-rolled: the workspace builds
/// offline, so no serde here).
fn render_json(diags: &[parflow_lint::Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {}}}{}\n",
            json_str(&d.file),
            d.line,
            json_str(d.rule),
            json_str(&d.message),
            json_str(&d.snippet),
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("parflow-lint: {msg}");
    ExitCode::from(2)
}
