//! `parflow-lint` — run the workspace lint and exit nonzero on findings.
//!
//! ```text
//! parflow-lint [--root DIR] [--config FILE] [--quiet]
//! ```
//!
//! With no flags the workspace root is the nearest ancestor directory
//! containing `lint.toml`. Every diagnostic prints as
//! `path:line: [rule] message`; exit status is 1 when any violation is
//! found, 2 on usage/configuration errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: parflow-lint [--root DIR] [--config FILE] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read cwd: {e}")),
            };
            match parflow_lint::find_root(&cwd) {
                Some(r) => r,
                None => return fail("no lint.toml found in this or any parent directory"),
            }
        }
    };
    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {}: {e}", config_path.display())),
    };
    let cfg = match parflow_lint::Config::parse(&text) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let diags = match parflow_lint::lint_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => return fail(&format!("walk failed: {e}")),
    };
    if diags.is_empty() {
        if !quiet {
            println!("parflow-lint: clean ({} rules)", cfg.rules.len());
        }
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("parflow-lint: {} violation(s)", diags.len());
    ExitCode::FAILURE
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("parflow-lint: {msg}\nusage: parflow-lint [--root DIR] [--config FILE] [--quiet]");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("parflow-lint: {msg}");
    ExitCode::from(2)
}
