//! `lint.toml` reader.
//!
//! The workspace is built offline (no `toml` crate), so this is a small
//! hand-rolled reader for the subset the allowlist actually uses:
//!
//! ```toml
//! # comment
//! [rule-name]
//! paths = ["crates/core/src", "crates/runtime/src/executor.rs"]
//! allow-files = [
//!     "src/bridge.rs -- wall-clock timing display only, not a golden path",
//! ]
//! ```
//!
//! Tables map rule slugs to [`RuleCfg`]. `paths` scopes a rule to
//! directory prefixes or exact files (relative to the workspace root);
//! `allow-files` exempts whole files, and each entry **must** carry a
//! ` -- reason` suffix — an allowlist entry without a written
//! justification is itself a configuration error.

use std::collections::BTreeMap;

/// Per-rule configuration from `lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct RuleCfg {
    /// Directory prefixes / files this rule applies to.
    pub paths: Vec<String>,
    /// `(path, reason)` pairs exempting whole files from the rule.
    pub allow_files: Vec<(String, String)>,
    /// Function names treated as roots of the call-graph reachability
    /// pass (only meaningful on `[panicking]`): panicking calls in any
    /// function *reachable* from an entry point are flagged even when
    /// the containing file is outside `paths`.
    pub entry_points: Vec<String>,
}

impl RuleCfg {
    /// Is `rel_path` under one of this rule's `paths` entries?
    pub fn in_paths(&self, rel_path: &str) -> bool {
        self.paths
            .iter()
            .any(|p| rel_path == p || rel_path.starts_with(&format!("{p}/")))
    }

    /// Is `rel_path` exempted wholesale by `allow-files`?
    pub fn is_allow_filed(&self, rel_path: &str) -> bool {
        self.allow_files.iter().any(|(p, _)| p == rel_path)
    }

    /// Does this rule govern `rel_path` (and not exempt it)?
    pub fn applies_to(&self, rel_path: &str) -> bool {
        self.in_paths(rel_path) && !self.is_allow_filed(rel_path)
    }
}

/// Whole lint configuration: rule slug → scope. Deterministically ordered
/// (the linter holds itself to its own iteration-order rule).
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Rule table.
    pub rules: BTreeMap<String, RuleCfg>,
}

/// A malformed `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim();
                if name.is_empty() {
                    return Err(ConfigError {
                        line: lineno,
                        msg: "empty table name".into(),
                    });
                }
                cfg.rules.entry(name.to_string()).or_default();
                current = Some(name.to_string());
                continue;
            }
            let Some((key, mut val)) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            else {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some(rule) = current.clone() else {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("key `{key}` outside any [rule] table"),
                });
            };
            // Multiline array: keep appending lines until the closing `]`.
            while val.starts_with('[') && !val.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(ConfigError {
                        line: lineno,
                        msg: format!("unterminated array for key `{key}`"),
                    });
                };
                val.push(' ');
                val.push_str(strip_comment(next).trim());
            }
            let items = parse_string_array(&val).ok_or_else(|| ConfigError {
                line: lineno,
                msg: format!("`{key}` must be an array of strings"),
            })?;
            let entry = cfg.rules.get_mut(&rule).expect("table created above");
            match key.as_str() {
                "paths" => entry.paths = items,
                "allow-files" => {
                    for item in items {
                        let Some((path, reason)) = item.split_once(" -- ") else {
                            return Err(ConfigError {
                                line: lineno,
                                msg: format!(
                                    "allow-files entry `{item}` is missing its \
                                     ` -- <reason>` justification"
                                ),
                            });
                        };
                        let (path, reason) = (path.trim(), reason.trim());
                        if reason.is_empty() {
                            return Err(ConfigError {
                                line: lineno,
                                msg: format!("allow-files entry `{path}` has an empty reason"),
                            });
                        }
                        entry
                            .allow_files
                            .push((path.to_string(), reason.to_string()));
                    }
                }
                "entry-points" => entry.entry_points = items,
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        msg: format!(
                            "unknown key `{other}` (expected paths/allow-files/entry-points)"
                        ),
                    });
                }
            }
        }
        Ok(cfg)
    }
}

/// Drop a `#` comment, unless the `#` sits inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `["a", "b"]` (trailing comma tolerated).
fn parse_string_array(val: &str) -> Option<Vec<String>> {
    let inner = val.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let end = rest.find('"')?;
        out.push(rest[..end].to_string());
        rest = rest[end + 1..].trim();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim();
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_arrays() {
        let cfg = Config::parse(
            "# top comment\n[nondeterminism]\npaths = [\n  \"crates/core/src\", # inline\n  \"src\",\n]\nallow-files = [\"src/bridge.rs -- timing display only\"]\n",
        )
        .unwrap();
        let r = &cfg.rules["nondeterminism"];
        assert_eq!(r.paths, vec!["crates/core/src", "src"]);
        assert_eq!(r.allow_files.len(), 1);
        assert!(r.applies_to("crates/core/src/trace.rs"));
        assert!(r.applies_to("src/cli.rs"));
        assert!(!r.applies_to("src/bridge.rs"), "allowlisted");
        assert!(!r.applies_to("crates/dag/src/graph.rs"), "out of scope");
    }

    #[test]
    fn allow_without_reason_rejected() {
        let err = Config::parse("[rng]\nallow-files = [\"src/cli.rs\"]\n").unwrap_err();
        assert!(err.msg.contains("justification"), "{err}");
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let r = RuleCfg {
            paths: vec!["crates/core".into()],
            ..RuleCfg::default()
        };
        assert!(r.applies_to("crates/core/src/lib.rs"));
        assert!(!r.applies_to("crates/core2/src/lib.rs"));
    }
}
