//! Pass 2: a lightweight intra-workspace function call graph.
//!
//! Built purely from the lexer's scrubbed output — no type information.
//! Pass 1 finds every `fn name(…) { … }` definition (brace-matched body
//! extents on scrubbed code, so braces inside strings and comments cannot
//! confuse it) and the call-shaped tokens inside each body. Pass 2
//! resolves calls by name and walks reachability from the entry points
//! declared in `lint.toml`.
//!
//! Name resolution is deliberately conservative: an edge `f → g` is added
//! only when exactly one function named `g` is defined in the scanned
//! file set (workspace-unique) and `g` is not one of the ubiquitous trait
//! method names (`new`, `fmt`, …). Missing an edge makes the transitive
//! `panicking` check under-approximate — never a false positive; the
//! file-scoped pass remains the backstop for the hot-path files
//! themselves.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{find_word, Scrubbed};

/// One `fn` definition found in the scanned file set.
#[derive(Debug)]
pub struct FnDef {
    /// Function name (unqualified).
    pub name: String,
    /// Index into the scanned file list.
    pub file: usize,
    /// 0-based line range of the definition including its body.
    pub lines: (usize, usize),
    /// Names of call-shaped tokens inside the body, deduplicated.
    pub calls: BTreeSet<String>,
}

/// The workspace call graph: definitions plus name-resolved edges.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All definitions in scan order (files in input order, top to
    /// bottom within a file) — the graph's deterministic spine.
    pub defs: Vec<FnDef>,
    /// `defs` indices reachable from each entry point name, with the
    /// entry that first reached them (BFS order ties broken by index).
    pub reached: BTreeMap<usize, String>,
}

/// Trait-method and prelude names too common to resolve by name alone;
/// an edge to any of these would be guesswork.
const UBIQUITOUS: &[&str] = &[
    "new", "default", "clone", "fmt", "from", "into", "next", "len", "is_empty", "get", "push",
    "insert", "drop", "main", "eq", "cmp", "hash", "iter", "parse", "write", "read",
    // Iterator/slice adapters: `.chain(…)` etc. would otherwise resolve
    // to any workspace-unique free function sharing the name.
    "chain", "map", "filter", "fold", "zip", "rev", "take", "skip", "sum", "count", "find",
    "position", "contains", "extend", "split", "min", "max",
];

/// Rust keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "let", "mut", "move", "ref",
    "else", "impl", "where", "dyn", "box", "await", "yield",
];

impl CallGraph {
    /// Build the graph over `scrubbed` (parallel to the scanned file
    /// list) and mark everything reachable from `entry_points`.
    pub fn build(scrubbed: &[&Scrubbed], entry_points: &[String]) -> CallGraph {
        let mut defs = Vec::new();
        for (fi, scr) in scrubbed.iter().enumerate() {
            scan_defs(fi, &scr.code, &mut defs);
        }

        // Name → def indices; edges only through workspace-unique names.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, d) in defs.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(i);
        }
        let resolve = |name: &str| -> Option<usize> {
            if UBIQUITOUS.contains(&name) {
                return None;
            }
            match by_name.get(name) {
                Some(ids) if ids.len() == 1 => Some(ids[0]),
                _ => None,
            }
        };

        let mut reached: BTreeMap<usize, String> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for entry in entry_points {
            if let Some(ids) = by_name.get(entry.as_str()) {
                // Entry points may be defined more than once (e.g. an
                // inherent method per engine); every definition roots.
                for &i in ids {
                    reached.entry(i).or_insert_with(|| {
                        queue.push_back(i);
                        entry.clone()
                    });
                }
            }
        }
        while let Some(i) = queue.pop_front() {
            let entry = reached[&i].clone();
            let callees: Vec<usize> = defs[i].calls.iter().filter_map(|c| resolve(c)).collect();
            for j in callees {
                reached.entry(j).or_insert_with(|| {
                    queue.push_back(j);
                    entry.clone()
                });
            }
        }
        CallGraph { defs, reached }
    }
}

/// Pass 2 of the `panicking` rule: flag panic needles inside functions
/// *reachable* from the declared engine entry points, in files the
/// file-scoped pass does not already govern. Inline allows and
/// `allow-files` apply exactly as in the file-scoped pass; suppressing
/// allows are recorded in `used`.
pub fn transitive_panicking(
    files: &[(String, String)],
    scrubbed: &[Scrubbed],
    cfg: &crate::config::Config,
    used: &mut crate::rules::UsedAllows,
) -> Vec<crate::rules::Diagnostic> {
    let Some(rule) = cfg.rules.get("panicking") else {
        return Vec::new();
    };
    if rule.entry_points.is_empty() {
        return Vec::new();
    }
    let refs: Vec<&Scrubbed> = scrubbed.iter().collect();
    let graph = CallGraph::build(&refs, &rule.entry_points);

    let code_lines: Vec<Vec<&str>> = scrubbed.iter().map(|s| s.code.lines().collect()).collect();
    let raw_lines: Vec<Vec<&str>> = files.iter().map(|(_, s)| s.lines().collect()).collect();

    let mut out = Vec::new();
    // Nested fns overlap their parent's line range; visit each line once.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (&di, entry) in &graph.reached {
        let def = &graph.defs[di];
        let (rel, _) = &files[def.file];
        // The file-scoped pass already governs in-path files, and
        // allow-files opt a whole file out of the rule either way.
        if rule.in_paths(rel) || rule.is_allow_filed(rel) {
            continue;
        }
        let scr = &scrubbed[def.file];
        for idx in def.lines.0..=def.lines.1 {
            if !seen.insert((def.file, idx)) {
                continue;
            }
            if scr.test_mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let Some(line) = code_lines[def.file].get(idx) else {
                continue;
            };
            for &needle in crate::rules::PANIC_NEEDLES {
                if find_word(line, needle).is_empty() {
                    continue;
                }
                if let Some(ann) = crate::rules::allowed(scr, idx, "panicking") {
                    used.insert((rel.clone(), ann, "panicking"));
                    continue;
                }
                out.push(crate::rules::Diagnostic {
                    file: rel.clone(),
                    line: idx + 1,
                    rule: "panicking",
                    message: format!(
                        "`{needle}` in `{}`, which is reachable from engine entry \
                         point `{entry}`",
                        def.name
                    ),
                    snippet: raw_lines[def.file]
                        .get(idx)
                        .map_or(String::new(), |l| l.trim().to_string()),
                });
            }
        }
    }
    out
}

/// Find every `fn name(…)` with a brace-matched body in one scrubbed
/// file and append a [`FnDef`] per hit.
fn scan_defs(file: usize, code: &str, out: &mut Vec<FnDef>) {
    let bytes = code.as_bytes();
    // Byte offset → 0-based line, via sorted line-start offsets.
    let mut line_starts = vec![0usize];
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| line_starts.partition_point(|s| *s <= off) - 1;

    for pos in crate::lexer::find_word(code, "fn") {
        // The identifier after `fn` (skip whitespace); `fn(` pointer
        // types have none and are skipped.
        let mut i = pos + 2;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = &code[name_start..i];

        // Scan to the body `{` at bracket depth 0; a `;` first means a
        // bodyless trait-method signature. Angle brackets are not
        // counted (they double as comparison/arrow tokens); generics
        // cannot contain `{` or `;` anyway.
        let mut depth = 0i64;
        let mut body_open = None;
        for (off, b) in bytes[i..].iter().enumerate() {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth <= 0 => {
                    body_open = Some(i + off);
                    break;
                }
                b';' if depth <= 0 => break,
                _ => {}
            }
        }
        let Some(open) = body_open else { continue };

        // Brace-match to the body end (scrubbed code: literal braces are
        // already blanked).
        let mut braces = 0i64;
        let mut close = open;
        for (off, b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => braces += 1,
                b'}' => {
                    braces -= 1;
                    if braces == 0 {
                        close = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }

        out.push(FnDef {
            name: name.to_string(),
            file,
            lines: (line_of(pos), line_of(close)),
            calls: scan_calls(&code[open..=close.max(open)]),
        });
    }
}

/// Call-shaped tokens in a body: `ident(` — excluding keywords, macro
/// invocations (`ident!`), and nested `fn` headers.
fn scan_calls(body: &str) -> BTreeSet<String> {
    let bytes = body.as_bytes();
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    let mut prev_word: Option<&str> = None;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &body[start..i];
            let mut j = i;
            while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
                j += 1;
            }
            let followed_by_paren = j < bytes.len() && bytes[j] == b'(';
            let is_macro = j < bytes.len() && bytes[j] == b'!';
            if followed_by_paren
                && !is_macro
                && !KEYWORDS.contains(&word)
                && prev_word != Some("fn")
            {
                out.insert(word.to_string());
            }
            prev_word = Some(word);
        } else {
            if !b.is_ascii_whitespace() {
                prev_word = None;
            }
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn graph(sources: &[&str], entries: &[&str]) -> (Vec<Scrubbed>, CallGraph) {
        let scrubbed: Vec<Scrubbed> = sources.iter().map(|s| scrub(s)).collect();
        let refs: Vec<&Scrubbed> = scrubbed.iter().collect();
        let entries: Vec<String> = entries.iter().map(|s| s.to_string()).collect();
        let g = CallGraph::build(&refs, &entries);
        (scrubbed, g)
    }

    #[test]
    fn defs_and_bodies_found() {
        let (_, g) = graph(
            &["fn alpha() {\n    beta();\n}\nfn beta() {\n    let x = 1;\n}\n"],
            &[],
        );
        assert_eq!(g.defs.len(), 2);
        assert_eq!(g.defs[0].name, "alpha");
        assert_eq!(g.defs[0].lines, (0, 2));
        assert!(g.defs[0].calls.contains("beta"));
        assert_eq!(g.defs[1].lines, (3, 5));
    }

    #[test]
    fn reachability_crosses_files() {
        let (_, g) = graph(
            &[
                "pub fn entry() { helper(); }\n",
                "pub fn helper() { leaf() }\nfn leaf() {}\nfn orphan() {}\n",
            ],
            &["entry"],
        );
        let names: Vec<&str> = g.reached.keys().map(|i| g.defs[*i].name.as_str()).collect();
        assert_eq!(names, vec!["entry", "helper", "leaf"]);
        for entry in g.reached.values() {
            assert_eq!(entry, "entry");
        }
    }

    #[test]
    fn ambiguous_and_ubiquitous_names_do_not_resolve() {
        let (_, g) = graph(
            &[
                "fn entry() { dup(); thing.new(); }\n",
                "fn dup() {}\n",
                "fn dup() {}\nfn new() { hidden(); }\nfn hidden() {}\n",
            ],
            &["entry"],
        );
        let names: Vec<&str> = g.reached.keys().map(|i| g.defs[*i].name.as_str()).collect();
        assert_eq!(names, vec!["entry"], "dup is ambiguous, new is ubiquitous");
    }

    #[test]
    fn macros_keywords_and_signatures_are_not_calls() {
        let (_, g) = graph(
            &["fn entry() {\n    if cond() { println!(\"x\") }\n    return;\n}\ntrait T { fn sig(&self); }\nfn cond() -> bool { true }\n"],
            &["entry"],
        );
        assert_eq!(g.defs.len(), 2, "trait signature has no body");
        assert!(g.defs[0].calls.contains("cond"));
        assert!(!g.defs[0].calls.contains("println"));
        assert!(!g.defs[0].calls.contains("if"));
    }
}
