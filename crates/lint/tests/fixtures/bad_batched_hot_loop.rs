//! Fixture: panicking calls inside a batched-replica hot loop — the shape
//! L3 exists to keep out of `crates/core/src/batched.rs`.
//! Exercised by `tests/selftest.rs`; never compiled.

fn step_all_lanes(lanes: &mut Vec<Lane>, specs: &[ReplicaSpec]) {
    for lane in lanes.iter_mut() {
        let spec = specs.first().unwrap();
        let ev = lane.calendar.peek_min(lane.round).expect("busy lane has an event");
        if lane.round > lane.safety_cap {
            panic!("batched lane exceeded safety cap");
        }
        let jid = lane.cur_job.get(0).expect("worker column sized"); // lint: allow(panicking) fixture: start() resizes cur_job to m, so index 0 exists
        let _ = lane.unwrap_or_idle(); // lookalike method name must NOT be reported
        lane.advance(spec, ev, *jid);
    }
}
