//! Fixture: wrapping counter accumulation in telemetry code.
//! Exercised by `tests/selftest.rs`; never compiled.

struct Counters {
    hits: u64,
}

fn record(c: &mut Counters, delta: u64, extra: u64) {
    c.hits += delta;
    *entry(c).or_insert(0) += extra;
    // lint: allow(counter-overflow) fixture: bounded by the batch size checked above
    c.hits += 1;
    c.hits = c.hits.saturating_add(delta); // saturating form must NOT be reported
    let label = "x += y"; // cast text inside a string literal is scrubbed
}

#[cfg(test)]
mod tests {
    fn t(c: &mut Counters) {
        c.hits += 99; // test code is exempt
    }
}
