//! Fixture: truncating `as` casts onto narrow integer widths.
//! Exercised by `tests/selftest.rs`; never compiled.

fn casts(n: u64, d: std::time::Duration) -> u32 {
    let a = n as u32;
    let b = n as u16;
    let c = d.as_nanos() as u64;
    let s = "n as u32"; // cast inside a string literal must NOT be reported
    let ok = n as u32; // lint: allow(truncating-cast) fixture: bounded by construction
    let _ = (b, c, s, ok);
    a
}
