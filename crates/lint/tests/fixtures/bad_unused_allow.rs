//! Fixture: stale and malformed inline allow annotations.
//! Exercised by `tests/selftest.rs`; never compiled.

fn quiet() -> u64 {
    // lint: allow(panicking) nothing on this or the next line panics
    let x = 1;
    // lint: allow(no-such-rule) the rule name is wrong
    let y = 2;
    // lint: allow(panicking)
    let z = o.unwrap();
    // lint: allow(panicking) fixture: this one IS used and must NOT be reported
    let w = o.unwrap();
    x + y + z + w
}
