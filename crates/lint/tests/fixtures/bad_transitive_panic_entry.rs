//! Fixture: an engine entry point whose helpers live in another file.
//! Exercised by `tests/selftest.rs`; never compiled.

pub fn run_worksteal(inst: &Instance) -> u64 {
    step_round(inst)
}
