//! Fixture: order-dependent float accumulation in a golden-compared path.
//! Exercised by `tests/selftest.rs`; never compiled.

fn aggregate(vals: &[f64], xs: &[f32]) -> f64 {
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let narrow = xs.iter().sum::<f32>() as f64;
    let prod = vals.iter().product::<f64>();
    // lint: allow(float-determinism) fixture: slice is index-ordered, order pinned
    let pinned = vals.iter().sum::<f64>();
    let ints: u64 = counts.iter().sum::<u64>(); // integer sums are exact — must NOT be reported
    mean + narrow + prod + pinned + ints as f64
}
