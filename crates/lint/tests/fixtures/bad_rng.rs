//! Fixture: undeclared RNG construction/seeding.
//! Exercised by `tests/selftest.rs`; never compiled.

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn rogue_stream(seed: u64) -> SmallRng {
    let a = SmallRng::seed_from_u64(seed);
    let b = SmallRng::from_entropy();
    let _c = StdRng::from_seed([0u8; 32]);
    let _ok = SmallRng::seed_from_u64(7); // lint: allow(rng) fixture: declared derived stream
    drop(b);
    a
}
