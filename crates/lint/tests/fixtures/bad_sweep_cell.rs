//! Known-bad sweep cell aggregation: the L1/L3 regressions the sweep
//! scope exists to catch (hash-order stores, panicking cell epilogues).

use std::collections::HashMap;

fn aggregate_cell(samples: &[f64]) -> f64 {
    let mut by_policy: HashMap<&str, f64> = Default::default();
    by_policy.insert("admit", 1.0);
    let sorted = samples.to_vec();
    let p99 = percentile_sorted(&sorted, 0.99);
    let max = samples.last().unwrap();
    let head = samples.first().expect("sweep cells are non-empty");
    // lint: allow(panicking) invariant: a clustered representative precedes its members in cell-id order
    let rep = samples.first().unwrap();
    let p50 = try_percentile_sorted(&sorted, 0.5).unwrap_or(f64::NAN);
    p99 + max + head + rep + p50
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_stay_exempt() {
        let v: Vec<f64> = vec![1.0];
        assert!(v.first().unwrap().is_finite());
    }
}
