//! Fixture: panicking calls in a would-be hot path.
//! Exercised by `tests/selftest.rs`; never compiled.

fn hot(v: Vec<u64>, o: Option<u64>) -> u64 {
    let x = o.unwrap();
    let y = o.expect("must be set");
    if v.is_empty() {
        panic!("empty input");
    }
    let p = percentile_sorted(&v, 0.99);
    let ok = o.unwrap(); // lint: allow(panicking) fixture: invariant named here
    let t = try_percentile_sorted(&v, 0.5); // non-panicking variant must NOT be reported
    x + y + p + ok + t.unwrap_or(0)
}
