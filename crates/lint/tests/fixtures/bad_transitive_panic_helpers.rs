//! Fixture: helpers reachable (and not) from the entry point in
//! `bad_transitive_panic_entry.rs`. Exercised by `tests/selftest.rs`;
//! never compiled.

pub fn step_round(inst: &Instance) -> u64 {
    let v = pick(inst);
    let w = excused(Some(v));
    v.checked_mul(w).unwrap()
}

fn pick(inst: &Instance) -> u64 {
    *inst.jobs.first().expect("instance non-empty")
}

fn excused(x: Option<u64>) -> u64 {
    // lint: allow(panicking) invariant: caller passes Some by construction
    x.unwrap()
}

fn orphan_helper(x: Option<u64>) -> u64 {
    x.unwrap() // unreachable from any entry point — must NOT be reported
}
