//! Fixture: every forbidden nondeterminism source, one per line.
//! Exercised by `tests/selftest.rs`; never compiled.

use std::collections::HashMap;
use std::collections::HashSet;

fn clocky() -> u64 {
    let t = std::time::Instant::now();
    let _w = std::time::SystemTime::now();
    let mut rng = rand::thread_rng();
    let _m: HashMap<u32, u32> = HashMap::new();
    let _s: HashSet<u32> = HashSet::new();
    let _ok = std::time::Instant::now(); // lint: allow(nondeterminism) fixture: annotated line must NOT be reported
    t.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked() {
        // Inside a test region: HashMap here must NOT be reported.
        let _m: std::collections::HashMap<u8, u8> = Default::default();
    }
}
