//! Fixture self-tests: one known-bad file per rule under
//! `tests/fixtures/`, with the exact expected diagnostics pinned. Each
//! fixture also embeds a negative case (an annotated line, a string
//! literal, a test region, or a lookalike identifier) that must NOT be
//! reported, so these tests pin both directions of every rule.
//!
//! The final test runs the real workspace lint with the real `lint.toml`,
//! making `cargo test` itself fail if a violation lands without a reasoned
//! allow — the linter is self-enforcing, not CI-only.

use parflow_lint::{lint_files, lint_source, Config};
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(p).expect("fixture readable")
}

/// Scope a single rule onto the fixture path and lint it.
fn run(rule: &str, name: &str) -> Vec<(usize, String)> {
    let cfg = Config::parse(&format!("[{rule}]\npaths = [\"{name}\"]\n")).expect("config");
    lint_source(name, &fixture(name), &cfg)
        .into_iter()
        .map(|d| {
            assert_eq!(d.rule, rule);
            assert_eq!(d.file, name);
            (d.line, d.message)
        })
        .collect()
}

/// Assert the exact (line, message-needle) sequence of diagnostics.
fn expect(diags: &[(usize, String)], want: &[(usize, &str)]) {
    let got: Vec<(usize, &String)> = diags.iter().map(|(l, m)| (*l, m)).collect();
    assert_eq!(
        got.len(),
        want.len(),
        "diagnostic count mismatch:\n got: {got:#?}\nwant: {want:#?}"
    );
    for ((gl, gm), (wl, wn)) in got.iter().zip(want) {
        assert_eq!(
            gl, wl,
            "line mismatch: got {gm:?} at {gl}, wanted `{wn}` at {wl}"
        );
        assert!(
            gm.contains(wn),
            "message at line {gl} should mention `{wn}`, got {gm:?}"
        );
    }
}

#[test]
fn nondeterminism_fixture_exact_diagnostics() {
    let d = run("nondeterminism", "bad_nondeterminism.rs");
    expect(
        &d,
        &[
            (4, "HashMap"),
            (5, "HashSet"),
            (8, "Instant::now"),
            (9, "SystemTime::now"),
            (10, "thread_rng"),
            (11, "HashMap"),
            (12, "HashSet"),
            // line 13 carries `lint: allow(nondeterminism) <reason>` — excused;
            // the `#[cfg(test)]` region at the bottom is masked entirely.
        ],
    );
}

#[test]
fn truncating_cast_fixture_exact_diagnostics() {
    let d = run("truncating-cast", "bad_truncating_cast.rs");
    expect(
        &d,
        &[
            (5, "`as u32`"),
            (6, "`as u16`"),
            (7, "u128 -> u64"),
            // line 8: cast text inside a string literal — scrubbed, not reported;
            // line 9: annotated with a reasoned allow — excused.
        ],
    );
}

#[test]
fn panicking_fixture_exact_diagnostics() {
    let d = run("panicking", "bad_panicking.rs");
    expect(
        &d,
        &[
            (5, ".unwrap()"),
            (6, ".expect("),
            (8, "panic!("),
            (10, "percentile_sorted("),
            // line 11: reasoned allow; line 12: `try_percentile_sorted` is a
            // different word (underscore boundary) — not reported; line 13:
            // `.unwrap_or(` is not `.unwrap()` — not reported.
        ],
    );
}

#[test]
fn batched_hot_loop_fixture_exact_diagnostics() {
    // The batched engine's lane loop is L3-scoped in the real lint.toml;
    // this fixture pins what the rule catches if a panicking call lands in
    // that hot loop without a reasoned allow.
    let d = run("panicking", "bad_batched_hot_loop.rs");
    expect(
        &d,
        &[
            (7, ".unwrap()"),
            (8, ".expect("),
            (10, "panic!("),
            // line 12: reasoned allow naming the invariant — excused;
            // line 13: `unwrap_or_idle` is a different word — not reported.
        ],
    );
}

#[test]
fn sweep_cell_fixture_nondeterminism_diagnostics() {
    // `crates/bench/src/sweep` is L1-scoped in the real lint.toml; the
    // sweep store must aggregate through ordered containers only, or the
    // byte-identity guarantees across thread counts / resume fall apart.
    let d = run("nondeterminism", "bad_sweep_cell.rs");
    expect(
        &d,
        &[
            (4, "HashMap"),
            (7, "HashMap"),
            // the `#[cfg(test)]` region at the bottom is masked entirely.
        ],
    );
}

#[test]
fn sweep_cell_fixture_panicking_diagnostics() {
    // `crates/bench/src/sweep` is L3-scoped in the real lint.toml: empty
    // and NaN cells are normal sweep outcomes, so cell epilogues must
    // degrade (try_percentile_sorted / Option) rather than panic.
    let d = run("panicking", "bad_sweep_cell.rs");
    expect(
        &d,
        &[
            (10, "percentile_sorted("),
            (11, ".unwrap()"),
            (12, ".expect("),
            // line 14: reasoned allow on line 13 — excused; line 15:
            // `try_percentile_sorted` / `.unwrap_or(` are different
            // words — not reported.
        ],
    );
}

#[test]
fn rng_fixture_exact_diagnostics() {
    let d = run("rng", "bad_rng.rs");
    expect(
        &d,
        &[
            (8, "SmallRng::"),
            (8, "seed_from_u64"),
            (9, "SmallRng::"),
            (9, "from_entropy"),
            (10, "StdRng::"),
            (10, "from_seed"),
            // line 4 `use ...::SmallRng;` has no `::` call — not reported;
            // line 11: reasoned allow.
        ],
    );
}

#[test]
fn counter_overflow_fixture_exact_diagnostics() {
    let d = run("counter-overflow", "bad_counter_overflow.rs");
    expect(
        &d,
        &[
            (9, "saturating_add"),
            (10, "saturating_add"),
            // line 12: reasoned allow on line 11 — excused; line 13 uses
            // the saturating form; line 14 hides `+=` in a string; the
            // `#[cfg(test)]` region is masked entirely.
        ],
    );
}

#[test]
fn float_determinism_fixture_exact_diagnostics() {
    let d = run("float-determinism", "bad_float_determinism.rs");
    expect(
        &d,
        &[
            (5, "sum::<f64>"),
            (6, "sum::<f32>"),
            (7, "product::<f64>"),
            // line 9: reasoned allow on line 8 — excused; line 10 sums
            // integers (exact, order-independent) — not reported.
        ],
    );
}

#[test]
fn transitive_panic_fixtures_exact_diagnostics() {
    // No `paths` scope at all: every diagnostic below comes from the
    // call-graph reachability pass rooted at `run_worksteal`, which
    // lives in a different file than the panicking helpers.
    let cfg = Config::parse(
        "[panicking]\nentry-points = [\"run_worksteal\"]\n\
         [unused-allow]\npaths = [\"bad_transitive_panic_helpers.rs\"]\n",
    )
    .expect("config");
    let files = vec![
        (
            "bad_transitive_panic_entry.rs".to_string(),
            fixture("bad_transitive_panic_entry.rs"),
        ),
        (
            "bad_transitive_panic_helpers.rs".to_string(),
            fixture("bad_transitive_panic_helpers.rs"),
        ),
    ];
    let d = lint_files(&files, &cfg);
    let got: Vec<(&str, usize, &str)> = d
        .iter()
        .map(|x| (x.file.as_str(), x.line, x.rule))
        .collect();
    assert_eq!(
        got,
        vec![
            ("bad_transitive_panic_helpers.rs", 8, "panicking"),
            ("bad_transitive_panic_helpers.rs", 12, "panicking"),
            // `excused` (line 17) carries a reasoned allow — suppressed
            // AND counted as used, so unused-allow stays quiet about it;
            // `orphan_helper` (line 21) is unreachable — not reported.
        ],
        "diagnostics: {d:#?}"
    );
    for diag in &d {
        assert!(
            diag.message
                .contains("reachable from engine entry point `run_worksteal`"),
            "{diag}"
        );
        assert!(
            diag.message.contains("`step_round`") || diag.message.contains("`pick`"),
            "message must name the containing function: {diag}"
        );
    }
}

#[test]
fn unused_allow_fixture_exact_diagnostics() {
    // Scope `panicking` onto the file too, so the allow on line 11 is
    // genuinely used (it suppresses the unwrap on line 12) while the
    // allows on lines 5/7/9 suppress nothing.
    let cfg = Config::parse(
        "[panicking]\npaths = [\"bad_unused_allow.rs\"]\n\
         [unused-allow]\npaths = [\"bad_unused_allow.rs\"]\n",
    )
    .expect("config");
    let name = "bad_unused_allow.rs";
    let d = lint_files(&[(name.to_string(), fixture(name))], &cfg);
    let got: Vec<(usize, &str)> = d.iter().map(|x| (x.line, x.rule)).collect();
    assert_eq!(
        got,
        vec![
            (5, "unused-allow"), // suppresses nothing
            (7, "unused-allow"), // names an unknown rule
            (9, "unused-allow"), // reasonless — suppresses nothing
            (10, "panicking"),   // ...so the unwrap after it still fires
        ],
        "diagnostics: {d:#?}"
    );
    assert!(d[0].message.contains("stale"), "{}", d[0]);
    assert!(d[1].message.contains("unknown rule"), "{}", d[1]);
    assert!(d[2].message.contains("no ` <reason>`"), "{}", d[2]);
}

#[test]
fn reasonless_allow_does_not_excuse_fixture_lines() {
    let cfg = Config::parse("[panicking]\npaths = [\"f.rs\"]\n").expect("config");
    let src = "// lint: allow(panicking)\nlet x = o.unwrap();\n";
    let d = lint_source("f.rs", src, &cfg);
    assert_eq!(d.len(), 1, "a reasonless allow must not excuse the line");
}

/// The workspace itself must lint clean with the checked-in `lint.toml` —
/// run the real thing so `cargo test` enforces it without CI.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml readable");
    let cfg = Config::parse(&toml).expect("lint.toml parses");
    let diags = parflow_lint::lint_workspace(&root, &cfg).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace has unexcused lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
