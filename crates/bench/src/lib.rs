//! # parflow-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` for the experiment index):
//!
//! * [`experiments::fig2`] — max flow vs QPS, three workloads × three
//!   schedulers (Figure 2 a/b/c);
//! * [`experiments::fig3`] — the Bing and finance work distributions
//!   (Figure 3 a/b);
//! * [`experiments::lower_bound`] — the Lemma 5.1 `Ω(log n)` construction;
//! * [`experiments::theory_fifo`] — Theorem 3.1 (FIFO, `3/ε` ceiling);
//! * [`experiments::theory_ws`] — Theorem 4.1 (steal-k-first, w.h.p.
//!   `O((1/ε²)·max{OPT, ln n})`);
//! * [`experiments::theory_bwf`] — Theorem 7.1 (BWF, `3/ε²` ceiling);
//! * [`experiments::steal_k`] — the k ablation;
//! * [`experiments::intervals`] — the Figure 1 interval decomposition.
//!
//! Run everything with `cargo run --release -p parflow-bench --bin repro`,
//! or individual Criterion benches with `cargo bench`.

#![warn(missing_docs)]

pub mod alloc_probe;
pub mod experiments;
pub mod report;
pub mod stream;
pub mod sweep;
pub mod throughput;

pub use report::Reporter;
