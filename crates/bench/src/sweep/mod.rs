//! Mega-sweep harness: cluster → prune → fan-out → aggregate.
//!
//! A [`grid::SweepGrid`] enumerates the cartesian product over
//! (workload × load × policy × k × ε × m × seed replicas) into cells.
//! [`run_sweep`] evaluates it level by level (ascending load):
//!
//! 1. **cluster** — [`cluster::cluster`] buckets structurally identical
//!    cells (e.g. seed replicas of deterministic FIFO) so only one
//!    representative per bucket is simulated;
//! 2. **prune** — [`prune::Pruner`] skips whole policy families that were
//!    already dominated at a lower load; pruned cells become *empty*
//!    cells, not holes;
//! 3. **fan-out** — surviving representatives are grouped by generated
//!    instance and dispatched across the experiment thread pool; all
//!    work-stealing replicas of one instance share a single batched SoA
//!    engine run ([`parflow_core::simulate_batched`]);
//! 4. **aggregate** — every cell (simulated, clustered, pruned, reused)
//!    streams into one jsonl store ([`aggregate`]) with a stable schema.
//!
//! The store is byte-identical across thread counts and across
//! fresh-vs-`--resume` runs: results are keyed and emitted in cell-id
//! order, resumed lines are re-emitted verbatim, and prune decisions are
//! recomputed from the (identical) per-level outcomes rather than
//! trusted from ambient state.

pub mod aggregate;
pub mod cluster;
pub mod grid;
pub mod prune;

use std::collections::BTreeMap;

use parflow_core::{
    opt_max_flow, run_priority, run_worksteal, simulate_batched, simulate_fifo, Fifo, ReplicaSpec,
    SimConfig,
};
use parflow_workloads::{ShapeKind, WorkloadSpec, TICKS_PER_SECOND};

use crate::experiments::{par_map_with, par_threads};
use aggregate::{
    cell_line, crossover_rows, header_line, parse_store, render_crossover,
    render_crossover_markdown, CellOutcome, CrossoverRow, StoreLoad, STATUS_CLUSTERED,
    STATUS_PRUNED, STATUS_SIMULATED,
};
use cluster::cluster;
use grid::{CellSpec, SweepGrid};
use prune::Pruner;

/// Tunables for one sweep run.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Fan-out width for the instance-group thread pool. Passed
    /// explicitly (rather than read from the environment inside the
    /// sweep) so determinism tests can pin both sides of a comparison.
    pub threads: usize,
    /// Dominance-prune factor; ≤ 1 disables pruning.
    pub prune_factor: f64,
    /// SoA lanes per batched engine call.
    pub batch_lanes: usize,
    /// Stream cells through the O(active)-memory engines instead of
    /// materializing instances. Enables `jobs` counts that would not fit
    /// in memory; flow statistics come from the streaming layer (exact
    /// max/mean, histogram percentiles) and OPT from the incremental
    /// tracker. The streaming source draws its RNG in a different order
    /// than `generate()`, so streaming stores are a distinct population —
    /// the store header is tagged and `--resume` refuses to mix them.
    pub stream: bool,
    /// Machine-check paper invariants (P1–P5) on spot-checked cells. For
    /// materialized groups, one work-stealing cell and one FIFO cell per
    /// instance are re-run with tracing and replayed through
    /// [`parflow_certify::certify_run`]; streaming cells get the P5
    /// lower-bound check on their exact max flow. Off by default so the
    /// hot path (and the bench goldens) never pays for tracing.
    pub certify: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: par_threads(),
            prune_factor: 4.0,
            batch_lanes: 8,
            stream: false,
            certify: false,
        }
    }
}

/// Final state of one cell after a sweep run.
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// The grid point.
    pub spec: CellSpec,
    /// `simulated` | `clustered` | `pruned`.
    pub status: String,
    /// Representative id for clustered cells.
    pub source: Option<usize>,
    /// Measured outcome; `None` for pruned cells.
    pub outcome: Option<CellOutcome>,
    /// Whether the cell was reloaded from a prior store (`--resume`).
    pub reused: bool,
    /// The exact store line.
    pub line: String,
}

/// Skip/coverage accounting for one run. Everything not simulated is
/// *counted* here — the sweep never silently truncates coverage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Total grid cells.
    pub cells: usize,
    /// Cells whose line carries `simulated` status.
    pub simulated: usize,
    /// Cells folded into a clustered representative.
    pub clustered: usize,
    /// Cells skipped by the dominance pruner (empty cells).
    pub pruned: usize,
    /// Cells reloaded verbatim from the prior store.
    pub reused: usize,
    /// Engine runs actually executed this invocation.
    pub executed: usize,
    /// Distinct instances generated this invocation.
    pub instances: usize,
    /// Cells with an outcome but no finite flow samples.
    pub empty: usize,
    /// Non-finite flow samples counted out-of-band across all cells.
    pub nan_samples: usize,
    /// Policy families killed by the pruner.
    pub pruned_families: usize,
    /// Torn/malformed prior-store lines dropped during `--resume`.
    pub dropped_lines: usize,
}

impl SweepSummary {
    /// One-line human rendering for CLI output and logs.
    pub fn render(&self) -> String {
        format!(
            "cells={} simulated={} clustered={} pruned={} reused={} \
executed={} instances={} empty={} nan_samples={} pruned_families={} dropped_lines={}",
            self.cells,
            self.simulated,
            self.clustered,
            self.pruned,
            self.reused,
            self.executed,
            self.instances,
            self.empty,
            self.nan_samples,
            self.pruned_families,
            self.dropped_lines,
        )
    }
}

/// The result of [`run_sweep`]: every cell record plus the store text.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The store header line.
    pub header: String,
    /// Per-cell records in id order.
    pub records: Vec<CellRecord>,
    /// Coverage accounting.
    pub summary: SweepSummary,
}

impl SweepOutcome {
    /// The full jsonl store (header + one line per cell, id order).
    pub fn store(&self) -> String {
        let mut out = String::with_capacity((self.records.len() + 1) * 192);
        out.push_str(&self.header);
        out.push('\n');
        for r in &self.records {
            out.push_str(&r.line);
            out.push('\n');
        }
        out
    }

    /// The steal-k vs admit-first crossover rows over the final records.
    pub fn crossover(&self) -> Vec<CrossoverRow> {
        let specs: Vec<CellSpec> = self.records.iter().map(|r| r.spec.clone()).collect();
        let outcomes: Vec<Option<CellOutcome>> = self.records.iter().map(|r| r.outcome).collect();
        crossover_rows(&specs, &outcomes)
    }
}

/// What to do with one cell, decided per level before fan-out.
enum Disposition {
    /// Reload the stored line verbatim.
    Reuse(aggregate::StoredCell),
    /// Emit an empty pruned cell.
    Prune,
    /// Copy the representative's outcome after it resolves.
    Member(usize),
    /// Simulate for real.
    Simulate,
}

/// Work sent to one fan-out worker: all to-simulate cells that share one
/// generated instance (and therefore one OPT computation).
struct InstanceJob {
    cells: Vec<CellSpec>,
}

fn outcome_of(result: &parflow_core::SimResult, opt_ms: f64) -> CellOutcome {
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let flows_ms: Vec<f64> = result.flows().map(|f| f.to_f64() * to_ms).collect();
    CellOutcome::from_flows_ms(&flows_ms, opt_ms)
}

/// Fold a streaming run into a cell outcome: max and mean are exact,
/// percentiles are histogram-approximate (one bin width), OPT comes from
/// the incremental tracker over the same arrivals.
fn stream_outcome(run: &crate::stream::StreamRun) -> CellOutcome {
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let f = &run.flows;
    let stats = (f.count() > 0).then(|| parflow_metrics::SampleStats {
        count: f.count() as usize,
        nonfinite: f.nan() as usize,
        min: f.min().unwrap_or(0.0) * to_ms,
        max: f.max().to_f64() * to_ms,
        mean: f.mean().unwrap_or(0.0) * to_ms,
        p50: f.quantile(0.50).unwrap_or(f64::NAN) * to_ms,
        p95: f.quantile(0.95).unwrap_or(f64::NAN) * to_ms,
        p99: f.quantile(0.99).unwrap_or(f64::NAN) * to_ms,
    });
    CellOutcome {
        stats,
        nan: f.nan() as usize,
        opt_ms: run.opt.combined_lower_bound().to_f64() * to_ms,
    }
}

/// Simulate one instance group: generate the instance once, run every
/// work-stealing cell through a single batched SoA call, and the FIFO
/// cells through the centralized engine. With `certify`, one
/// work-stealing cell and one FIFO cell per group are re-run with
/// tracing and machine-checked against the paper invariants (P1–P5);
/// streaming cells get the P5 lower-bound check on their exact max flow.
fn run_instance(
    job: &InstanceJob,
    batch_lanes: usize,
    stream: bool,
    certify: bool,
) -> Result<Vec<(usize, CellOutcome)>, String> {
    let Some(first) = job.cells.first() else {
        return Ok(Vec::new());
    };
    let spec = WorkloadSpec {
        dist: first.dist,
        shape: ShapeKind::ParallelFor { grain: 10 },
        qps: Some(first.qps),
        period_ticks: 0,
        n_jobs: first.jobs,
        seed: first.workload_seed,
    };
    if stream {
        // Streaming path: never materialize the instance. Each cell pulls
        // the spec's endless source through an O(active)-memory engine;
        // the grid's u32 jobs-axis guard rules out TooManyJobs, sources
        // are sorted, and no faults are configured, so a stream error can
        // only mean a broken invariant — it degrades to an empty cell
        // (counted by `SweepSummary::empty`) instead of panicking.
        let jobs_n = first.jobs as u64;
        let mut out: Vec<(usize, CellOutcome)> = Vec::with_capacity(job.cells.len());
        for cell in &job.cells {
            let run = match cell.policy.steal_policy() {
                Some(policy) => {
                    let cfg = SimConfig::new(cell.m)
                        .with_free_steals()
                        .with_speed(cell.speed());
                    crate::stream::run_stream_ws(&spec, &cfg, policy, cell.engine_seed, jobs_n)
                }
                None => {
                    let cfg = SimConfig::new(cell.m).with_speed(cell.speed());
                    crate::stream::run_stream_fifo(&spec, &cfg, jobs_n)
                }
            };
            let outcome = match run {
                Ok(run) => {
                    if certify {
                        let report = parflow_certify::certify_stream_summary(
                            cell.speed(),
                            run.summary.jobs,
                            run.summary.max_flow,
                            run.opt.combined_lower_bound(),
                        );
                        if !report.is_clean() {
                            return Err(format!(
                                "--certify: cell {}: {}",
                                cell.id,
                                report.render()
                            ));
                        }
                    }
                    stream_outcome(&run)
                }
                Err(_) => CellOutcome::from_flows_ms(&[], 0.0),
            };
            out.push((cell.id, outcome));
        }
        return Ok(out);
    }
    let instance = spec.generate();
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let opt_ms = opt_max_flow(&instance, first.m).to_f64() * to_ms;
    let mut ws: Vec<(usize, ReplicaSpec)> = Vec::new();
    let mut out: Vec<(usize, CellOutcome)> = Vec::with_capacity(job.cells.len());
    let mut fifo_certified = false;
    for cell in &job.cells {
        match cell.policy.steal_policy() {
            Some(policy) => ws.push((
                cell.id,
                ReplicaSpec::new(
                    SimConfig::new(cell.m)
                        .with_free_steals()
                        .with_speed(cell.speed()),
                    policy,
                    cell.engine_seed,
                ),
            )),
            None => {
                let cfg = SimConfig::new(cell.m).with_speed(cell.speed());
                if certify && !fifo_certified {
                    fifo_certified = true;
                    certify_cell(&instance, &cfg, None, cell.id, |traced| {
                        run_priority(&instance, traced, &Fifo)
                    })?;
                }
                let result = simulate_fifo(&instance, &cfg);
                out.push((cell.id, outcome_of(&result, opt_ms)));
            }
        }
    }
    if !ws.is_empty() {
        if certify {
            // One replica per group is enough for a spot-check: every
            // replica shares the instance, and the batched engine is
            // bit-identical to the sequential one (differential suite).
            if let Some((id, spec)) = ws.first() {
                certify_cell(&instance, &spec.config, Some(spec.policy), *id, |traced| {
                    run_worksteal(&instance, traced, spec.policy, spec.seed)
                })?;
            }
        }
        let specs: Vec<ReplicaSpec> = ws.iter().map(|(_, s)| s.clone()).collect();
        let results = simulate_batched(&instance, &specs, batch_lanes);
        for ((id, _), result) in ws.iter().zip(&results) {
            out.push((*id, outcome_of(result, opt_ms)));
        }
    }
    Ok(out)
}

/// Re-run one cell with tracing enabled and replay the schedule through
/// the independent certifier. Tracing only records — it never changes
/// scheduling decisions — so the traced run is the same schedule the
/// untraced cell measured.
fn certify_cell(
    instance: &parflow_dag::Instance,
    cfg: &SimConfig,
    policy: Option<parflow_core::StealPolicy>,
    id: usize,
    run: impl FnOnce(&SimConfig) -> (parflow_core::SimResult, Option<parflow_core::ScheduleTrace>),
) -> Result<(), String> {
    let traced = cfg.clone().with_trace();
    let (result, trace) = run(&traced);
    let Some(trace) = trace else {
        return Err(format!(
            "--certify: cell {id}: traced run produced no trace"
        ));
    };
    let report = parflow_certify::certify_run(instance, &traced, policy, &result, &trace);
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("--certify: cell {id}: {}", report.render()))
    }
}

/// Run the whole sweep. `prior` is the text of an existing store for
/// `--resume` (its header must match this grid); `None` runs fresh.
/// Pure with respect to the filesystem — the CLI owns all IO.
pub fn run_sweep(
    grid: &SweepGrid,
    prior: Option<&str>,
    opts: &SweepOptions,
) -> Result<SweepOutcome, String> {
    let cells = grid.cells();
    // Streaming stores sample a different workload realization (the
    // streaming source's RNG draw order differs from `generate()`), so
    // tag the header: `--resume` then refuses to mix the populations.
    let canonical = if opts.stream {
        format!("{};stream", grid.canonical())
    } else {
        grid.canonical()
    };
    let header = header_line(&canonical, cells.len());
    let load = match prior {
        Some(text) => parse_store(text, &header)?,
        None => StoreLoad::default(),
    };
    let mut pruner = Pruner::new(opts.prune_factor);
    let mut records: Vec<Option<CellRecord>> = cells.iter().map(|_| None).collect();
    let mut summary = SweepSummary {
        cells: cells.len(),
        dropped_lines: load.dropped,
        ..SweepSummary::default()
    };

    for level in 0..grid.utils.len() {
        let lo = cells.partition_point(|c| c.level < level);
        let hi = cells.partition_point(|c| c.level <= level);
        let level_cells = &cells[lo..hi];
        let clustering = cluster(level_cells);

        // Disposition pass, in id order. Reuse wins over everything (the
        // stored line is the ground truth this run must reproduce);
        // pruning is checked before clustering so members of a pruned
        // family never wait on a representative that will not run.
        let mut disposition: BTreeMap<usize, Disposition> = BTreeMap::new();
        for cell in level_cells {
            let d = if let Some(stored) = load.cells.get(&cell.id) {
                Disposition::Reuse(stored.clone())
            } else if pruner.is_pruned(cell) {
                Disposition::Prune
            } else {
                match clustering.rep_of.get(&cell.id) {
                    Some(&rep) if rep != cell.id => Disposition::Member(rep),
                    _ => Disposition::Simulate,
                }
            };
            disposition.insert(cell.id, d);
        }

        // Fan the to-simulate cells out, grouped by shared instance.
        let mut groups: BTreeMap<String, InstanceJob> = BTreeMap::new();
        for cell in level_cells {
            if matches!(disposition.get(&cell.id), Some(Disposition::Simulate)) {
                groups
                    .entry(cell.instance_key())
                    .or_insert_with(|| InstanceJob { cells: Vec::new() })
                    .cells
                    .push(cell.clone());
            }
        }
        summary.instances += groups.len();
        let jobs: Vec<InstanceJob> = groups.into_values().collect();
        let lanes = opts.batch_lanes;
        let stream = opts.stream;
        let certify = opts.certify;
        let results = par_map_with(opts.threads, jobs, |job| {
            run_instance(&job, lanes, stream, certify)
        });
        let mut simulated: BTreeMap<usize, CellOutcome> = BTreeMap::new();
        for group in results {
            for (id, outcome) in group? {
                summary.executed += 1;
                simulated.insert(id, outcome);
            }
        }

        // Materialize records: representatives and reused lines first,
        // clustered members second (they read their representative).
        for cell in level_cells {
            let record = match disposition.get(&cell.id) {
                Some(Disposition::Reuse(stored)) => CellRecord {
                    spec: cell.clone(),
                    status: stored.status.clone(),
                    source: stored.source,
                    outcome: stored.outcome,
                    reused: true,
                    line: stored.line.clone(),
                },
                Some(Disposition::Prune) => CellRecord {
                    spec: cell.clone(),
                    status: STATUS_PRUNED.to_string(),
                    source: None,
                    outcome: None,
                    reused: false,
                    line: cell_line(cell, STATUS_PRUNED, None, None),
                },
                Some(Disposition::Simulate) => {
                    let outcome = simulated.get(&cell.id).copied();
                    let line = cell_line(cell, STATUS_SIMULATED, None, outcome.as_ref());
                    CellRecord {
                        spec: cell.clone(),
                        status: STATUS_SIMULATED.to_string(),
                        source: None,
                        outcome,
                        reused: false,
                        line,
                    }
                }
                Some(Disposition::Member(_)) | None => continue,
            };
            records[cell.id] = Some(record);
        }
        for cell in level_cells {
            let Some(Disposition::Member(rep)) = disposition.get(&cell.id) else {
                continue;
            };
            // A representative always has a lower id and was filled
            // above; a missing one (foreign store) degrades to an empty
            // clustered cell rather than failing the run.
            let outcome = records
                .get(*rep)
                .and_then(|r| r.as_ref())
                .and_then(|r| r.outcome);
            let line = cell_line(cell, STATUS_CLUSTERED, Some(*rep), outcome.as_ref());
            records[cell.id] = Some(CellRecord {
                spec: cell.clone(),
                status: STATUS_CLUSTERED.to_string(),
                source: Some(*rep),
                outcome,
                reused: false,
                line,
            });
        }

        // Feed the completed level to the pruner for higher loads.
        let observations = level_cells.iter().map(|cell| {
            let max_ms = records
                .get(cell.id)
                .and_then(|r| r.as_ref())
                .and_then(|r| r.outcome)
                .and_then(|o| o.max_ms());
            (cell, max_ms)
        });
        pruner.observe_level(observations);
    }
    summary.pruned_families = pruner.pruned_families();

    let mut final_records: Vec<CellRecord> = Vec::with_capacity(cells.len());
    for (i, slot) in records.into_iter().enumerate() {
        match slot {
            Some(r) => final_records.push(r),
            None => return Err(format!("internal: cell {i} was never dispositioned")),
        }
    }
    for r in &final_records {
        match r.status.as_str() {
            STATUS_SIMULATED => summary.simulated += 1,
            STATUS_CLUSTERED => summary.clustered += 1,
            _ => summary.pruned += 1,
        }
        if r.reused {
            summary.reused += 1;
        }
        if let Some(o) = &r.outcome {
            summary.nan_samples += o.nan;
            if o.stats.is_none() {
                summary.empty += 1;
            }
        }
    }
    Ok(SweepOutcome {
        header,
        records: final_records,
        summary,
    })
}

const USAGE: &str = "usage: sweep [--grid SPEC|smoke|phase] [--out PATH] [--resume]
             [--threads N] [--prune-factor F] [--seeds N] [--jobs N]
             [--stream] [--certify] [--no-table] [--markdown]

Runs the cluster -> prune -> fan-out -> aggregate mega-sweep and writes a
jsonl store (header + one line per grid cell, in cell-id order). With
--resume, cells already present in --out are reloaded verbatim and only
the remainder is simulated; a torn trailing line from a crashed run is
dropped (and counted) automatically. --stream runs every cell through the
O(active)-memory streaming engines (exact max flow, incremental OPT),
enabling --jobs counts that would not fit in memory; streaming stores are
header-tagged and cannot be resumed into materialized ones. --certify
machine-checks the paper invariants (P1-P5) on spot-checked cells: per
instance group, one work-stealing and one FIFO cell are re-run with
tracing and replayed through parflow-certify; streaming cells get the P5
lower-bound check. A violation aborts the sweep with the diagnostic.";

/// `repro sweep` / `parflow sweep` entry point. Returns the rendered
/// report (summary + crossover table) for the caller to print.
pub fn cli_main(args: &[String]) -> Result<String, String> {
    let mut grid_spec = "smoke".to_string();
    let mut out_path: Option<String> = None;
    let mut resume = false;
    let mut opts = SweepOptions::default();
    let mut seeds: Option<u32> = None;
    let mut jobs: Option<usize> = None;
    let mut table = true;
    let mut markdown = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--grid" => grid_spec = value("--grid")?,
            "--out" => out_path = Some(value("--out")?),
            "--resume" => resume = true,
            "--stream" => opts.stream = true,
            "--certify" => opts.certify = true,
            "--no-table" => table = false,
            "--markdown" => markdown = true,
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads wants a positive integer".to_string())?;
            }
            "--prune-factor" => {
                opts.prune_factor = value("--prune-factor")?
                    .parse()
                    .map_err(|_| "--prune-factor wants a number".to_string())?;
            }
            "--seeds" => {
                seeds = Some(
                    value("--seeds")?
                        .parse()
                        .map_err(|_| "--seeds wants a positive integer".to_string())?,
                );
            }
            "--jobs" => {
                jobs = Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs wants a positive integer".to_string())?,
                );
            }
            other => return Err(format!("unknown sweep flag `{other}`\n{USAGE}")),
        }
    }
    let mut grid = SweepGrid::parse(&grid_spec)?;
    if let Some(s) = seeds {
        if s == 0 {
            return Err("--seeds must be at least 1".to_string());
        }
        grid.seeds = s;
    }
    if let Some(j) = jobs {
        if j == 0 {
            return Err("--jobs must be at least 1".to_string());
        }
        if j as u64 > u32::MAX as u64 {
            return Err(format!(
                "--jobs {j} exceeds the engine job-id space (max {})",
                u32::MAX
            ));
        }
        grid.jobs = j;
    }
    if resume && out_path.is_none() {
        return Err(format!("--resume needs --out\n{USAGE}"));
    }
    let prior = match (&out_path, resume) {
        // A missing store reads as None: a resume of nothing is a fresh run.
        (Some(path), true) => std::fs::read_to_string(path).ok(),
        _ => None,
    };
    let outcome = run_sweep(&grid, prior.as_deref(), &opts)?;
    if let Some(path) = &out_path {
        std::fs::write(path, outcome.store())
            .map_err(|e| format!("cannot write store `{path}`: {e}"))?;
    }
    let mut report = String::new();
    report.push_str(&format!("sweep grid: {}\n", grid.canonical()));
    report.push_str(&format!("{}\n", outcome.summary.render()));
    if opts.certify {
        // run_sweep would have erred on any violation; reaching here
        // means every spot-checked cell certified clean.
        report.push_str("certify: clean (P1-P5 spot checks on every instance group)\n");
    }
    if let Some(path) = &out_path {
        report.push_str(&format!("store written to {path}\n"));
    }
    if table {
        let rows = outcome.crossover();
        if !rows.is_empty() {
            report.push_str("\nsteal-k vs admit-first crossover (mean max-flow, ms):\n");
            if markdown {
                report.push_str(&render_crossover_markdown(&rows));
            } else {
                report.push_str(&render_crossover(&rows));
            }
        }
    }
    Ok(report)
}

/// The phase-diagram section body for EXPERIMENTS.md (markdown table).
pub fn markdown_crossover(outcome: &SweepOutcome) -> String {
    render_crossover_markdown(&outcome.crossover())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid::parse("dist=bing;util=0.5,0.9;policy=fifo,admit,steal:4;m=2;seeds=2;jobs=60")
            .unwrap()
    }

    #[test]
    fn sweep_covers_every_cell_and_counts_add_up() {
        let grid = tiny_grid();
        let out = run_sweep(&grid, None, &SweepOptions::default()).unwrap();
        let s = out.summary;
        assert_eq!(s.cells, grid.cell_count());
        assert_eq!(out.records.len(), s.cells);
        assert_eq!(s.simulated + s.clustered + s.pruned, s.cells);
        // FIFO seed replicas cluster: one fold per (util, fifo) pair.
        assert!(
            s.clustered >= 2,
            "fifo replicas should cluster: {}",
            s.render()
        );
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.spec.id, i);
        }
    }

    #[test]
    fn certified_sweep_is_clean_and_store_identical() {
        // Certification re-runs spot-checked cells with tracing; the
        // measured store must be byte-identical to an uncertified run
        // (certification is observation, never perturbation).
        let grid = tiny_grid();
        let plain = run_sweep(&grid, None, &SweepOptions::default()).unwrap();
        let certified = run_sweep(
            &grid,
            None,
            &SweepOptions {
                certify: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.store(), certified.store());
        assert_eq!(plain.summary, certified.summary);
    }

    #[test]
    fn certified_streaming_sweep_is_clean() {
        let grid = tiny_grid();
        let opts = SweepOptions {
            stream: true,
            certify: true,
            ..SweepOptions::default()
        };
        let out = run_sweep(&grid, None, &opts).unwrap();
        assert_eq!(out.summary.cells, grid.cell_count());
        assert_eq!(out.summary.empty, 0, "{}", out.summary.render());
    }

    #[test]
    fn store_is_thread_count_invariant() {
        let grid = tiny_grid();
        let one = run_sweep(
            &grid,
            None,
            &SweepOptions {
                threads: 1,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let many = run_sweep(
            &grid,
            None,
            &SweepOptions {
                threads: 7,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(one.store(), many.store());
        assert_eq!(one.summary, many.summary);
    }

    #[test]
    fn resume_from_full_store_simulates_nothing_and_matches() {
        let grid = tiny_grid();
        let opts = SweepOptions::default();
        let fresh = run_sweep(&grid, None, &opts).unwrap();
        let resumed = run_sweep(&grid, Some(&fresh.store()), &opts).unwrap();
        assert_eq!(resumed.store(), fresh.store());
        assert_eq!(resumed.summary.executed, 0, "everything should be reused");
        assert_eq!(resumed.summary.reused, grid.cell_count());
    }

    #[test]
    fn resume_from_torn_store_rederives_identical_store() {
        let grid = tiny_grid();
        let opts = SweepOptions::default();
        let fresh = run_sweep(&grid, None, &opts).unwrap();
        let store = fresh.store();
        // Tear mid-way through the last line (a crashed writer).
        let torn = &store[..store.len() - 40];
        let resumed = run_sweep(&grid, Some(torn), &opts).unwrap();
        assert_eq!(resumed.store(), store);
        assert!(resumed.summary.dropped_lines >= 1);
        assert!(resumed.summary.reused > 0);
        assert!(resumed.summary.executed < fresh.summary.executed);
    }

    #[test]
    fn mismatched_grid_store_is_rejected() {
        let grid = tiny_grid();
        let opts = SweepOptions::default();
        let fresh = run_sweep(&grid, None, &opts).unwrap();
        let mut other = tiny_grid();
        other.jobs = 61;
        let err = run_sweep(&other, Some(&fresh.store()), &opts);
        assert!(err.is_err());
        assert!(err.err().into_iter().any(|e| e.contains("does not match")));
    }

    #[test]
    fn aggressive_pruning_yields_empty_cells_not_panics() {
        let grid = tiny_grid();
        // factor barely above 1: anything that loses a level gets pruned.
        let out = run_sweep(
            &grid,
            None,
            &SweepOptions {
                prune_factor: 1.0001,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(
            out.summary.pruned > 0,
            "expected prunes: {}",
            out.summary.render()
        );
        assert!(out.summary.pruned_families > 0);
        // Pruned cells are empty, present, and parseable.
        for r in &out.records {
            if r.status == STATUS_PRUNED {
                assert!(r.outcome.is_none());
                assert!(aggregate::parse_cell_line(&r.line).is_some());
            }
        }
        // The store still covers every cell.
        assert_eq!(out.store().lines().count(), grid.cell_count() + 1);
    }

    #[test]
    fn stream_mode_covers_every_cell_with_live_opt() {
        let grid = tiny_grid();
        let opts = SweepOptions {
            stream: true,
            ..SweepOptions::default()
        };
        let out = run_sweep(&grid, None, &opts).unwrap();
        assert_eq!(out.records.len(), grid.cell_count());
        assert!(out.header.contains(";stream"));
        // Every simulated cell carries streaming stats and a positive
        // incremental OPT bound.
        let simulated: Vec<_> = out
            .records
            .iter()
            .filter(|r| r.status == STATUS_SIMULATED)
            .collect();
        assert!(!simulated.is_empty());
        for r in simulated {
            let o = r.outcome.expect("simulated cells have outcomes");
            assert!(o.opt_ms > 0.0, "live OPT bound missing: {o:?}");
            let s = o.stats.expect("streamed flows present");
            assert!(s.count > 0);
            // Percentiles are bin upper edges: within one 1 ms bin of the
            // exact max.
            assert!(s.max >= s.p99 - 1.0 - 1e-9, "max {} p99 {}", s.max, s.p99);
        }
        // Deterministic across thread counts, like the materialized path.
        let again = run_sweep(
            &grid,
            None,
            &SweepOptions {
                stream: true,
                threads: 3,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.store(), again.store());
    }

    #[test]
    fn stream_store_cannot_resume_into_materialized_store() {
        let grid = tiny_grid();
        let materialized = run_sweep(&grid, None, &SweepOptions::default()).unwrap();
        let err = run_sweep(
            &grid,
            Some(&materialized.store()),
            &SweepOptions {
                stream: true,
                ..SweepOptions::default()
            },
        );
        assert!(err.is_err(), "streaming resume of a materialized store");
    }

    #[test]
    fn jobs_axis_is_bounded_by_the_job_id_space() {
        let too_many = format!(
            "dist=bing;util=0.5;policy=fifo;m=2;jobs={}",
            u32::MAX as u64 + 1
        );
        let err = SweepGrid::parse(&too_many);
        assert!(err.is_err());
        assert!(err.err().unwrap().contains("job-id space"));
        // The CLI --jobs override hits the same wall.
        let args: Vec<String> = [
            "--grid",
            "dist=bing;util=0.5;policy=fifo;m=2",
            "--jobs",
            "4294967296",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = cli_main(&args);
        assert!(err.is_err());
        assert!(err.err().unwrap().contains("job-id space"));
        // The boundary itself is accepted by the parser.
        let ok = SweepGrid::parse(&format!(
            "dist=bing;util=0.5;policy=fifo;m=2;jobs={}",
            u32::MAX
        ));
        assert!(ok.is_ok());
    }

    #[test]
    fn cli_smoke_runs_and_reports() {
        let args: Vec<String> = [
            "--grid",
            "dist=bing;util=0.6;policy=admit,steal:4;m=2",
            "--jobs",
            "50",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = cli_main(&args).unwrap();
        assert!(report.contains("cells=2"));
        assert!(report.contains("crossover"));
        let help = cli_main(&["--help".to_string()]).unwrap();
        assert!(help.contains("usage: sweep"));
        assert!(cli_main(&["--bogus".to_string()]).is_err());
        assert!(
            cli_main(&["--resume".to_string()]).is_err(),
            "--resume needs --out"
        );
    }
}
