//! Configuration clustering: bucket near-identical cells by structural
//! fingerprint so only one representative per bucket is simulated.
//!
//! Two cells land in the same bucket when every field that can influence
//! the simulated schedule matches. For seed-*independent* policies (FIFO
//! is deterministic given the instance) the engine seed and replica index
//! are excluded from the fingerprint, which collapses all seed replicas of
//! a FIFO configuration into one bucket — the classic source of silently
//! wasted sweep compute. Seed-dependent policies keep their replica index,
//! so distinct seeds never cluster.
//!
//! The representative is always the bucket member with the lowest cell id.
//! Because cells are enumerated level-major and the store is written in id
//! order, a representative always precedes its members in the store — a
//! property the resume path relies on (a truncated store that contains a
//! member also contains its representative).

use std::collections::BTreeMap;

use super::grid::{fnv1a64, CellSpec};

/// Structural fingerprint of a cell: FNV-1a over the canonical rendering
/// of every schedule-relevant field. Replica index and engine seed are
/// included only when the policy is seed-dependent.
pub fn fingerprint(cell: &CellSpec) -> u64 {
    let rep_part = if cell.policy.seed_dependent() {
        format!("r{}|s{:#x}", cell.rep, cell.engine_seed)
    } else {
        "r-".to_string()
    };
    let tag = format!(
        "{}|u{}|m{}|e{}|j{}|q{}|w{:#x}|{}|{}",
        cell.dist.name(),
        cell.util,
        cell.m,
        cell.eps_str(),
        cell.jobs,
        cell.qps,
        cell.workload_seed,
        cell.policy.name(),
        rep_part,
    );
    fnv1a64(tag.as_bytes())
}

/// Outcome of clustering one load level.
#[derive(Clone, Debug, Default)]
pub struct Clustering {
    /// Cell id → representative id. Representatives map to themselves.
    pub rep_of: BTreeMap<usize, usize>,
    /// Cells that were folded into another cell's bucket.
    pub folded: usize,
}

/// Cluster a slice of cells (one load level). Buckets are keyed by
/// fingerprint; the lowest-id member of each bucket becomes its
/// representative. Deterministic: depends only on cell contents and the
/// (already canonical) enumeration order.
pub fn cluster(cells: &[CellSpec]) -> Clustering {
    let mut first_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut out = Clustering::default();
    for cell in cells {
        let fp = fingerprint(cell);
        let rep = *first_of.entry(fp).or_insert(cell.id);
        if rep != cell.id {
            out.folded += 1;
        }
        out.rep_of.insert(cell.id, rep);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid::SweepGrid;

    #[test]
    fn fifo_seed_replicas_cluster_worksteal_do_not() {
        let g = SweepGrid::parse("dist=bing;util=0.7;policy=fifo,admit;m=4;seeds=3").unwrap();
        let cells = g.cells();
        let c = cluster(&cells);
        // 3 FIFO replicas fold to 1 representative; 3 admit replicas stay.
        assert_eq!(c.folded, 2);
        let fifo_reps: Vec<usize> = cells
            .iter()
            .filter(|x| !x.policy.seed_dependent())
            .map(|x| c.rep_of[&x.id])
            .collect();
        assert!(fifo_reps.windows(2).all(|w| w[0] == w[1]));
        let admit_reps: Vec<usize> = cells
            .iter()
            .filter(|x| x.policy.seed_dependent())
            .map(|x| c.rep_of[&x.id])
            .collect();
        let mut uniq = admit_reps.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), admit_reps.len());
    }

    #[test]
    fn representative_precedes_members() {
        let g = SweepGrid::parse("smoke").unwrap();
        let c = cluster(&g.cells());
        for (&id, &rep) in &c.rep_of {
            assert!(rep <= id, "rep {rep} must not follow member {id}");
        }
    }

    #[test]
    fn distinct_configs_never_cluster() {
        let g = SweepGrid::parse("dist=bing;util=0.7,0.9;policy=fifo;m=4,8;seeds=1").unwrap();
        let cells = g.cells();
        let c = cluster(&cells);
        assert_eq!(c.folded, 0);
        let mut reps: Vec<usize> = c.rep_of.values().copied().collect();
        reps.sort_unstable();
        reps.dedup();
        assert_eq!(reps.len(), cells.len());
    }
}
